//! A real ChaCha8 keystream generator behind the vendored [`rand`] traits.
//!
//! This implements the standard ChaCha quarter-round/block function with 8
//! rounds (RFC 8439 structure, reduced round count), keyed from a 32-byte
//! seed. Output streams are *not* bit-compatible with crates.io
//! `rand_chacha` (seed expansion and word-emission order differ), which is
//! acceptable: the workspace only relies on in-process determinism.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, 64-bit block counter.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Initial state: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current output block.
    buf: [u32; 16],
    /// Next word to emit from `buf`; 16 forces a refill.
    idx: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // One double round: column round + diagonal round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, init) in w.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buf = w;
        self.idx = 0;
        // 64-bit counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 40_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
        // Bit balance on the raw stream.
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let frac = ones as f64 / 64_000.0;
        assert!((frac - 0.5).abs() < 0.01, "bit frac={frac}");
    }
}
