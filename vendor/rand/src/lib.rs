//! Offline stand-in for the slice of the `rand 0.8` API this workspace
//! uses: [`RngCore`], [`Rng::gen_range`]/[`Rng::gen_bool`],
//! [`SeedableRng`], and [`seq::SliceRandom`] (`choose`/`shuffle`).
//!
//! Semantics match rand's contracts (half-open / inclusive ranges, uniform
//! floats in `[low, high)`, Fisher–Yates shuffle); the exact output
//! streams are *not* bit-compatible with crates.io `rand`, which is fine —
//! nothing in the repository pins external vectors, only in-process
//! determinism.

pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64 (the
    /// same convenience rand offers; the expansion constants differ).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used only for seed expansion.
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `[0, 1)` double from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// `[0, 1)` float from 24 random bits.
fn unit_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Range types [`Rng::gen_range`] accepts for an output type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * unit_f32(rng.next_u32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            let mut sm = SplitMix64(self.0);
            self.0 += 1;
            sm.next()
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(0);
        for _ in 0..2000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let w: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let x: u32 = rng.gen_range(1..=4096);
            assert!((1..=4096).contains(&x));
            let f: f32 = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
            let d: f64 = rng.gen_range(1e-7..1.0);
            assert!((1e-7..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = Counter(7);
        let n = 20_000;
        let heads = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let p = heads as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.02, "p={p}");
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = Counter(1);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
