//! Slice sampling: `choose` and `shuffle`.

use crate::RngCore;

/// Random operations on slices (the subset of rand's `SliceRandom` the
/// workspace uses).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[i])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    struct Sm(SplitMix64);

    impl RngCore for Sm {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = Sm(SplitMix64(3));
        let xs = [10, 20, 30];
        for _ in 0..100 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Sm(SplitMix64(9));
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50 elements should not shuffle to identity");
    }
}
