//! Offline stand-in for the `serde` facade.
//!
//! The repository only uses serde as derive annotations on config and
//! stats types; no code path serializes through it (checkpoints go through
//! `nvc-nn::serialize`, the serve protocol through `nvc-serve::json`).
//! This vendored crate provides the trait names and re-exports the no-op
//! derive macros so `#[derive(Serialize, Deserialize)]` keeps compiling
//! without network access to crates.io.

/// Marker trait matching `serde::Serialize`'s name.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
