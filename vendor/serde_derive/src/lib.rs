//! No-op stand-ins for `serde_derive`'s macros.
//!
//! The build environment has no network access, so the workspace vendors
//! the narrow slice of the serde surface it actually uses. Nothing in this
//! repository serializes through serde at runtime (checkpoints use
//! `nvc-nn::serialize`, the serving protocol uses `nvc-serve::json`), so
//! the derives only need to *parse* — they expand to nothing.

use proc_macro::TokenStream;

/// Expands `#[derive(Serialize)]` to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands `#[derive(Deserialize)]` to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
