//! Offline property-test harness with a proptest-compatible macro
//! surface: `proptest! { #![proptest_config(..)] #[test] fn f(x in 0..9) { .. } }`,
//! `prop_assert!`, and `prop_assert_eq!`.
//!
//! Strategies are integer ranges (half-open and inclusive), sampled with a
//! deterministic SplitMix64 stream seeded from the test name — every run
//! explores the same cases. There is no shrinking: a failing case prints
//! its inputs and re-raises the panic.

/// Number of cases when no `proptest_config` is given.
pub const DEFAULT_CASES: u32 = 64;

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from the property name so each property gets its own stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator: integer ranges implement this.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one case.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

/// Property assertion (plain `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` sampled cases; a failing case
/// prints its inputs before propagating the panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident (
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = { $cfg }.cases;
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body }),
                    );
                    if let Err(panic) = __outcome {
                        eprintln!(
                            concat!(
                                "proptest ", stringify!($name),
                                ": case {} of {} failed with inputs:"
                            ),
                            __case + 1, cases
                        );
                        $( eprintln!("  {} = {:?}", stringify!($arg), $arg); )*
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(a in 0u64..100, b in 1usize..=7, c in -4i32..4) {
            prop_assert!(a < 100);
            prop_assert!((1..=7).contains(&b));
            prop_assert!((-4..4).contains(&c));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn samples_cover_domain() {
        let mut rng = TestRng::for_test("cover");
        let mut seen = [false; 5];
        for _ in 0..300 {
            seen[Strategy::sample(&(0usize..5), &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
