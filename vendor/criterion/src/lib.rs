//! Offline micro-bench harness exposing the criterion surface the
//! workspace's `benches/` use: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`], and [`criterion_main!`].
//!
//! Timing is a simple warmup + fixed-duration measurement loop printing
//! mean ns/iter; no statistics, plots, or baselines. Benches run as plain
//! binaries (`harness = false` is not required because this crate's
//! macros generate `main`).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so code written against criterion's `black_box` keeps
/// working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    /// Target duration of each measured phase.
    measure: Duration,
    /// Target duration of each warmup phase.
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: Duration::from_millis(400),
            warmup: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Compatibility knob: criterion's sample count maps onto this
    /// harness's measurement duration (samples × ~10 ms each).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.measure = Duration::from_millis(10 * n.max(1) as u64);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        println!(
            "bench {name:<48} {per_iter:>14.1} ns/iter ({} iters)",
            b.iters
        );
        self
    }
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, first warming up, then measuring for a fixed duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warmup;
        while Instant::now() < warm_end {
            std_black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure {
            std_black_box(f());
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark functions as one runnable entry point.
/// Supports both the positional form (`criterion_group!(name, f1, f2)`)
/// and the named-config form
/// (`criterion_group!(name = g; config = ...; targets = f1, f2)`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` from one or more [`criterion_group!`] names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            measure: Duration::from_millis(5),
            warmup: Duration::from_millis(1),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }
}
