//! Minimal mio-style readiness selector (vendored; the build
//! environment has no network access to crates.io).
//!
//! One [`Poller`] watches any number of file descriptors, each
//! registered with a caller-chosen `usize` token and an [`Interest`]
//! (read and/or write). [`Poller::wait`] blocks until at least one
//! descriptor is ready — or a timeout elapses — and reports readiness
//! as [`Event`]s, level-triggered: a descriptor stays ready until the
//! condition is consumed. Idle descriptors cost nothing between
//! wakeups; that is the whole point over per-connection timer polls.
//!
//! Backend: `epoll(7)` on Linux, portable `poll(2)` elsewhere. Both are
//! reached through their libc symbols declared locally (`extern "C"`)
//! so the crate has zero dependencies; std already links libc.
//!
//! A [`Waker`] (self-pipe) lets any thread interrupt a blocked
//! [`Poller::wait`] — the selector loop's shutdown/notify channel.
//!
//! Single-owner contract: registration and waiting are meant to happen
//! on one thread (the event loop). `Waker::wake` is the only method
//! intended for cross-thread use. This matches the hub's use and keeps
//! the fallback backend honest (its registration table is read at
//! `wait` time).

#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// What to watch a descriptor for. Combine with [`Interest::and`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    read: bool,
    write: bool,
}

impl Interest {
    /// Readable-readiness (includes peer hangup — a read will observe
    /// the EOF).
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Writable-readiness.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Watch for nothing (keep the registration, deliver only
    /// error/hangup).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };

    /// Union of two interests.
    pub const fn and(self, other: Interest) -> Interest {
        Interest {
            read: self.read || other.read,
            write: self.write || other.write,
        }
    }

    /// Does this interest include reads?
    pub const fn is_read(self) -> bool {
        self.read
    }

    /// Does this interest include writes?
    pub const fn is_write(self) -> bool {
        self.write
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: usize,
    /// Reading will not block (data, EOF, or a pending error).
    pub readable: bool,
    /// Writing will not block (or will surface a pending error).
    pub writable: bool,
    /// The peer hung up or the descriptor errored. `readable` is set
    /// too so a consumer that just reads still observes the condition.
    pub hangup: bool,
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round up so a 1ns timeout still sleeps rather than spins.
        Some(t) => {
            t.as_millis().min(i32::MAX as u128) as i32
                + i32::from(t.subsec_nanos() % 1_000_000 != 0)
        }
    }
}

pub use imp::Poller;

/// Cross-thread wakeup for a blocked [`Poller::wait`]: a nonblocking
/// self-pipe whose read end is registered with the poller. `wake` is
/// async-signal-safe-ish (one `write`), callable from any thread.
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Creates the pipe and registers its read end on `poller` under
    /// `token` (read interest). Events carrying `token` mean "someone
    /// called `wake`"; call [`Waker::drain`] before resuming.
    pub fn new(poller: &Poller, token: usize) -> io::Result<Waker> {
        let (read_fd, write_fd) = sys::pipe_nonblocking()?;
        poller.register(read_fd, token, Interest::READ)?;
        Ok(Waker { read_fd, write_fd })
    }

    /// Interrupts the poller. A full pipe means a wake is already
    /// pending — that is success, not an error.
    pub fn wake(&self) -> io::Result<()> {
        match sys::write_byte(self.write_fd) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consumes pending wake bytes so level-triggered polling settles.
    pub fn drain(&self) {
        sys::drain_fd(self.read_fd);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.read_fd);
        sys::close_fd(self.write_fd);
    }
}

/// Shared raw-libc helpers (both backends).
mod sys {
    use std::io;
    use std::os::unix::io::RawFd;

    extern "C" {
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        #[cfg(target_os = "linux")]
        fn pipe2(fds: *mut i32, flags: i32) -> i32;
        #[cfg(not(target_os = "linux"))]
        fn pipe(fds: *mut i32) -> i32;
        #[cfg(not(target_os = "linux"))]
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    }

    pub fn close_fd(fd: RawFd) {
        unsafe { close(fd) };
    }

    pub fn write_byte(fd: RawFd) -> io::Result<()> {
        let b = 1u8;
        if unsafe { write(fd, &b, 1) } == 1 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    pub fn drain_fd(fd: RawFd) {
        let mut buf = [0u8; 64];
        while unsafe { read(fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
    }

    #[cfg(target_os = "linux")]
    pub fn pipe_nonblocking() -> io::Result<(RawFd, RawFd)> {
        const O_NONBLOCK: i32 = 0o4000;
        const O_CLOEXEC: i32 = 0o2000000;
        let mut fds = [0i32; 2];
        if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((fds[0], fds[1]))
    }

    #[cfg(not(target_os = "linux"))]
    pub fn pipe_nonblocking() -> io::Result<(RawFd, RawFd)> {
        const F_SETFL: i32 = 4;
        const O_NONBLOCK: i32 = 0o4000;
        let mut fds = [0i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) };
        }
        Ok((fds[0], fds[1]))
    }
}

#[cfg(target_os = "linux")]
mod imp {
    //! `epoll(7)` backend: O(ready) wakeups, kernel-held registration
    //! table.

    use super::{sys, timeout_ms, Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Mirrors the kernel's `struct epoll_event`; x86 keeps it packed.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    /// The readiness selector. See the crate docs for the contract.
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates an epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interest),
                data: token as u64,
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Starts watching `fd` under `token`.
        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes `fd`'s interest (and/or token).
        pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stops watching `fd`. (Closing the fd also deregisters it.)
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        /// Blocks until readiness or `timeout` (`None` = forever),
        /// appending to `events` (cleared first). Returns the event
        /// count; 0 on timeout or signal interruption.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    raw.as_mut_ptr(),
                    raw.len() as i32,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                return if err.kind() == io::ErrorKind::Interrupted {
                    Ok(0)
                } else {
                    Err(err)
                };
            }
            for ev in raw.iter().take(n as usize) {
                let bits = ev.events;
                let hangup = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                events.push(Event {
                    token: ev.data as usize,
                    readable: bits & EPOLLIN != 0 || hangup,
                    writable: bits & EPOLLOUT != 0,
                    hangup,
                });
            }
            Ok(events.len())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.is_read() {
            bits |= EPOLLIN;
        }
        if interest.is_write() {
            bits |= EPOLLOUT;
        }
        bits
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    //! Portable `poll(2)` backend: the registration table lives in
    //! userspace and is rebuilt into a `pollfd` array per wait — O(n)
    //! per wakeup, which is why Linux gets epoll.

    use super::{sys, timeout_ms, Event, Interest};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// The readiness selector. See the crate docs for the contract.
    pub struct Poller {
        registered: Mutex<BTreeMap<RawFd, (usize, Interest)>>,
    }

    impl Poller {
        /// Creates an empty selector.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(BTreeMap::new()),
            })
        }

        /// Starts watching `fd` under `token`.
        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap_or_else(|e| e.into_inner());
            if reg.insert(fd, (token, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd registered",
                ));
            }
            Ok(())
        }

        /// Changes `fd`'s interest (and/or token).
        pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap_or_else(|e| e.into_inner());
            match reg.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Stops watching `fd`.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap_or_else(|e| e.into_inner());
            match reg.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Blocks until readiness or `timeout` (`None` = forever),
        /// appending to `events` (cleared first). Returns the event
        /// count; 0 on timeout or signal interruption.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let (mut fds, tokens): (Vec<PollFd>, Vec<usize>) = {
                let reg = self.registered.lock().unwrap_or_else(|e| e.into_inner());
                reg.iter()
                    .map(|(&fd, &(token, interest))| {
                        let mut ev = 0i16;
                        if interest.is_read() {
                            ev |= POLLIN;
                        }
                        if interest.is_write() {
                            ev |= POLLOUT;
                        }
                        (
                            PollFd {
                                fd,
                                events: ev,
                                revents: 0,
                            },
                            token,
                        )
                    })
                    .unzip()
            };
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
            if n < 0 {
                let err = io::Error::last_os_error();
                return if err.kind() == io::ErrorKind::Interrupted {
                    Ok(0)
                } else {
                    Err(err)
                };
            }
            for (pf, &token) in fds.iter().zip(tokens.iter()) {
                if pf.revents == 0 {
                    continue;
                }
                let hangup = pf.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
                events.push(Event {
                    token,
                    readable: pf.revents & POLLIN != 0 || hangup,
                    writable: pf.revents & POLLOUT != 0,
                    hangup,
                });
            }
            Ok(events.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn readiness_tracks_data_and_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 7, Interest::READ)
            .unwrap();

        let mut events = Vec::new();
        // Nothing to read yet: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "idle socket must not report readiness");

        client.write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable && !events[0].hangup);

        // Level-triggered: still readable until consumed.
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let mut byte = [0u8; 8];
        let mut srv = &server;
        assert_eq!(srv.read(&mut byte).unwrap(), 1);

        // Peer hangup surfaces as readable + hangup.
        drop(client);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable && events[0].hangup);

        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn write_interest_and_modify() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        // A fresh socket's send buffer is empty: writable immediately.
        poller
            .register(client.as_raw_fd(), 3, Interest::READ.and(Interest::WRITE))
            .unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable);
        // Dropping write interest silences it.
        poller
            .modify(client.as_raw_fd(), 3, Interest::READ)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::new(Waker::new(&poller, usize::MAX).unwrap());
        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake().unwrap();
        });
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, usize::MAX);
        waker.drain();
        t.join().unwrap();
    }
}
