//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parts of the parking_lot API the workspace relies on:
//! `lock()`/`read()`/`write()` return guards directly (no `Result`), and a
//! poisoned std lock is transparently recovered — parking_lot has no
//! poisoning, so neither does this shim.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader–writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
