//! Facade crate: re-exports the NeuroVectorizer reproduction stack for examples and integration tests.
pub use neurovectorizer as nv;
