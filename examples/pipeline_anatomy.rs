//! Anatomy of one kernel's trip through the pipeline.
//!
//! Walks the paper's §2.1 dot-product kernel through every stage —
//! parsing, loop extraction, lowering, dependence analysis, path-context
//! embedding input, baseline decision, the VF×IF landscape, and the
//! machine model's bottleneck attribution — printing the artifacts a
//! compiler engineer would want to inspect.
//!
//! ```text
//! cargo run --release --example pipeline_anatomy
//! ```

use nvc_embed::extract_path_contexts;
use nvc_frontend::{extract_loops, parse_statement, parse_translation_unit};
use nvc_ir::{analyze_dependences, lower_innermost_loops, ParamEnv};
use nvc_machine::TargetConfig;
use nvc_vectorizer::{VectorDecision, Vectorizer};

const SRC: &str = "int vec[512] __attribute__((aligned(16)));
int example1() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== source ===\n{SRC}\n");

    // Stage 1: parse + loop extraction.
    let tu = parse_translation_unit(SRC)?;
    let loops = extract_loops(&tu, SRC);
    println!("=== extraction ===");
    for l in &loops {
        println!(
            "loop #{} in `{}`: depth {}, innermost: {}, header line {}",
            l.loop_index, l.function, l.depth, l.is_innermost, l.header_line
        );
    }

    // Stage 2: lowering to the loop IR.
    let lowered = lower_innermost_loops(&tu, SRC, &ParamEnv::new())?;
    let ir = &lowered[0].ir;
    println!("\n=== loop IR ===");
    println!(
        "induction: {} (trip {:?}, step {})",
        ir.ind_var, ir.trip, ir.step
    );
    println!(
        "body: {} instructions, {} memory access sites",
        ir.body.len(),
        ir.accesses.len()
    );
    for (i, a) in ir.accesses.iter().enumerate() {
        println!(
            "  access {i}: {}[{:?} + {}] {} ({}aligned)",
            a.array,
            a.kind,
            a.offset,
            if a.is_store { "store" } else { "load" },
            if a.aligned { "" } else { "mis" },
        );
    }
    for r in &ir.reductions {
        println!("  reduction: `{}` {:?} over {}", r.var, r.kind, r.ty);
    }

    // Stage 3: dependence analysis (the legality clamp for pragmas).
    let dep = analyze_dependences(ir);
    println!("\n=== dependences ===\nlegal max VF: {}", dep.max_vf);

    // Stage 4: the observation the agent sees.
    let stmt = parse_statement(&lowered[0].nest_text)?;
    let paths = extract_path_contexts(&stmt, 8);
    println!("\n=== code2vec path contexts (first 8) ===");
    for p in &paths {
        println!("  ({}, {}, {})", p.start, p.path, p.end);
    }

    // Stage 5: baseline decision and the landscape.
    let vz = Vectorizer::new(TargetConfig::i7_8559u());
    let baseline = vz.baseline_decision(ir);
    let base = vz.compile(ir, baseline);
    println!("\n=== decisions ===");
    println!(
        "baseline cost model picks {} → {:.0} cycles (bottleneck: {:?})",
        baseline, base.timing.cycles, base.timing.bottleneck
    );
    for d in [
        VectorDecision::new(1, 1),
        VectorDecision::new(8, 2),
        VectorDecision::new(16, 4),
        VectorDecision::new(64, 8),
        VectorDecision::new(64, 16),
    ] {
        let c = vz.compile(ir, d);
        println!(
            "  {}: {:>7.0} cycles  II={:>6.2}  remainder={:>5.0}cy  bottleneck {:?}",
            d, c.timing.cycles, c.timing.ii, c.timing.remainder_cycles, c.timing.bottleneck
        );
    }
    println!("\nNote how the huge block (64×16 = 1024 > 512 iterations) collapses");
    println!("into a pure scalar remainder — the over-vectorization failure the");
    println!("agent must learn to avoid, and why the compile-time penalty exists.");
    Ok(())
}
