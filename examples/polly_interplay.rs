//! Scenario: where polyhedral optimization wins, loses, and composes
//! with pragma-based vectorization (§4.1 of the paper).
//!
//! Runs the PolyBench-style kernels through four compilers — plain
//! baseline, Polly-lite, pragma override, and Polly+pragma — and shows
//! the transformed gemm source.
//!
//! ```text
//! cargo run --release --example polly_interplay
//! ```

use neurovectorizer::{Compiler, LoopDecision};
use nvc_datasets::polybench::polybench;
use nvc_machine::TargetConfig;
use nvc_polly::{optimize_source, PollyConfig};
use nvc_vectorizer::VectorDecision;

fn main() {
    let target = TargetConfig::i7_8559u();
    let plain = Compiler::new(target.clone());
    let polly = Compiler::new(target.clone()).with_polly(PollyConfig::default());

    // Show what the optimizer actually does to gemm.
    let gemm = polybench()
        .into_iter()
        .find(|k| k.name == "poly_gemm")
        .expect("gemm exists");
    let (optimized, report) =
        optimize_source(&gemm.source, &PollyConfig::default()).expect("gemm optimizes");
    println!("--- gemm after Polly-lite ({report:?}) ---");
    for line in optimized.lines().take(14) {
        println!("{line}");
    }
    println!("…\n");

    println!(
        "{:<16}{:>12}{:>12}{:>12}{:>14}",
        "kernel", "baseline", "polly", "pragma", "polly+pragma"
    );
    for k in polybench() {
        let base = plain.run_baseline(&k).expect("compiles").total_cycles;
        let t_polly = polly.run_baseline(&k).expect("compiles").total_cycles;
        // A fixed aggressive pragma — what a human expert might write.
        let pragma = |l: &nvc_ir::LoweredLoop| {
            let _ = l;
            LoopDecision::Pragma(VectorDecision::new(8, 4))
        };
        let t_pragma = plain.run_with(&k, pragma).expect("compiles").total_cycles;
        let t_both = polly.run_with(&k, pragma).expect("compiles").total_cycles;
        println!(
            "{:<16}{:>11.2}x{:>11.2}x{:>11.2}x{:>13.2}x",
            k.name.trim_start_matches("poly_"),
            1.0,
            base / t_polly,
            base / t_pragma,
            base / t_both,
        );
    }
    println!("\nPolly wins the large matrix-matrix kernels (tiling + interchange),");
    println!("does nothing for the stencil, and composes with pragmas — the");
    println!("combination the paper reports as 2.92x on PolyBench.");
}
