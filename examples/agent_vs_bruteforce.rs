//! Scenario: how close does the trained agent get to exhaustive search?
//!
//! The paper's headline claim is that one inference step lands within 3%
//! of a 35-compilations-per-loop brute-force search. This example trains
//! a reduced agent, holds out loops the agent never trained on, and
//! prints the per-loop decisions and rewards of both.
//!
//! ```text
//! cargo run --release --example agent_vs_bruteforce
//! ```

use neurovectorizer::{NeuroVectorizer, NvConfig, VectorizeEnv};
use nvc_agents::brute_force_best;
use nvc_datasets::generator;

fn main() {
    let cfg = NvConfig::fast().with_seed(7);

    // Train on one slice of the generator stream…
    let train = generator::generate(7, 96);
    let mut train_env = VectorizeEnv::new(train, cfg.target.clone(), &cfg.embed);
    let mut nv = NeuroVectorizer::new(cfg.clone());
    println!("training on {} loops…", train_env.contexts().len());
    let stats = nv.train(&mut train_env, 25);
    println!(
        "final training reward mean: {:+.3}",
        stats.last().map(|s| s.reward_mean).unwrap_or(f64::NAN)
    );

    // …evaluate on a different slice (different seed → unseen loops).
    let held_out = generator::generate(1234, 16);
    let eval_env = VectorizeEnv::new(held_out, cfg.target.clone(), &cfg.embed);
    let dims = nvc_rl::ActionDims {
        n_vf: eval_env.space().vfs.len(),
        n_if: eval_env.space().ifs.len(),
    };

    println!(
        "\n{:<26}{:>12}{:>10}{:>14}{:>10}{:>8}",
        "loop", "agent", "reward", "brute force", "reward", "gap"
    );
    let mut agent_total = 0.0;
    let mut bf_total = 0.0;
    let n = eval_env.contexts().len();
    for (i, ctx) in eval_env.contexts().iter().enumerate() {
        let agent_action = nv.decide(&ctx.sample, eval_env.space());
        let agent_reward = eval_env.reward_of_decision(i, agent_action);

        let (bf_pair, bf_reward) = brute_force_best(dims, |(v, f)| {
            eval_env.reward_of_decision(i, eval_env.space().decision_from_pair(v, f))
        });
        let bf_action = eval_env.space().decision_from_pair(bf_pair.0, bf_pair.1);

        agent_total += agent_reward;
        bf_total += bf_reward;
        println!(
            "{:<26}{:>12}{:>+10.3}{:>14}{:>+10.3}{:>8.3}",
            eval_env.kernels()[ctx.kernel_index].name,
            agent_action.to_string(),
            agent_reward,
            bf_action.to_string(),
            bf_reward,
            bf_reward - agent_reward,
        );
    }
    println!(
        "\nmean reward: agent {:+.3} vs brute force {:+.3} ({} loops)",
        agent_total / n as f64,
        bf_total / n as f64,
        n
    );
    println!(
        "search cost: agent = 1 inference/loop, brute force = {} compile+runs/loop",
        dims.n_vf * dims.n_if
    );
}
