//! Quickstart: train a small NeuroVectorizer and use it to inject
//! vectorization pragmas into new C source.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use neurovectorizer::{NeuroVectorizer, NvConfig, VectorizeEnv};
use nvc_datasets::generator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A training pool of synthetic loops (§3.2 of the paper builds
    //    >10,000 of these; a quickstart needs far fewer).
    let cfg = NvConfig::fast().with_seed(42);
    let kernels = generator::generate(42, 48);
    println!(
        "training pool: {} kernels across {} families",
        kernels.len(),
        generator::family_names().len()
    );

    // 2. The contextual-bandit environment: loops are contexts, pragma
    //    factors are actions, normalized execution-time improvement is the
    //    reward.
    let mut env = VectorizeEnv::new(kernels, cfg.target.clone(), &cfg.embed);
    println!("extracted {} innermost loops", env.contexts().len());

    // 3. Train PPO end to end (embedding + policy).
    let mut nv = NeuroVectorizer::new(cfg);
    let stats = nv.train(&mut env, 15);
    for s in stats.iter().step_by(3) {
        println!(
            "  steps {:>6}  reward_mean {:+.3}  loss {:+.3}",
            s.steps, s.reward_mean, s.loss
        );
    }

    // 4. Inference: the trained agent annotates code it has never seen.
    let source = "float out0[2048]; float in0[2048]; float in1[2048];
void madd(int n) {
    for (int i = 0; i < n; i++) {
        out0[i] = in0[i] * in1[i] + out0[i];
    }
}

int reduce(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc += in0[i] > 0.0 ? 1 : 0;
    }
    return acc;
}";
    let annotated = nv.vectorize_source(source)?;
    println!("\n--- annotated source ---\n{annotated}");
    Ok(())
}
