//! Dense row-major `f32` matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// A dense matrix of `f32` in row-major order.
///
/// Vectors are represented as `1×n` or `n×1` matrices; scalars as `1×1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Tensor { rows, cols, data }
    }

    /// Creates a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A `1×1` tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        // i-k-j loop order: streams `other` rows, vectorizer friendly.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combination with another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let b = Tensor::from_rows(&[vec![4.0], vec![5.0], vec![6.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (1, 1));
        assert_eq!(c.data()[0], 32.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transposed().transposed(), a);
        assert_eq!(a.transposed().shape(), (3, 2));
        assert_eq!(a.transposed()[(2, 1)], 6.0);
    }

    #[test]
    fn indexing() {
        let mut a = Tensor::zeros(2, 2);
        a[(1, 0)] = 7.0;
        assert_eq!(a[(1, 0)], 7.0);
        assert_eq!(a.row(1), &[7.0, 0.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::full(2, 2, 1.0);
        let b = Tensor::full(2, 2, 2.0);
        a.add_scaled(&b, 0.5);
        assert_eq!(a, Tensor::full(2, 2, 2.0));
    }

    proptest! {
        /// (A B)ᵀ = Bᵀ Aᵀ
        #[test]
        fn prop_transpose_of_product(
            m in 1usize..5, n in 1usize..5, k in 1usize..5,
            seed in 0u64..1000
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let a = Tensor::from_vec(m, k, (0..m*k).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let b = Tensor::from_vec(k, n, (0..k*n).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let lhs = a.matmul(&b).transposed();
            let rhs = b.transposed().matmul(&a.transposed());
            for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        /// Matmul distributes over addition.
        #[test]
        fn prop_matmul_distributes(
            m in 1usize..4, n in 1usize..4, k in 1usize..4,
            seed in 0u64..1000
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut t = |r: usize, c: usize| {
                Tensor::from_vec(r, c, (0..r*c).map(|_| rng.gen_range(-1.0..1.0)).collect())
            };
            let a = t(m, k);
            let b = t(k, n);
            let c = t(k, n);
            let sum = b.zip(&c, |x, y| x + y);
            let lhs = a.matmul(&sum);
            let rhs_b = a.matmul(&b);
            let rhs = rhs_b.zip(&a.matmul(&c), |x, y| x + y);
            for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        /// Sum is invariant under transpose.
        #[test]
        fn prop_sum_transpose_invariant(m in 1usize..6, n in 1usize..6, seed in 0u64..100) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let a = Tensor::from_vec(m, n, (0..m*n).map(|_| rng.gen_range(-1.0..1.0)).collect());
            prop_assert!((a.sum() - a.transposed().sum()).abs() < 1e-4);
        }
    }
}
