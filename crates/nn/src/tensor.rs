//! Dense row-major `f32` matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::kernels;

/// A dense matrix of `f32` in row-major order.
///
/// Vectors are represented as `1×n` or `n×1` matrices; scalars as `1×1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Tensor { rows, cols, data }
    }

    /// Creates a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A `1×1` tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_accum_into(other, &mut out);
        out
    }

    /// Accumulates `self × other` into `out` (`out += self × other`).
    ///
    /// In [`KernelMode::Strict`](kernels::KernelMode) this is the tiled
    /// loop of [`Tensor::matmul_accum_into_tiled`] with its inner columns
    /// run as explicit 8-wide register-accumulator blocks, and the output
    /// rows optionally sharded across worker threads
    /// ([`crate::kernels::set_matmul_threads`]; small products stay
    /// serial under the work floor). For each output element the partial
    /// products are still summed in ascending `k` — unroll lanes are
    /// independent elements and shards are whole rows — so results are
    /// bitwise-identical to the textbook i-k-j loop at **any** thread
    /// count, which is what keeps batched forwards equal to per-sample
    /// forwards. Dense data takes no branches in the inner loop and
    /// `0 × NaN` propagates as NaN (IEEE semantics, no zero-skip).
    ///
    /// In [`KernelMode::Fast`](kernels::KernelMode) the same tile
    /// structure runs with fused `mul_add` accumulators
    /// ([`kernels::fast`]), and tall-thin products whose row count caps
    /// row sharding split the reduction dimension across workers instead
    /// ([`kernels::k_split_shards`]), each worker producing a partial
    /// `m×n` sum combined on the caller — ε-close to strict, identical
    /// `NaN`/`±∞` propagation, identical decisions.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul_accum_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
        let _timer = nvc_obs::time_op(nvc_obs::Op::MatMul);
        let (m, kd, n) = (self.rows, self.cols, other.cols);
        let madds = m.saturating_mul(kd).saturating_mul(n);
        if kernels::kernel_mode() == kernels::KernelMode::Fast {
            if let Some(shards) = kernels::k_split_shards(m, kd, madds) {
                kernels::run_mm_k_split(shards, m, n, kd, &mut out.data, &|k0, k1, partial| {
                    kernels::fast::mm_rows_fast(
                        &self.data,
                        &other.data,
                        kd,
                        n,
                        k0,
                        k1,
                        0,
                        m,
                        partial,
                    );
                });
                return;
            }
            let threads = kernels::effective_threads(m, madds);
            kernels::run_row_sharded(threads, m, n, &mut out.data, &|r0, r1, rows| {
                kernels::fast::mm_rows_fast(&self.data, &other.data, kd, n, 0, kd, r0, r1, rows);
            });
            return;
        }
        let threads = kernels::effective_threads(m, madds);
        kernels::run_row_sharded(threads, m, n, &mut out.data, &|r0, r1, rows| {
            kernels::mm_rows(&self.data, &other.data, kd, n, r0, r1, rows);
        });
    }

    /// The cache-blocked single-threaded kernel, retained as the
    /// reference baseline the threaded/unrolled
    /// [`Tensor::matmul_accum_into`] is parity-tested and benchmarked
    /// against: 64×64 tiles of `other` stay L1-resident while every row
    /// of `self` streams over them, and each output element sums its
    /// partial products in ascending `k` (bitwise-equal to the textbook
    /// i-k-j loop).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul_accum_into_tiled(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
        const MM_KB: usize = 64;
        const MM_JB: usize = 64;
        let (m, kd, n) = (self.rows, self.cols, other.cols);
        let mut kb = 0;
        while kb < kd {
            let k_end = (kb + MM_KB).min(kd);
            let mut jb = 0;
            while jb < n {
                let j_end = (jb + MM_JB).min(n);
                for i in 0..m {
                    let a_row = &self.data[i * kd..(i + 1) * kd];
                    let out_row = &mut out.data[i * n + jb..i * n + j_end];
                    for k in kb..k_end {
                        let a = a_row[k];
                        let b_row = &other.data[k * n + jb..k * n + j_end];
                        for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                            *o += a * b;
                        }
                    }
                }
                jb = j_end;
            }
            kb = k_end;
        }
    }

    /// `selfᵀ × other` without materializing the transpose.
    ///
    /// This is the `xᵀ·g` shape reverse-mode matmul produces for its
    /// left-operand gradient: the k-outer/i-mid/j-inner order reads both
    /// inputs strictly row-by-row (sequential memory), where transposing
    /// first would stride-walk a freshly allocated copy. Accumulation per
    /// output element is ascending `k`, matching
    /// `self.transposed().matmul(other)` bitwise.
    ///
    /// # Panics
    ///
    /// Panics unless `self.rows == other.rows`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.cols, other.cols);
        self.matmul_tn_accum_into(other, &mut out);
        out
    }

    /// Accumulates `selfᵀ × other` into `out` (see [`Tensor::matmul_tn`]).
    ///
    /// Output rows (columns of `self`) shard across worker threads under
    /// the same parity contract as [`Tensor::matmul_accum_into`]; the
    /// inner columns run through the 8-wide unrolled `axpy` block.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul_tn_accum_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: {}x{} ᵀ× {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let _timer = nvc_obs::time_op(nvc_obs::Op::MatMulTn);
        let (m, n) = (self.cols, other.cols);
        assert_eq!(out.shape(), (m, n), "matmul_tn output shape mismatch");
        let kr = self.rows;
        let threads = kernels::effective_threads(m, kr.saturating_mul(m).saturating_mul(n));
        if kernels::kernel_mode() == kernels::KernelMode::Fast {
            kernels::run_row_sharded(threads, m, n, &mut out.data, &|i0, i1, rows| {
                kernels::fast::tn_rows_fast(&self.data, &other.data, kr, m, n, i0, i1, rows);
            });
            return;
        }
        kernels::run_row_sharded(threads, m, n, &mut out.data, &|i0, i1, rows| {
            kernels::tn_rows(&self.data, &other.data, kr, m, n, i0, i1, rows);
        });
    }

    /// `self × otherᵀ` without materializing the transpose.
    ///
    /// The `g·wᵀ` shape of reverse-mode matmul's right-operand gradient:
    /// every output element is a dot product of two rows, so both inputs
    /// are read sequentially. Ascending-`k` accumulation matches
    /// `self.matmul(&other.transposed())` bitwise.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols == other.cols`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.rows);
        self.matmul_nt_accum_into(other, &mut out);
        out
    }

    /// Accumulates `self × otherᵀ` into `out` (see [`Tensor::matmul_nt`]).
    ///
    /// Output rows shard across worker threads under the same parity
    /// contract as [`Tensor::matmul_accum_into`]; four output columns run
    /// as independent dot-product accumulators per step.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul_nt_accum_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} ×ᵀ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let _timer = nvc_obs::time_op(nvc_obs::Op::MatMulNt);
        let (m, kd, n) = (self.rows, self.cols, other.rows);
        assert_eq!(out.shape(), (m, n), "matmul_nt output shape mismatch");
        let threads = kernels::effective_threads(m, m.saturating_mul(kd).saturating_mul(n));
        if kernels::kernel_mode() == kernels::KernelMode::Fast {
            kernels::run_row_sharded(threads, m, n, &mut out.data, &|i0, i1, rows| {
                kernels::fast::nt_rows_fast(&self.data, &other.data, kd, n, i0, i1, rows);
            });
            return;
        }
        kernels::run_row_sharded(threads, m, n, &mut out.data, &|i0, i1, rows| {
            kernels::nt_rows(&self.data, &other.data, kd, n, i0, i1, rows);
        });
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Consumes the tensor, returning its backing buffer (used by the
    /// arena to recycle allocations across graphs).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Elementwise map in place (no allocation).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data.iter_mut() {
            *x = f(*x);
        }
    }

    /// In-place elementwise combination: `self[i] = f(self[i], other[i])`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_inplace(&mut self, other: &Tensor, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = f(*a, b);
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combination with another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let b = Tensor::from_rows(&[vec![4.0], vec![5.0], vec![6.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (1, 1));
        assert_eq!(c.data()[0], 32.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transposed().transposed(), a);
        assert_eq!(a.transposed().shape(), (3, 2));
        assert_eq!(a.transposed()[(2, 1)], 6.0);
    }

    #[test]
    fn indexing() {
        let mut a = Tensor::zeros(2, 2);
        a[(1, 0)] = 7.0;
        assert_eq!(a[(1, 0)], 7.0);
        assert_eq!(a.row(1), &[7.0, 0.0]);
    }

    /// The seed kernel skipped `a == 0.0` rows entirely, which silently
    /// swallowed NaNs in the right operand (`0 × NaN` is NaN, not 0).
    /// The tiled kernel must follow IEEE semantics.
    #[test]
    fn matmul_propagates_nan_through_zero_lhs() {
        let a = Tensor::from_rows(&[vec![0.0, 0.0]]);
        let b = Tensor::from_rows(&[vec![f32::NAN, 1.0], vec![2.0, 3.0]]);
        let c = a.matmul(&b);
        assert!(c[(0, 0)].is_nan(), "0 × NaN must propagate NaN");
        assert_eq!(c[(0, 1)], 0.0);
    }

    /// Textbook i-k-j reference the tiled kernel must match bitwise
    /// (identical ascending-k accumulation order).
    fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                for j in 0..b.cols() {
                    out[(i, j)] += a[(i, k)] * b[(k, j)];
                }
            }
        }
        out
    }

    fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect(),
        )
    }

    /// Tiled kernel on shapes spanning several tile boundaries, including
    /// dimensions beyond one 64-wide block.
    #[test]
    fn tiled_matmul_matches_reference_across_blocks() {
        // Deployed-vs-reference bitwise equality is a *strict*-contract
        // claim; pin the mode so the NVC_KERNEL_MODE=fast CI leg keeps
        // asserting it (fast is covered by tests/fast_parity.rs).
        let _guard = crate::kernels::KNOB_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::kernels::set_kernel_mode(crate::kernels::KernelMode::Strict);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 70, 5),
            (17, 130, 65),
            (64, 64, 64),
            (2, 200, 130),
        ] {
            let a = random_tensor(m, k, (m * 1000 + n) as u64);
            let b = random_tensor(k, n, (k * 7 + 3) as u64);
            let tiled = a.matmul(&b);
            let reference = matmul_reference(&a, &b);
            assert_eq!(tiled, reference, "tiled kernel diverged at {m}x{k}x{n}");
        }
        crate::kernels::set_kernel_mode(crate::kernels::default_kernel_mode());
    }

    /// The deployed (unrolled, optionally threaded) kernel and the tiled
    /// reference baseline must agree bitwise at every thread count,
    /// including shapes that straddle the 8-wide unroll blocks.
    #[test]
    fn deployed_matmul_matches_tiled_baseline_at_any_thread_count() {
        let _guard = crate::kernels::KNOB_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::kernels::set_matmul_grain(1);
        // Bitwise equality to the tiled baseline is the strict contract.
        crate::kernels::set_kernel_mode(crate::kernels::KernelMode::Strict);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (5, 70, 13),
            (17, 130, 65),
            (9, 3, 100),
        ] {
            let a = random_tensor(m, k, (m * 31 + n) as u64);
            let b = random_tensor(k, n, (k * 17 + 5) as u64);
            let mut tiled = Tensor::zeros(m, n);
            a.matmul_accum_into_tiled(&b, &mut tiled);
            for threads in [1usize, 2, 3, 8] {
                crate::kernels::set_matmul_threads(threads);
                assert_eq!(
                    a.matmul(&b),
                    tiled,
                    "deployed kernel diverged at {m}x{k}x{n}, {threads} threads"
                );
            }
        }
        // Restore the configured defaults (env-aware, not a hardcoded 1)
        // so the NVC_MATMUL_THREADS CI leg stays threaded after this test.
        crate::kernels::set_matmul_threads(crate::kernels::default_matmul_threads());
        crate::kernels::set_matmul_grain(crate::kernels::DEFAULT_MATMUL_GRAIN);
        crate::kernels::set_kernel_mode(crate::kernels::default_kernel_mode());
    }

    #[test]
    fn matmul_tn_nt_match_materialized_transposes() {
        // Holds at either mode (both sides share one madd chain per
        // element), but the mode must not *flip between* the two deployed
        // calls — serialize against the mode-pinning tests.
        let _guard = crate::kernels::KNOB_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        for &(m, k, n) in &[(1, 4, 3), (9, 70, 11), (33, 5, 80)] {
            // tn: aᵀ·b where a is k×m (shared leading dim k).
            let a = random_tensor(k, m, 11 + m as u64);
            let b = random_tensor(k, n, 13 + n as u64);
            assert_eq!(a.matmul_tn(&b), a.transposed().matmul(&b));
            // nt: g·wᵀ where g is m×k, w is n×k (shared trailing dim k).
            let g = random_tensor(m, k, 17 + m as u64);
            let w = random_tensor(n, k, 19 + n as u64);
            assert_eq!(g.matmul_nt(&w), g.matmul(&w.transposed()));
        }
    }

    #[test]
    fn inplace_helpers_match_allocating_versions() {
        let a = random_tensor(4, 5, 23);
        let b = random_tensor(4, 5, 29);
        let mut m = a.clone();
        m.map_inplace(|x| x * 2.0 + 1.0);
        assert_eq!(m, a.map(|x| x * 2.0 + 1.0));
        let mut z = a.clone();
        z.zip_inplace(&b, |x, y| x - y);
        assert_eq!(z, a.zip(&b, |x, y| x - y));
    }

    #[test]
    fn into_data_roundtrip() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let buf = a.clone().into_data();
        assert_eq!(Tensor::from_vec(2, 3, buf), a);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::full(2, 2, 1.0);
        let b = Tensor::full(2, 2, 2.0);
        a.add_scaled(&b, 0.5);
        assert_eq!(a, Tensor::full(2, 2, 2.0));
    }

    proptest! {
        /// The tiled kernel is bitwise-identical to the textbook i-k-j
        /// loop on arbitrary shapes (tile-boundary straddling included).
        #[test]
        fn prop_tiled_matmul_matches_reference(
            m in 1usize..12, n in 1usize..80, k in 1usize..80,
            seed in 0u64..1000
        ) {
            use rand::{Rng, SeedableRng};
            // Strict-contract claim: pin the mode for this case (fast is
            // covered ε-wise in tests/fast_parity.rs).
            let _guard = crate::kernels::KNOB_LOCK
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            crate::kernels::set_kernel_mode(crate::kernels::KernelMode::Strict);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let a = Tensor::from_vec(m, k, (0..m*k).map(|_| rng.gen_range(-2.0..2.0)).collect());
            let b = Tensor::from_vec(k, n, (0..k*n).map(|_| rng.gen_range(-2.0..2.0)).collect());
            let got = a.matmul(&b);
            crate::kernels::set_kernel_mode(crate::kernels::default_kernel_mode());
            prop_assert_eq!(got, matmul_reference(&a, &b));
        }

        /// Transpose-free kernels agree bitwise with transpose-then-matmul.
        #[test]
        fn prop_tn_nt_match_transposed_matmul(
            m in 1usize..8, n in 1usize..40, k in 1usize..40,
            seed in 0u64..1000
        ) {
            use rand::{Rng, SeedableRng};
            // Mode-stable comparison (see matmul_tn_nt_match_...).
            let _guard = crate::kernels::KNOB_LOCK
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let a = Tensor::from_vec(k, m, (0..k*m).map(|_| rng.gen_range(-2.0..2.0)).collect());
            let b = Tensor::from_vec(k, n, (0..k*n).map(|_| rng.gen_range(-2.0..2.0)).collect());
            prop_assert_eq!(a.matmul_tn(&b), a.transposed().matmul(&b));
            let g = Tensor::from_vec(m, k, (0..m*k).map(|_| rng.gen_range(-2.0..2.0)).collect());
            let w = Tensor::from_vec(n, k, (0..n*k).map(|_| rng.gen_range(-2.0..2.0)).collect());
            prop_assert_eq!(g.matmul_nt(&w), g.matmul(&w.transposed()));
        }

        /// (A B)ᵀ = Bᵀ Aᵀ
        #[test]
        fn prop_transpose_of_product(
            m in 1usize..5, n in 1usize..5, k in 1usize..5,
            seed in 0u64..1000
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let a = Tensor::from_vec(m, k, (0..m*k).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let b = Tensor::from_vec(k, n, (0..k*n).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let lhs = a.matmul(&b).transposed();
            let rhs = b.transposed().matmul(&a.transposed());
            for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        /// Matmul distributes over addition.
        #[test]
        fn prop_matmul_distributes(
            m in 1usize..4, n in 1usize..4, k in 1usize..4,
            seed in 0u64..1000
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut t = |r: usize, c: usize| {
                Tensor::from_vec(r, c, (0..r*c).map(|_| rng.gen_range(-1.0..1.0)).collect())
            };
            let a = t(m, k);
            let b = t(k, n);
            let c = t(k, n);
            let sum = b.zip(&c, |x, y| x + y);
            let lhs = a.matmul(&sum);
            let rhs_b = a.matmul(&b);
            let rhs = rhs_b.zip(&a.matmul(&c), |x, y| x + y);
            for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        /// Sum is invariant under transpose.
        #[test]
        fn prop_sum_transpose_invariant(m in 1usize..6, n in 1usize..6, seed in 0u64..100) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let a = Tensor::from_vec(m, n, (0..m*n).map(|_| rng.gen_range(-1.0..1.0)).collect());
            prop_assert!((a.sum() - a.transposed().sum()).abs() < 1e-4);
        }
    }
}
