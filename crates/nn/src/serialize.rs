//! A small self-describing text checkpoint format.
//!
//! The sanctioned offline dependency set includes `serde` but no concrete
//! format crate, so checkpoints use a simple line-oriented format:
//!
//! ```text
//! nvc-nn-checkpoint v1
//! param <name> <rows> <cols>
//! <row of f32 values separated by spaces>
//! …
//! ```
//!
//! Values round-trip exactly via hexadecimal bit patterns.

use std::fmt::Write as _;

use crate::params::ParamStore;
use crate::tensor::Tensor;

/// Serializes every parameter of `store` to the checkpoint format.
pub fn to_string(store: &ParamStore) -> String {
    let mut out = String::from("nvc-nn-checkpoint v1\n");
    for (_, name, t) in store.iter() {
        let _ = writeln!(out, "param {} {} {}", name, t.rows(), t.cols());
        for r in 0..t.rows() {
            let row = t.row(r);
            let mut line = String::with_capacity(row.len() * 9);
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    line.push(' ');
                }
                let _ = write!(line, "{:08x}", v.to_bits());
            }
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// FNV-1a accumulator for checkpoint content hashing (the offline
/// dependency set has no hashing crate; this matches `nvc-embed`'s token
/// hasher constants).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn hash_entries(entries: &mut Vec<(&str, &Tensor)>) -> u64 {
    // Sorting by name makes the hash a function of checkpoint *content*,
    // not of the order parameters happened to be registered in — two
    // stores holding the same tensors under the same names hash equal.
    entries.sort_by(|a, b| a.0.cmp(b.0));
    let mut h = Fnv1a::new();
    for (name, t) in entries.iter() {
        h.write(name.as_bytes());
        h.write(&[0]);
        h.write(&(t.rows() as u64).to_le_bytes());
        h.write(&(t.cols() as u64).to_le_bytes());
        for v in t.data() {
            h.write(&v.to_bits().to_le_bytes());
        }
    }
    h.0
}

/// Content hash of every parameter in `store`: name, shape, and exact
/// f32 bit patterns, independent of parameter insertion order.
///
/// This is the version key of the serving tier's persistent decision
/// cache: a cache snapshot taken under one checkpoint must not be served
/// under another, and [`checkpoint_hash_text`] of
/// [`to_string`]`(store)` equals `checkpoint_hash(store)`, so the daemon
/// can hash a checkpoint file without a matching [`ParamStore`].
pub fn checkpoint_hash(store: &ParamStore) -> u64 {
    let mut entries: Vec<(&str, &Tensor)> = store.iter().map(|(_, n, t)| (n, t)).collect();
    hash_entries(&mut entries)
}

/// [`checkpoint_hash`] computed from checkpoint text instead of a live
/// store.
///
/// # Errors
///
/// Returns [`ParseCheckpointError`] when the text is not a valid
/// checkpoint.
pub fn checkpoint_hash_text(text: &str) -> Result<u64, ParseCheckpointError> {
    let parsed = parse(text)?;
    let mut entries: Vec<(&str, &Tensor)> = parsed.iter().map(|(n, t)| (n.as_str(), t)).collect();
    Ok(hash_entries(&mut entries))
}

/// Content address of one served decision: the checkpoint hash in the
/// high 64 bits, the sample key in the low 64.
///
/// This is the key of the fleet-wide shared decision store: a decision
/// is a pure function of `(checkpoint, sample)`, so the same address is
/// valid on every node, on both sides of an A/B split, and across
/// hot-swap reloads back to an already-seen checkpoint — wherever it
/// was computed.
pub fn content_address(checkpoint_hash: u64, sample_key: u64) -> u128 {
    (u128::from(checkpoint_hash) << 64) | u128::from(sample_key)
}

/// Renders a [`content_address`] as 32 lowercase hex digits
/// (checkpoint hash first), the wire/debug spelling.
pub fn format_content_address(addr: u128) -> String {
    format!("{addr:032x}")
}

/// Parses the [`format_content_address`] spelling back to an address.
pub fn parse_content_address(s: &str) -> Option<u128> {
    if s.len() != 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

/// Errors from parsing a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCheckpointError {
    message: String,
    line: usize,
}

impl std::fmt::Display for ParseCheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCheckpointError {}

fn err(message: impl Into<String>, line: usize) -> ParseCheckpointError {
    ParseCheckpointError {
        message: message.into(),
        line,
    }
}

/// Parses a checkpoint back into `(name, tensor)` pairs.
///
/// # Errors
///
/// Returns [`ParseCheckpointError`] on any structural or numeric problem.
pub fn parse(text: &str) -> Result<Vec<(String, Tensor)>, ParseCheckpointError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err("empty checkpoint", 1))?;
    if header.trim() != "nvc-nn-checkpoint v1" {
        return Err(err("bad header", 1));
    }
    let mut out = Vec::new();
    while let Some((ln, line)) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("param") {
            return Err(err("expected `param`", ln + 1));
        }
        let name = parts
            .next()
            .ok_or_else(|| err("missing name", ln + 1))?
            .to_string();
        let rows: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("bad rows", ln + 1))?;
        let cols: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("bad cols", ln + 1))?;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            let (rln, row) = lines
                .next()
                .ok_or_else(|| err("unexpected end of tensor", ln + 1))?;
            for tok in row.split_whitespace() {
                let bits = u32::from_str_radix(tok, 16)
                    .map_err(|_| err(format!("bad value `{tok}`"), rln + 1))?;
                data.push(f32::from_bits(bits));
            }
        }
        if data.len() != rows * cols {
            return Err(err("tensor size mismatch", ln + 1));
        }
        out.push((name, Tensor::from_vec(rows, cols, data)));
    }
    Ok(out)
}

/// Loads checkpoint values into `store`, matching parameters by name.
///
/// # Errors
///
/// Returns an error when a checkpoint entry has no matching parameter or
/// the shapes differ.
pub fn load_into(store: &mut ParamStore, text: &str) -> Result<(), ParseCheckpointError> {
    let entries = parse(text)?;
    for (name, tensor) in entries {
        let id = store
            .iter()
            .find(|(_, n, _)| *n == name)
            .map(|(id, _, _)| id)
            .ok_or_else(|| err(format!("no parameter named `{name}`"), 0))?;
        if store.get(id).shape() != tensor.shape() {
            return Err(err(format!("shape mismatch for `{name}`"), 0));
        }
        *store.get_mut(id) = tensor;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact() {
        let mut s = ParamStore::new(11);
        s.param_xavier("enc.w", 7, 5);
        s.param(
            "enc.b",
            Tensor::from_vec(1, 3, vec![0.1, -2.5e-8, f32::MIN_POSITIVE]),
        );
        let text = to_string(&s);

        let mut s2 = ParamStore::new(0);
        let w = s2.param("enc.w", Tensor::zeros(7, 5));
        let b = s2.param("enc.b", Tensor::zeros(1, 3));
        load_into(&mut s2, &text).unwrap();
        assert_eq!(s2.get(w).data(), s.iter().next().unwrap().2.data());
        assert_eq!(s2.get(b).data()[2], f32::MIN_POSITIVE);
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(parse("garbage\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn content_address_packs_and_roundtrips() {
        let a = content_address(0xDEAD_BEEF_0123_4567, 0x0011_2233_4455_6677);
        assert_eq!(a >> 64, 0xDEAD_BEEF_0123_4567);
        assert_eq!(a as u64, 0x0011_2233_4455_6677);
        let s = format_content_address(a);
        assert_eq!(s, "deadbeef012345670011223344556677");
        assert_eq!(parse_content_address(&s), Some(a));
        assert_eq!(parse_content_address("deadbeef"), None, "wrong length");
        assert_eq!(
            parse_content_address("zeadbeef012345670011223344556677"),
            None,
            "non-hex"
        );
        // Distinct checkpoints never alias the same sample.
        assert_ne!(content_address(1, 7), content_address(2, 7));
        assert_ne!(content_address(1, 7), content_address(7, 1));
    }

    #[test]
    fn parse_rejects_truncated_tensor() {
        let text = "nvc-nn-checkpoint v1\nparam w 2 2\n3f800000 3f800000\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let mut s = ParamStore::new(0);
        s.param("w", Tensor::zeros(1, 2));
        let text = "nvc-nn-checkpoint v1\nparam w 2 2\n3f800000 3f800000\n3f800000 3f800000\n";
        assert!(load_into(&mut s, text).is_err());
    }

    #[test]
    fn load_rejects_unknown_param() {
        let mut s = ParamStore::new(0);
        s.param("other", Tensor::zeros(1, 1));
        let text = "nvc-nn-checkpoint v1\nparam w 1 1\n3f800000\n";
        assert!(load_into(&mut s, text).is_err());
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let mut s = ParamStore::new(4);
        s.param("a", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        s.param("b", Tensor::from_vec(2, 1, vec![3.0, 4.0]));
        let h = checkpoint_hash(&s);
        assert_eq!(h, checkpoint_hash(&s), "hash must be deterministic");
        assert_eq!(
            checkpoint_hash_text(&to_string(&s)).unwrap(),
            h,
            "text hash must agree with the live-store hash"
        );
        // Any content change moves the hash: a value bit, a name, a shape.
        let mut s2 = s.clone();
        s2.get_mut(ParamId(0)).data_mut()[0] = 1.0 + f32::EPSILON;
        assert_ne!(checkpoint_hash(&s2), h);
        let mut s3 = ParamStore::new(4);
        s3.param("a", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        s3.param("c", Tensor::from_vec(2, 1, vec![3.0, 4.0]));
        assert_ne!(checkpoint_hash(&s3), h, "renamed parameter must rehash");
        let mut s4 = ParamStore::new(4);
        s4.param("a", Tensor::from_vec(2, 1, vec![1.0, 2.0]));
        s4.param("b", Tensor::from_vec(2, 1, vec![3.0, 4.0]));
        assert_ne!(checkpoint_hash(&s4), h, "reshaped parameter must rehash");
    }

    #[test]
    fn hash_text_rejects_garbage() {
        assert!(checkpoint_hash_text("not a checkpoint").is_err());
    }

    use crate::params::ParamId;
    use proptest::prelude::*;

    /// Bit patterns that exercise every special f32 class: ±0, NaN
    /// (quiet and signalling payloads), ±∞, subnormals, and ordinary
    /// values — plus an arbitrary pattern drawn from the case seed.
    fn f32_from_case(class: u8, bits: u32) -> f32 {
        f32::from_bits(match class % 8 {
            0 => 0x0000_0000,                        // +0
            1 => 0x8000_0000,                        // -0
            2 => 0x7FC0_0001,                        // quiet NaN with payload
            3 => 0x7F80_0001,                        // signalling NaN
            4 => 0x7F80_0000 | (bits & 0x8000_0000), // ±∞
            5 => bits & 0x007F_FFFF | 1,             // subnormal
            6 => 0x0000_0001,                        // smallest subnormal
            _ => bits,                               // anything
        })
    }

    proptest! {
        /// `to_string` → `parse` → `load_into` reproduces every f32 bit
        /// pattern exactly, for random shapes and value classes
        /// including NaN/∞/subnormals (bitwise: NaNs compare by bits,
        /// not by `==`).
        #[test]
        fn prop_roundtrip_is_bitwise(
            rows in 1usize..7,
            cols in 1usize..9,
            seed in 0u64..10_000
        ) {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state
            };
            let data: Vec<f32> = (0..rows * cols)
                .map(|_| {
                    let r = next();
                    f32_from_case((r >> 32) as u8, r as u32)
                })
                .collect();
            let mut s = ParamStore::new(0);
            s.param("w", Tensor::from_vec(rows, cols, data.clone()));
            s.param("tail", Tensor::from_vec(1, 1, vec![f32_from_case((seed >> 8) as u8, seed as u32)]));

            let text = to_string(&s);
            let mut s2 = ParamStore::new(1);
            let w2 = s2.param("w", Tensor::zeros(rows, cols));
            s2.param("tail", Tensor::zeros(1, 1));
            load_into(&mut s2, &text).unwrap();
            let round: Vec<u32> = s2.get(w2).data().iter().map(|v| v.to_bits()).collect();
            let orig: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(round, orig);
            // The hash is bit-pattern faithful too: hashing the text
            // equals hashing the store even through NaN payloads.
            prop_assert_eq!(checkpoint_hash_text(&text).unwrap(), checkpoint_hash(&s));
        }

        /// Registering the same `(name, tensor)` set in any order yields
        /// the same checkpoint hash.
        #[test]
        fn prop_hash_ignores_insertion_order(
            n in 2usize..6,
            rotate in 1usize..5,
            seed in 0u64..10_000
        ) {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state
            };
            let tensors: Vec<(String, Tensor)> = (0..n)
                .map(|i| {
                    let rows = 1 + (next() as usize) % 4;
                    let cols = 1 + (next() as usize) % 4;
                    let data = (0..rows * cols)
                        .map(|_| {
                            let r = next();
                            f32_from_case((r >> 32) as u8, r as u32)
                        })
                        .collect();
                    (format!("p{i}"), Tensor::from_vec(rows, cols, data))
                })
                .collect();
            let mut fwd = ParamStore::new(0);
            for (name, t) in &tensors {
                fwd.param(name.clone(), t.clone());
            }
            let mut rot = ParamStore::new(0);
            for i in 0..n {
                let (name, t) = &tensors[(i + rotate) % n];
                rot.param(name.clone(), t.clone());
            }
            prop_assert_eq!(checkpoint_hash(&fwd), checkpoint_hash(&rot));
        }
    }
}
