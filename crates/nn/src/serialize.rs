//! A small self-describing text checkpoint format.
//!
//! The sanctioned offline dependency set includes `serde` but no concrete
//! format crate, so checkpoints use a simple line-oriented format:
//!
//! ```text
//! nvc-nn-checkpoint v1
//! param <name> <rows> <cols>
//! <row of f32 values separated by spaces>
//! …
//! ```
//!
//! Values round-trip exactly via hexadecimal bit patterns.

use std::fmt::Write as _;

use crate::params::ParamStore;
use crate::tensor::Tensor;

/// Serializes every parameter of `store` to the checkpoint format.
pub fn to_string(store: &ParamStore) -> String {
    let mut out = String::from("nvc-nn-checkpoint v1\n");
    for (_, name, t) in store.iter() {
        let _ = writeln!(out, "param {} {} {}", name, t.rows(), t.cols());
        for r in 0..t.rows() {
            let row = t.row(r);
            let mut line = String::with_capacity(row.len() * 9);
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    line.push(' ');
                }
                let _ = write!(line, "{:08x}", v.to_bits());
            }
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Errors from parsing a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCheckpointError {
    message: String,
    line: usize,
}

impl std::fmt::Display for ParseCheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCheckpointError {}

fn err(message: impl Into<String>, line: usize) -> ParseCheckpointError {
    ParseCheckpointError {
        message: message.into(),
        line,
    }
}

/// Parses a checkpoint back into `(name, tensor)` pairs.
///
/// # Errors
///
/// Returns [`ParseCheckpointError`] on any structural or numeric problem.
pub fn parse(text: &str) -> Result<Vec<(String, Tensor)>, ParseCheckpointError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err("empty checkpoint", 1))?;
    if header.trim() != "nvc-nn-checkpoint v1" {
        return Err(err("bad header", 1));
    }
    let mut out = Vec::new();
    while let Some((ln, line)) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("param") {
            return Err(err("expected `param`", ln + 1));
        }
        let name = parts
            .next()
            .ok_or_else(|| err("missing name", ln + 1))?
            .to_string();
        let rows: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("bad rows", ln + 1))?;
        let cols: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("bad cols", ln + 1))?;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            let (rln, row) = lines
                .next()
                .ok_or_else(|| err("unexpected end of tensor", ln + 1))?;
            for tok in row.split_whitespace() {
                let bits = u32::from_str_radix(tok, 16)
                    .map_err(|_| err(format!("bad value `{tok}`"), rln + 1))?;
                data.push(f32::from_bits(bits));
            }
        }
        if data.len() != rows * cols {
            return Err(err("tensor size mismatch", ln + 1));
        }
        out.push((name, Tensor::from_vec(rows, cols, data)));
    }
    Ok(out)
}

/// Loads checkpoint values into `store`, matching parameters by name.
///
/// # Errors
///
/// Returns an error when a checkpoint entry has no matching parameter or
/// the shapes differ.
pub fn load_into(store: &mut ParamStore, text: &str) -> Result<(), ParseCheckpointError> {
    let entries = parse(text)?;
    for (name, tensor) in entries {
        let id = store
            .iter()
            .find(|(_, n, _)| *n == name)
            .map(|(id, _, _)| id)
            .ok_or_else(|| err(format!("no parameter named `{name}`"), 0))?;
        if store.get(id).shape() != tensor.shape() {
            return Err(err(format!("shape mismatch for `{name}`"), 0));
        }
        *store.get_mut(id) = tensor;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact() {
        let mut s = ParamStore::new(11);
        s.param_xavier("enc.w", 7, 5);
        s.param(
            "enc.b",
            Tensor::from_vec(1, 3, vec![0.1, -2.5e-8, f32::MIN_POSITIVE]),
        );
        let text = to_string(&s);

        let mut s2 = ParamStore::new(0);
        let w = s2.param("enc.w", Tensor::zeros(7, 5));
        let b = s2.param("enc.b", Tensor::zeros(1, 3));
        load_into(&mut s2, &text).unwrap();
        assert_eq!(s2.get(w).data(), s.iter().next().unwrap().2.data());
        assert_eq!(s2.get(b).data()[2], f32::MIN_POSITIVE);
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(parse("garbage\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parse_rejects_truncated_tensor() {
        let text = "nvc-nn-checkpoint v1\nparam w 2 2\n3f800000 3f800000\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let mut s = ParamStore::new(0);
        s.param("w", Tensor::zeros(1, 2));
        let text = "nvc-nn-checkpoint v1\nparam w 2 2\n3f800000 3f800000\n3f800000 3f800000\n";
        assert!(load_into(&mut s, text).is_err());
    }

    #[test]
    fn load_rejects_unknown_param() {
        let mut s = ParamStore::new(0);
        s.param("other", Tensor::zeros(1, 1));
        let text = "nvc-nn-checkpoint v1\nparam w 1 1\n3f800000\n";
        assert!(load_into(&mut s, text).is_err());
    }
}
