//! Fast-mode kernel bodies: fused-multiply-add accumulators and the
//! single-pass online-max softmax.
//!
//! Every body is written once, generic over a [`Madd`] strategy, and
//! monomorphized twice:
//!
//! * [`Fused`] uses `f32::mul_add`. That intrinsic is only fast when the
//!   compiler can emit a hardware `vfmadd`; without the `fma` target
//!   feature it lowers to the correctly-rounded-but-slow libm `fmaf`. So
//!   the fused instantiations live behind
//!   `#[target_feature(enable = "avx2", enable = "fma")]` wrappers and
//!   are only dispatched when [`fused_available`] detects both features
//!   at runtime.
//! * [`Unfused`] is the plain `acc + a * b` everywhere else. Fast mode's
//!   other two relaxations (`k`-split sharding, online softmax) still
//!   apply on such hosts.
//!
//! The dispatch decision is made once per process and shared by every
//! fast kernel: mixed fused/unfused chains inside one process would break
//! the chain-equality arguments the fast test tier relies on (e.g. the
//! fused `linear` must equal `matmul` + bias broadcast bit-for-bit at one
//! thread, which holds only if both picked the same madd).

use std::sync::atomic::{AtomicU8, Ordering};

/// One multiply-accumulate step — the only thing the two instantiations
/// disagree on.
pub(crate) trait Madd {
    fn madd(a: f32, b: f32, acc: f32) -> f32;
}

/// Hardware-FMA fold (`a.mul_add(b, acc)`, one rounding).
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
pub(crate) struct Fused;
impl Madd for Fused {
    #[inline(always)]
    fn madd(a: f32, b: f32, acc: f32) -> f32 {
        a.mul_add(b, acc)
    }
}

/// Plain fold (`acc + a * b`, two roundings).
pub(crate) struct Unfused;
impl Madd for Unfused {
    #[inline(always)]
    fn madd(a: f32, b: f32, acc: f32) -> f32 {
        acc + a * b
    }
}

/// Whether this process dispatches the [`Fused`] instantiations. Decided
/// once (AVX2 + FMA detected at runtime on x86-64; `false` elsewhere) and
/// cached, so every fast kernel in the process agrees.
pub fn fused_available() -> bool {
    static FMA: AtomicU8 = AtomicU8::new(2);
    match FMA.load(Ordering::Relaxed) {
        2 => {
            #[cfg(target_arch = "x86_64")]
            let v = std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma");
            #[cfg(not(target_arch = "x86_64"))]
            let v = false;
            FMA.store(v as u8, Ordering::Relaxed);
            v
        }
        v => v == 1,
    }
}

/// `out_rows (+)= a[r0..r1, ks..ke] × b[ks..ke, :]` — the fast twin of
/// [`super::mm_rows`] with madd accumulators and an explicit `k` window
/// so the same body serves both row shards (`ks..ke` = `0..kd`) and
/// `k`-split shards (full rows, one window).
#[inline(always)]
fn mm_rows_g<M: Madd>(
    a: &[f32],
    b: &[f32],
    kd: usize,
    n: usize,
    ks: usize,
    ke: usize,
    r0: usize,
    r1: usize,
    out_rows: &mut [f32],
) {
    const KB: usize = 64;
    const JB: usize = 64;
    let mut kb = ks;
    loop {
        let k_end = (kb + KB).min(ke);
        let mut jb = 0;
        while jb < n {
            let j_end = (jb + JB).min(n);
            for i in r0..r1 {
                let a_row = &a[i * kd..(i + 1) * kd];
                let base = (i - r0) * n;
                mm_tile_row_g::<M>(
                    a_row,
                    b,
                    n,
                    kb,
                    k_end,
                    jb,
                    &mut out_rows[base + jb..base + j_end],
                );
            }
            jb = j_end;
        }
        kb = k_end;
        if kb >= ke {
            break;
        }
    }
}

/// One row × one `(kb..k_end, jb..)` tile, madd register blocks — the
/// fast twin of [`super::mm_tile_row`].
///
/// The main block is 32 columns wide: four independent 8-lane
/// accumulators in flight per `k` step, because a *single* fused chain is
/// latency-bound (one ~4-cycle FMA per step — exactly the throughput of
/// strict's two mul+add chains, i.e. no win at all). Column blocking is
/// pure instruction-level parallelism: every output element still folds
/// its own ascending-`k` madd chain, so the block width changes no bits.
#[inline(always)]
fn mm_tile_row_g<M: Madd>(
    a_row: &[f32],
    b: &[f32],
    n: usize,
    kb: usize,
    k_end: usize,
    jb: usize,
    out_tile: &mut [f32],
) {
    let width = out_tile.len();
    let mut j = 0;
    while j + 32 <= width {
        let mut acc = [[0.0f32; 8]; 4];
        for (q, chunk) in out_tile[j..j + 32].chunks_exact(8).enumerate() {
            acc[q].copy_from_slice(chunk);
        }
        for k in kb..k_end {
            let av = a_row[k];
            let base = k * n + jb + j;
            let b_blk = &b[base..base + 32];
            for q in 0..4 {
                for l in 0..8 {
                    acc[q][l] = M::madd(av, b_blk[q * 8 + l], acc[q][l]);
                }
            }
        }
        for (q, chunk) in out_tile[j..j + 32].chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&acc[q]);
        }
        j += 32;
    }
    while j + 8 <= width {
        let mut acc = [0.0f32; 8];
        acc.copy_from_slice(&out_tile[j..j + 8]);
        for k in kb..k_end {
            let av = a_row[k];
            let b_blk = &b[k * n + jb + j..k * n + jb + j + 8];
            acc[0] = M::madd(av, b_blk[0], acc[0]);
            acc[1] = M::madd(av, b_blk[1], acc[1]);
            acc[2] = M::madd(av, b_blk[2], acc[2]);
            acc[3] = M::madd(av, b_blk[3], acc[3]);
            acc[4] = M::madd(av, b_blk[4], acc[4]);
            acc[5] = M::madd(av, b_blk[5], acc[5]);
            acc[6] = M::madd(av, b_blk[6], acc[6]);
            acc[7] = M::madd(av, b_blk[7], acc[7]);
        }
        out_tile[j..j + 8].copy_from_slice(&acc);
        j += 8;
    }
    while j < width {
        let mut acc = out_tile[j];
        for k in kb..k_end {
            acc = M::madd(a_row[k], b[k * n + jb + j], acc);
        }
        out_tile[j] = acc;
        j += 1;
    }
}

/// Fast twin of [`super::tn_rows`] (`out (+)= (aᵀ×b)[i0..i1]`).
#[inline(always)]
fn tn_rows_g<M: Madd>(
    a: &[f32],
    b: &[f32],
    kr: usize,
    m: usize,
    n: usize,
    i0: usize,
    i1: usize,
    out_rows: &mut [f32],
) {
    for k in 0..kr {
        let a_row = &a[k * m..(k + 1) * m];
        let b_row = &b[k * n..(k + 1) * n];
        for i in i0..i1 {
            let av = a_row[i];
            let out_row = &mut out_rows[(i - i0) * n..(i - i0 + 1) * n];
            let mut xc = b_row.chunks_exact(8);
            let mut yc = out_row.chunks_exact_mut(8);
            for (xs, ys) in (&mut xc).zip(&mut yc) {
                ys[0] = M::madd(av, xs[0], ys[0]);
                ys[1] = M::madd(av, xs[1], ys[1]);
                ys[2] = M::madd(av, xs[2], ys[2]);
                ys[3] = M::madd(av, xs[3], ys[3]);
                ys[4] = M::madd(av, xs[4], ys[4]);
                ys[5] = M::madd(av, xs[5], ys[5]);
                ys[6] = M::madd(av, xs[6], ys[6]);
                ys[7] = M::madd(av, xs[7], ys[7]);
            }
            for (xv, yv) in xc.remainder().iter().zip(yc.into_remainder()) {
                *yv = M::madd(av, *xv, *yv);
            }
        }
    }
}

/// Fast twin of [`super::nt_rows`] (`out (+)= (a×bᵀ)[i0..i1]`).
#[inline(always)]
fn nt_rows_g<M: Madd>(
    a: &[f32],
    b: &[f32],
    kd: usize,
    n: usize,
    i0: usize,
    i1: usize,
    out_rows: &mut [f32],
) {
    for i in i0..i1 {
        let a_row = &a[i * kd..(i + 1) * kd];
        let out_row = &mut out_rows[(i - i0) * n..(i - i0 + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * kd..(j + 1) * kd];
            let b1 = &b[(j + 1) * kd..(j + 2) * kd];
            let b2 = &b[(j + 2) * kd..(j + 3) * kd];
            let b3 = &b[(j + 3) * kd..(j + 4) * kd];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for k in 0..kd {
                let av = a_row[k];
                s0 = M::madd(av, b0[k], s0);
                s1 = M::madd(av, b1[k], s1);
                s2 = M::madd(av, b2[k], s2);
                s3 = M::madd(av, b3[k], s3);
            }
            out_row[j] += s0;
            out_row[j + 1] += s1;
            out_row[j + 2] += s2;
            out_row[j + 3] += s3;
            j += 4;
        }
        while j < n {
            let b_row = &b[j * kd..(j + 1) * kd];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc = M::madd(av, bv, acc);
            }
            out_row[j] += acc;
            j += 1;
        }
    }
}

/// `out_row = Σ_r alpha[r] · x[r, :]` over rows `r0..r1` of `x` — the
/// fast attention-pooling body (madd fold in ascending `r`).
#[inline(always)]
fn weighted_sum_g<M: Madd>(
    alpha: &[f32],
    x: &[f32],
    d: usize,
    r0: usize,
    r1: usize,
    out_row: &mut [f32],
) {
    for r in r0..r1 {
        let av = alpha[r];
        let x_row = &x[r * d..(r + 1) * d];
        for (o, &xv) in out_row.iter_mut().zip(x_row.iter()) {
            *o = M::madd(av, xv, *o);
        }
    }
}

// --- AVX2+FMA instantiations -------------------------------------------
//
// The `#[target_feature]` wrappers are where the `Fused` bodies pick up
// hardware `vfmadd` codegen (and 256-bit auto-vectorization of the
// 8-wide blocks). Calling one is only sound after `fused_available()`
// returned true, which is exactly what the public entry points check.

macro_rules! fma_wrapper {
    ($wrapper:ident, $generic:ident, ($($arg:ident : $ty:ty),*)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2", enable = "fma")]
        unsafe fn $wrapper($($arg: $ty),*) {
            $generic::<Fused>($($arg),*)
        }
    };
}

fma_wrapper!(mm_rows_fma, mm_rows_g, (
    a: &[f32], b: &[f32], kd: usize, n: usize, ks: usize, ke: usize,
    r0: usize, r1: usize, out_rows: &mut [f32]
));
fma_wrapper!(tn_rows_fma, tn_rows_g, (
    a: &[f32], b: &[f32], kr: usize, m: usize, n: usize,
    i0: usize, i1: usize, out_rows: &mut [f32]
));
fma_wrapper!(nt_rows_fma, nt_rows_g, (
    a: &[f32], b: &[f32], kd: usize, n: usize,
    i0: usize, i1: usize, out_rows: &mut [f32]
));
fma_wrapper!(weighted_sum_fma, weighted_sum_g, (
    alpha: &[f32], x: &[f32], d: usize, r0: usize, r1: usize, out_row: &mut [f32]
));

/// Fast `out_rows (+)= a[r0..r1, ks..ke] × b[ks..ke, :]`.
pub(crate) fn mm_rows_fast(
    a: &[f32],
    b: &[f32],
    kd: usize,
    n: usize,
    ks: usize,
    ke: usize,
    r0: usize,
    r1: usize,
    out_rows: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if fused_available() {
        // SAFETY: `fused_available` verified avx2+fma on this CPU.
        unsafe { mm_rows_fma(a, b, kd, n, ks, ke, r0, r1, out_rows) };
        return;
    }
    mm_rows_g::<Unfused>(a, b, kd, n, ks, ke, r0, r1, out_rows)
}

/// Fast `out_rows (+)= (aᵀ × b)[i0..i1]`.
pub(crate) fn tn_rows_fast(
    a: &[f32],
    b: &[f32],
    kr: usize,
    m: usize,
    n: usize,
    i0: usize,
    i1: usize,
    out_rows: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if fused_available() {
        // SAFETY: `fused_available` verified avx2+fma on this CPU.
        unsafe { tn_rows_fma(a, b, kr, m, n, i0, i1, out_rows) };
        return;
    }
    tn_rows_g::<Unfused>(a, b, kr, m, n, i0, i1, out_rows)
}

/// Fast `out_rows (+)= (a × bᵀ)[i0..i1]`.
pub(crate) fn nt_rows_fast(
    a: &[f32],
    b: &[f32],
    kd: usize,
    n: usize,
    i0: usize,
    i1: usize,
    out_rows: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if fused_available() {
        // SAFETY: `fused_available` verified avx2+fma on this CPU.
        unsafe { nt_rows_fma(a, b, kd, n, i0, i1, out_rows) };
        return;
    }
    nt_rows_g::<Unfused>(a, b, kd, n, i0, i1, out_rows)
}

/// Fast `out_row += Σ_r alpha[r] · x[r, :]` for `r` in `r0..r1`.
pub(crate) fn weighted_sum_fast(
    alpha: &[f32],
    x: &[f32],
    d: usize,
    r0: usize,
    r1: usize,
    out_row: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if fused_available() {
        // SAFETY: `fused_available` verified avx2+fma on this CPU.
        unsafe { weighted_sum_fma(alpha, x, d, r0, r1, out_row) };
        return;
    }
    weighted_sum_g::<Unfused>(alpha, x, d, r0, r1, out_row)
}

/// Madd-fold dot product in ascending index order — the chain of one
/// `nt` output element, used by segment backward passes so their
/// per-row dots stay bitwise-equal to the per-sample `matmul_nt` chain.
#[inline(always)]
fn dot_g<M: Madd>(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc = M::madd(x, y, acc);
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_fma(a: &[f32], b: &[f32]) -> f32 {
    dot_g::<Fused>(a, b)
}

/// Fast dot product (see [`dot_g`]).
pub(crate) fn dot_fast(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if fused_available() {
        // SAFETY: `fused_available` verified avx2+fma on this CPU.
        return unsafe { dot_fma(a, b) };
    }
    dot_g::<Unfused>(a, b)
}

/// Single-pass online-max softmax over the strided column
/// `buf[start + i·stride]`, `i` in `0..count` — one data pass for max and
/// sum together, then one scaling pass, instead of strict's separate
/// max / exp-sum / divide passes.
///
/// Special values propagate exactly as in the strict three-pass kernel:
///
/// * a `NaN` element poisons the running sum (every output `NaN`, like
///   strict, whose `NaN`-skipping max fold still hits `exp(NaN)`);
/// * a `+∞` element drives `m` to `+∞`, so its own contribution is
///   `exp(∞−∞) = NaN` (every output `NaN`, like strict);
/// * `−∞` elements are *skipped* by the sum update — they contribute
///   `exp(−∞) = 0` in strict, and skipping (rather than folding
///   `exp(m_old − x) = exp(NaN)` when the running max is still `−∞`)
///   keeps an all-`−∞` prefix from spuriously poisoning a finite row;
/// * an all-`−∞` (or empty) column leaves `sum = 0`, and the output pass
///   produces `exp(−∞ − −∞) · ∞ = NaN` — strict's `0/0` on such rows.
///
/// The two `if`s must stay separate and in this order: the current
/// element's own contribution has to be computed *after* the max update
/// so it is `exp(x − x) = 1` for a new maximum (or `NaN` for `+∞`).
pub(crate) fn online_softmax_strided(buf: &mut [f32], start: usize, stride: usize, count: usize) {
    let mut m = f32::NEG_INFINITY;
    let mut sum = 0.0f32;
    for i in 0..count {
        let x = buf[start + i * stride];
        if x > m {
            sum *= (m - x).exp();
            m = x;
        }
        if x != f32::NEG_INFINITY {
            sum += (x - m).exp();
        }
    }
    let inv = 1.0 / sum;
    for i in 0..count {
        let idx = start + i * stride;
        buf[idx] = (buf[idx] - m).exp() * inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict_softmax(xs: &[f32]) -> Vec<f32> {
        // The strict kernel's exact shape: NaN-skipping max fold, then
        // exp-sum, then divide.
        let m = xs.iter().fold(f32::NEG_INFINITY, |acc, &x| acc.max(x));
        let exps: Vec<f32> = xs.iter().map(|&x| (x - m).exp()).collect();
        let sum: f32 = exps.iter().sum();
        exps.iter().map(|&e| e / sum).collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn online_softmax_matches_strict_on_special_rows() {
        let rows: &[&[f32]] = &[
            &[1.0, 2.0, 3.0],
            &[5.0],
            &[],
            &[f32::NAN, 1.0, 2.0],
            &[1.0, f32::INFINITY, 2.0],
            &[f32::INFINITY, 5.0],
            &[f32::NEG_INFINITY, 5.0, 6.0],
            &[5.0, f32::NEG_INFINITY],
            &[f32::NEG_INFINITY, f32::NEG_INFINITY],
            &[f32::NAN, f32::INFINITY],
            &[f32::NEG_INFINITY, f32::INFINITY],
            &[-1e30, 1e30, 0.0],
        ];
        for row in rows {
            let strict = strict_softmax(row);
            let mut fast = row.to_vec();
            let count = fast.len();
            online_softmax_strided(&mut fast, 0, 1, count);
            for (i, (&f, &s)) in fast.iter().zip(strict.iter()).enumerate() {
                assert_eq!(
                    f.is_nan(),
                    s.is_nan(),
                    "NaN-ness diverged at {i} for {row:?}: fast={f} strict={s}"
                );
                if !f.is_nan() {
                    assert!(
                        (f - s).abs() <= 1e-6,
                        "value diverged at {i} for {row:?}: fast={f} strict={s}"
                    );
                }
            }
        }
    }

    #[test]
    fn online_softmax_respects_stride() {
        // Two interleaved columns: softmax each independently.
        let mut buf = vec![1.0f32, 10.0, 2.0, 20.0, 3.0, 30.0];
        online_softmax_strided(&mut buf, 0, 2, 3);
        online_softmax_strided(&mut buf, 1, 2, 3);
        let c0 = strict_softmax(&[1.0, 2.0, 3.0]);
        let c1 = strict_softmax(&[10.0, 20.0, 30.0]);
        for i in 0..3 {
            assert!((buf[2 * i] - c0[i]).abs() <= 1e-6);
            assert!((buf[2 * i + 1] - c1[i]).abs() <= 1e-6);
        }
    }

    #[test]
    fn fast_matmul_families_are_close_to_strict_and_internally_deterministic() {
        let (m, kd, n) = (5usize, 17usize, 9usize);
        let a: Vec<f32> = (0..m * kd).map(|i| ((i as f32) * 0.37).sin()).collect();
        let b: Vec<f32> = (0..kd * n).map(|i| ((i as f32) * 0.71).cos()).collect();
        let mut strict = vec![0.0f32; m * n];
        super::super::mm_rows(&a, &b, kd, n, 0, m, &mut strict);
        let mut fast = vec![0.0f32; m * n];
        mm_rows_fast(&a, &b, kd, n, 0, kd, 0, m, &mut fast);
        for (f, s) in fast.iter().zip(strict.iter()) {
            assert!((f - s).abs() <= 1e-4 * s.abs().max(1.0));
        }
        // Two k-windows must cover exactly the full reduction.
        let mut split = vec![0.0f32; m * n];
        let mut w0 = vec![0.0f32; m * n];
        let mut w1 = vec![0.0f32; m * n];
        mm_rows_fast(&a, &b, kd, n, 0, 9, 0, m, &mut w0);
        mm_rows_fast(&a, &b, kd, n, 9, kd, 0, m, &mut w1);
        for i in 0..m * n {
            split[i] = w0[i] + w1[i];
        }
        for (f, s) in split.iter().zip(strict.iter()) {
            assert!((f - s).abs() <= 1e-4 * s.abs().max(1.0));
        }
        // The dispatch is stable: a second call reproduces the same bits.
        let mut again = vec![0.0f32; m * n];
        mm_rows_fast(&a, &b, kd, n, 0, kd, 0, m, &mut again);
        assert_eq!(bits(&fast), bits(&again));
    }
}
