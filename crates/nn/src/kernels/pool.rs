//! Lazily-started persistent worker pool behind [`run_row_sharded`].
//!
//! The scoped driver pays a full `std::thread::scope` spawn + join per
//! threaded product (~tens of µs — the reason the `set_matmul_grain`
//! work floor had to be as coarse as it was). This pool replaces that
//! per-call cost with a condvar handoff to workers that live for the
//! rest of the process:
//!
//! * **Same shards, same bits.** The pool executes exactly the shard
//!   list the scoped path would have built — contiguous whole-row
//!   shards, each reduced in ascending `k` by the kernel itself — so
//!   the bitwise-parity contract of the module carries over verbatim.
//!   Which thread runs which shard is a scheduling detail; shard
//!   *contents* never depend on it.
//! * **Caller participates.** The submitting thread claims shards from
//!   the same atomic cursor as the workers, so a product makes progress
//!   even before the first worker has woken (and the pool can never
//!   deadlock a caller: with zero workers the caller simply runs every
//!   shard itself).
//! * **Scoped panic semantics.** A panicking shard is caught in place,
//!   its payload parked on the job, and the remaining shards still run
//!   to completion — then the *caller* re-panics with the original
//!   payload after the handoff, exactly like `std::thread::scope`'s
//!   join does. A poisoned product therefore never returns normally and
//!   never reaches the autodiff tape.
//! * **Lazy + pinned.** No thread exists until the first threaded
//!   product; the pool then grows to the largest shard count it has
//!   seen (capped). With `NVC_PIN_WORKERS=1` each worker pins itself to
//!   CPU `(index + 1) % ncpus` via `sched_setaffinity` (Linux;
//!   elsewhere the knob is a no-op).
//!
//! Concurrent submitters (serve workers, rollout shards) enqueue
//! independent jobs; workers drain the queue FIFO, stealing shards
//! within a job through its claim cursor.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use super::check_injected_panic;

/// Hard cap on pool size; `effective_threads` caps shard counts far
/// below this in practice, the constant only bounds a hostile
/// `NVC_MATMUL_THREADS`.
const MAX_WORKERS: usize = 256;

/// One row shard of a queued product: rows `r0..r1` writing the
/// disjoint `rows × cols` window starting at `ptr`.
struct Shard {
    r0: usize,
    r1: usize,
    ptr: *mut f32,
    len: usize,
}

/// The stack-held context a job's shards execute against. It outlives
/// the job because the submitting caller blocks until every shard is
/// done before returning.
struct Ctx<'k> {
    kernel: &'k (dyn Fn(usize, usize, &mut [f32]) + Sync),
    shards: Vec<Shard>,
    rows_total: usize,
}

/// A queued sharded product. Workers and the submitting caller claim
/// shard indices from `next`; the last finisher flips `finished` under
/// `sync` and wakes the caller.
struct Job {
    ctx: *const (),
    shards: usize,
    next: AtomicUsize,
    done: AtomicUsize,
    sync: Mutex<bool>,
    cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// The raw ctx pointer is only dereferenced by a thread that claimed a
// shard, and the submitter keeps the pointee alive until all claims
// complete — the Job is then inert even if it briefly lingers in the
// queue.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs shards until the cursor is exhausted. Returns
    /// `true` if the cursor is exhausted (the job can leave the queue).
    fn work(&self) -> bool {
        loop {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            if idx >= self.shards {
                return true;
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                // Safety: idx was claimed exactly once, so this thread
                // has exclusive access to that shard's output window;
                // the submitter keeps `ctx` alive until `done` says
                // every claim completed.
                let ctx = unsafe { &*(self.ctx as *const Ctx) };
                let s = &ctx.shards[idx];
                let out = unsafe { std::slice::from_raw_parts_mut(s.ptr, s.len) };
                check_injected_panic(s.r0, s.r1, ctx.rows_total);
                (ctx.kernel)(s.r0, s.r1, out);
            }));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.shards {
                *self.sync.lock().unwrap_or_else(|e| e.into_inner()) = true;
                self.cv.notify_all();
            }
        }
    }
}

struct PoolState {
    queue: VecDeque<Arc<Job>>,
    workers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            workers: 0,
        }),
        work_cv: Condvar::new(),
    })
}

/// Number of pool workers spawned so far (0 until the first threaded
/// product — the pool is lazy). Test/diagnostic hook.
#[doc(hidden)]
pub fn worker_count() -> usize {
    pool()
        .state
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .workers
}

#[cfg(target_os = "linux")]
fn pin_to_cpu(cpu: usize) {
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let mut mask = [0u64; 16]; // cpu_set_t: 1024 bits
    mask[(cpu / 64) % 16] |= 1 << (cpu % 64);
    // Best-effort: a failure (exotic cgroup mask, cpu offline) only
    // loses the affinity hint, never correctness.
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
}

#[cfg(not(target_os = "linux"))]
fn pin_to_cpu(_cpu: usize) {}

fn pin_workers() -> bool {
    static PIN: OnceLock<bool> = OnceLock::new();
    *PIN.get_or_init(|| std::env::var("NVC_PIN_WORKERS").map(|v| v.trim() == "1") == Ok(true))
}

fn worker_loop(index: usize) {
    if pin_workers() {
        let ncpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        pin_to_cpu((index + 1) % ncpus);
    }
    let p = pool();
    let mut st = p.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if let Some(job) = st.queue.front().map(Arc::clone) {
            drop(st);
            let exhausted = job.work();
            st = p.state.lock().unwrap_or_else(|e| e.into_inner());
            if exhausted {
                if let Some(front) = st.queue.front() {
                    if Arc::ptr_eq(front, &job) {
                        st.queue.pop_front();
                    }
                }
            }
        } else {
            st = p.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Pool-backed equivalent of the scoped span driver: identical shard
/// list, identical per-shard kernel invocation, condvar handoff instead
/// of per-call spawns. `marker` is the failure-injection marker the
/// shards check against (total row count for both sharding geometries).
pub(crate) fn run_spans(
    spans: Vec<(usize, usize, &mut [f32])>,
    marker: usize,
    kernel: &(dyn Fn(usize, usize, &mut [f32]) + Sync),
) {
    debug_assert!(!spans.is_empty());
    let shards: Vec<Shard> = spans
        .into_iter()
        .map(|(r0, r1, slice)| Shard {
            r0,
            r1,
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        })
        .collect();
    let ctx = Ctx {
        kernel,
        shards,
        rows_total: marker,
    };
    let job = Arc::new(Job {
        ctx: &ctx as *const Ctx as *const (),
        shards: ctx.shards.len(),
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        sync: Mutex::new(false),
        cv: Condvar::new(),
        panic: Mutex::new(None),
    });

    let p = pool();
    {
        let mut st = p.state.lock().unwrap_or_else(|e| e.into_inner());
        st.queue.push_back(Arc::clone(&job));
        // Helpers beyond the caller itself; grow lazily, never shrink.
        let wanted = (job.shards - 1).min(MAX_WORKERS);
        while st.workers < wanted {
            let index = st.workers;
            std::thread::Builder::new()
                .name(format!("nvc-kpool-{index}"))
                .spawn(move || worker_loop(index))
                .expect("spawn kernel pool worker");
            st.workers += 1;
        }
        p.work_cv.notify_all();
    }

    // Claim shards alongside the workers, then wait out the stragglers.
    let exhausted = job.work();
    debug_assert!(exhausted);
    {
        let mut st = p.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(front) = st.queue.front() {
            if Arc::ptr_eq(front, &job) {
                st.queue.pop_front();
            }
        }
    }
    let mut finished = job.sync.lock().unwrap_or_else(|e| e.into_inner());
    while !*finished {
        finished = job.cv.wait(finished).unwrap_or_else(|e| e.into_inner());
    }
    drop(finished);
    let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    drop(job);
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::super::{
        clear_worker_panic, inject_worker_panic, run_row_sharded, set_matmul_pool, KNOB_LOCK,
    };
    use super::*;

    /// Row spans exactly as `run_row_sharded` would cut them.
    fn row_spans(
        threads: usize,
        rows: usize,
        cols: usize,
        out: &mut [f32],
    ) -> Vec<(usize, usize, &mut [f32])> {
        let per_shard = rows.div_ceil(threads);
        let mut spans = Vec::new();
        let mut rest = out;
        let mut r0 = 0;
        while r0 < rows {
            let r1 = (r0 + per_shard).min(rows);
            let (shard, tail) = rest.split_at_mut((r1 - r0) * cols);
            rest = tail;
            spans.push((r0, r1, shard));
            r0 = r1;
        }
        spans
    }

    #[test]
    fn caller_alone_finishes_a_job_and_pool_stays_bounded() {
        // Submitting through `run_spans` directly (not the mode switch)
        // so the assertion is about the pool itself.
        let rows = 6;
        let cols = 4;
        let mut out = vec![0.0f32; rows * cols];
        let spans = row_spans(3, rows, cols, &mut out);
        run_spans(spans, rows, &|r0, r1, slice| {
            for i in r0..r1 {
                for c in 0..cols {
                    slice[(i - r0) * cols + c] = (i * cols + c) as f32;
                }
            }
        });
        let want: Vec<f32> = (0..rows * cols).map(|x| x as f32).collect();
        assert_eq!(out, want);
        assert!(worker_count() <= MAX_WORKERS);
    }

    #[test]
    fn pool_and_scoped_modes_produce_identical_bits() {
        let _guard = KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rows = 17;
        let cols = 5;
        let kernel = |r0: usize, r1: usize, slice: &mut [f32]| {
            for i in r0..r1 {
                for c in 0..cols {
                    slice[(i - r0) * cols + c] = ((i * 31 + c) as f32).sin();
                }
            }
        };
        let mut pooled = vec![0.0f32; rows * cols];
        set_matmul_pool(true);
        run_row_sharded(4, rows, cols, &mut pooled, &kernel);
        let mut scoped = vec![0.0f32; rows * cols];
        set_matmul_pool(false);
        run_row_sharded(4, rows, cols, &mut scoped, &kernel);
        set_matmul_pool(true);
        let pb: Vec<u32> = pooled.iter().map(|v| v.to_bits()).collect();
        let sb: Vec<u32> = scoped.iter().map(|v| v.to_bits()).collect();
        assert_eq!(pb, sb, "pool and scoped drivers must be bitwise equal");
    }

    #[test]
    fn injected_panic_resurfaces_on_the_caller_with_its_payload() {
        // 263 rows: a marker no other concurrently running test uses.
        inject_worker_panic(1, 263);
        let hit = std::panic::catch_unwind(|| {
            let mut out = vec![0.0f32; 263 * 2];
            let spans = row_spans(3, 263, 2, &mut out);
            run_spans(spans, 263, &|_, _, _| {});
        });
        clear_worker_panic();
        let payload = hit.expect_err("armed shard must re-panic on the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("injected panic in matmul worker"),
            "original payload must survive the handoff: {msg:?}"
        );
        // The pool survives a poisoned job: the next product is clean.
        let mut out = vec![0.0f32; 263 * 2];
        let spans = row_spans(3, 263, 2, &mut out);
        run_spans(spans, 263, &|r0, r1, s| {
            for v in s.iter_mut() {
                *v = (r0 + r1) as f32;
            }
        });
        assert!(out.iter().all(|&v| v != 0.0));
    }
}
