//! Threaded, SIMD-explicit matmul kernels behind a two-mode numeric
//! contract.
//!
//! The process-wide [`KernelMode`] selects which contract the deployed
//! kernels honour:
//!
//! * [`KernelMode::Strict`] (the default) is the bitwise-parity contract
//!   proven by the kernel test tier, described below. Training and
//!   reproduction runs use it.
//! * [`KernelMode::Fast`] (the serving default — `nvc serve` / `nvc hub`)
//!   relaxes exactly three things, each gated by the ε-parity and
//!   decision-equivalence suites in `tests/fast_parity.rs`: fused
//!   `mul_add` accumulators (hardware FMA when the CPU has AVX2+FMA, see
//!   [`fast`]), reduction-dimension (`k`-split) sharding for tall-thin
//!   products ([`k_split_shards`]), and a single-pass online-max softmax.
//!   Fast mode never changes which special values (`NaN`/`±∞`) appear —
//!   only the rounding of finite sums.
//!
//! Everything below this paragraph describes the **strict** contract.
//! Every kernel computes each output element's partial products in
//! exactly the ascending-`k` order of the textbook i-k-j loop (and of the
//! tiled reference kernel, [`Tensor::matmul_accum_into_tiled`]). Two
//! mechanical transformations are layered on top, and both are chosen
//! because they *cannot* change that order:
//!
//! * **Row sharding** ([`run_row_sharded`]): the output rows are split
//!   into contiguous shards, executed by the persistent worker pool
//!   ([`pool`]) — or by one `std::thread::scope` worker per shard when
//!   the pool is disabled ([`set_matmul_pool`], `NVC_MATMUL_POOL=0`).
//!   Every output row of `A·B`, `Aᵀ·B` and `A·Bᵀ` depends only on whole
//!   input rows and is reduced independently, so any shard assignment —
//!   any thread count, either driver — produces the single-threaded
//!   bits. (Splitting the reduction dimension `k` instead would need
//!   per-thread partials whose combination reassociates the sum; that is
//!   why only rows are split.)
//! * **8-wide unrolling** ([`mm_rows`], [`tn_rows`], [`nt_rows`]): the
//!   inner loops run over blocks of 8 *independent* output accumulators
//!   (manual `f32x8`-style register blocks — no unstable `std::simd`, no
//!   `mul_add` fusion). Lanes never share an accumulator, so each
//!   element's chain is untouched.
//!
//! The thread count is a process-wide knob ([`set_matmul_threads`],
//! `NVC_MATMUL_THREADS` in the environment, surfaced as
//! `NvConfig::matmul_threads` and `--matmul-threads` on the CLI). Because
//! of the parity contract the knob is *purely* a throughput dial: races
//! on it (e.g. two models configured differently) can change how fast an
//! answer arrives, never which answer arrives. Small products stay
//! single-threaded via a work floor ([`set_matmul_grain`]) so the
//! handoff never costs more than it saves — with the pool that handoff
//! is a condvar wake instead of a thread spawn, which is why the
//! default floor is far lower than it was under the scoped driver.

pub mod fast;
pub mod pool;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Sentinel for "not yet initialized from the environment".
const UNSET: usize = usize::MAX;

/// Numeric contract of the deployed kernels — see the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum KernelMode {
    /// Bitwise-parity kernels: ascending-`k` accumulation, rows-only
    /// sharding, no `mul_add`. Identical bits at any thread count.
    #[default]
    Strict,
    /// Reassociated kernels: FMA accumulators, `k`-split sharding,
    /// online-max softmax. ε-close to strict; identical decisions and
    /// identical special-value (`NaN`/`±∞`) propagation.
    Fast,
}

impl KernelMode {
    /// Stable lowercase name — the spelling used by `NVC_KERNEL_MODE`,
    /// `--kernel-mode` and the observability surfaces.
    pub fn name(self) -> &'static str {
        match self {
            KernelMode::Strict => "strict",
            KernelMode::Fast => "fast",
        }
    }
}

impl std::str::FromStr for KernelMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "strict" => Ok(KernelMode::Strict),
            "fast" => Ok(KernelMode::Fast),
            other => Err(format!("unknown kernel mode {other:?} (strict|fast)")),
        }
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Kernel-mode sentinel/values (`UNSET` → read `NVC_KERNEL_MODE`).
static MODE: AtomicUsize = AtomicUsize::new(UNSET);

/// Requested worker count (`0`/`1` = single-threaded).
static THREADS: AtomicUsize = AtomicUsize::new(UNSET);

/// Minimum multiply-adds per *additional* worker.
static GRAIN: AtomicUsize = AtomicUsize::new(UNSET);

/// Failure-injection hook: worker row / total-row marker (tests only).
static PANIC_ROW: AtomicUsize = AtomicUsize::new(usize::MAX);
static PANIC_ROWS_TOTAL: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Default work floor: a worker is only added once it has at least this
/// many multiply-adds to itself (~a microsecond of FLOPs — the same
/// order as the pool's condvar handoff). The floor used to be 96·1024
/// when every threaded product paid a full scoped spawn; the persistent
/// pool made mid-sized products (the 64×340·340×64 policy layers)
/// profitable to shard, so it dropped.
pub const DEFAULT_MATMUL_GRAIN: usize = 16 * 1024;

/// Pool-mode switch sentinel/values (`UNSET` → read `NVC_MATMUL_POOL`).
static POOL_MODE: AtomicUsize = AtomicUsize::new(UNSET);

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// The thread count `NVC_MATMUL_THREADS` asks for (`1` when unset or
/// unparsable) — the default [`NvConfig`-level](matmul_threads) value, so
/// a CI leg can drive the threaded path through every existing test
/// without touching configs.
pub fn default_matmul_threads() -> usize {
    env_usize("NVC_MATMUL_THREADS").unwrap_or(1).max(1)
}

/// Current requested matmul worker count.
pub fn matmul_threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        UNSET => {
            let v = default_matmul_threads();
            THREADS.store(v, Ordering::Relaxed);
            v
        }
        v => v,
    }
}

/// Sets the process-wide matmul worker count (`0` and `1` both mean
/// single-threaded). Bitwise parity makes this safe to flip at any time.
pub fn set_matmul_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Current work floor in multiply-adds per additional worker
/// (`NVC_MATMUL_GRAIN` overrides the default).
pub fn matmul_grain() -> usize {
    match GRAIN.load(Ordering::Relaxed) {
        UNSET => {
            let v = env_usize("NVC_MATMUL_GRAIN")
                .unwrap_or(DEFAULT_MATMUL_GRAIN)
                .max(1);
            GRAIN.store(v, Ordering::Relaxed);
            v
        }
        v => v,
    }
}

/// Sets the work floor (multiply-adds per additional worker). Benches and
/// parity tests set `1` to force sharding on deliberately tiny shapes.
pub fn set_matmul_grain(madds: usize) {
    GRAIN.store(madds.max(1), Ordering::Relaxed);
}

/// Whether threaded shards run on the persistent worker pool (default)
/// or on per-call `std::thread::scope` workers. `NVC_MATMUL_POOL=0`
/// selects the scoped driver; the bitwise contract makes the two
/// interchangeable, so the switch is only a perf A/B lever.
pub fn matmul_pool() -> bool {
    match POOL_MODE.load(Ordering::Relaxed) {
        UNSET => {
            let v = env_usize("NVC_MATMUL_POOL").map_or(true, |v| v != 0);
            POOL_MODE.store(v as usize, Ordering::Relaxed);
            v
        }
        v => v != 0,
    }
}

/// Selects the shard driver: `true` = persistent pool, `false` = scoped
/// spawns. Benches flip this to A/B the handoff cost; results are
/// bitwise-identical either way.
pub fn set_matmul_pool(on: bool) {
    POOL_MODE.store(on as usize, Ordering::Relaxed);
}

/// The mode `NVC_KERNEL_MODE` asks for ([`KernelMode::Strict`] when unset
/// or unparsable) — the default `NvConfig`-level value, so a CI leg can
/// drive the fast path through every existing test without touching
/// configs.
pub fn default_kernel_mode() -> KernelMode {
    match std::env::var("NVC_KERNEL_MODE") {
        Ok(v) => v.parse().unwrap_or(KernelMode::Strict),
        Err(_) => KernelMode::Strict,
    }
}

/// Current process-wide kernel mode.
pub fn kernel_mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        UNSET => {
            let v = default_kernel_mode();
            MODE.store(v as usize, Ordering::Relaxed);
            v
        }
        v if v == KernelMode::Fast as usize => KernelMode::Fast,
        _ => KernelMode::Strict,
    }
}

/// Sets the process-wide kernel mode. Unlike the thread-count knob this
/// is *not* result-neutral: strict and fast differ in low-order bits (not
/// in decisions), so flip it at process scope — config application,
/// test pins — not mid-computation.
pub fn set_kernel_mode(mode: KernelMode) {
    MODE.store(mode as usize, Ordering::Relaxed);
}

/// Workers actually engaged for a product with `rows` output rows and
/// `madds` total multiply-adds: the requested count, capped by the row
/// count (shards are whole rows) and by the work floor.
pub(crate) fn effective_threads(rows: usize, madds: usize) -> usize {
    let requested = matmul_threads();
    if requested <= 1 || rows <= 1 {
        return 1;
    }
    requested.min(rows).min(1 + madds / matmul_grain())
}

/// Fast-mode-only scheduler: how many reduction-dimension (`k`) shards a
/// `rows × kd` product should split into, or `None` when row sharding
/// (or staying serial) already uses every funded worker. `k`-splitting
/// only wins on tall-thin products — the 340-wide policy shapes — where
/// the output row count is what caps [`effective_threads`]; per-shard
/// partial sums reassociate the reduction, which is why strict mode
/// never takes this path.
pub(crate) fn k_split_shards(rows: usize, kd: usize, madds: usize) -> Option<usize> {
    let requested = matmul_threads();
    if requested <= 1 || kd < 2 || rows == 0 {
        return None;
    }
    let funded = requested.min(1 + madds / matmul_grain());
    if funded <= rows.max(1) {
        return None;
    }
    Some(funded.min(kd))
}

/// Fast-mode `k`-split driver: runs `kernel(k0, k1, partial)` once per
/// `k` window, each window accumulating the full `m × n` output into its
/// own zeroed partial buffer, then combines the partials into `out` in
/// ascending window order on the caller. The shard list goes through the
/// same [`run_spans`] tail as row sharding, so the pool and the scoped
/// driver execute identical `k`-split work — including identical panic
/// semantics (the injection marker stays the *output* row count `m`; an
/// armed "row" index is interpreted as a `k` index here).
pub(crate) fn run_mm_k_split(
    shards: usize,
    m: usize,
    n: usize,
    kd: usize,
    out: &mut [f32],
    kernel: &(dyn Fn(usize, usize, &mut [f32]) + Sync),
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert!(shards >= 2 && shards <= kd);
    let per = kd.div_ceil(shards);
    let nwin = kd.div_ceil(per);
    let mut partials = vec![0.0f32; nwin * m * n];
    let mut spans = Vec::with_capacity(nwin);
    let mut rest = partials.as_mut_slice();
    let mut k0 = 0;
    while k0 < kd {
        let k1 = (k0 + per).min(kd);
        let (window, tail) = rest.split_at_mut(m * n);
        rest = tail;
        spans.push((k0, k1, window));
        k0 = k1;
    }
    run_spans(spans, m, kernel);
    for window in partials.chunks_exact(m * n) {
        for (o, &p) in out.iter_mut().zip(window.iter()) {
            *o += p;
        }
    }
}

/// Arms the failure-injection hook: the shard owning `row` panics, but
/// only in products whose total output row count is `rows_total` (the
/// marker keeps concurrently running tests out of the blast radius).
#[doc(hidden)]
pub fn inject_worker_panic(row: usize, rows_total: usize) {
    PANIC_ROW.store(row, Ordering::Relaxed);
    PANIC_ROWS_TOTAL.store(rows_total, Ordering::Relaxed);
}

/// Disarms [`inject_worker_panic`].
#[doc(hidden)]
pub fn clear_worker_panic() {
    PANIC_ROW.store(usize::MAX, Ordering::Relaxed);
    PANIC_ROWS_TOTAL.store(usize::MAX, Ordering::Relaxed);
}

fn check_injected_panic(r0: usize, r1: usize, rows_total: usize) {
    if PANIC_ROWS_TOTAL.load(Ordering::Relaxed) == rows_total {
        let row = PANIC_ROW.load(Ordering::Relaxed);
        if (r0..r1).contains(&row) {
            panic!("injected panic in matmul worker for rows {r0}..{r1}");
        }
    }
}

/// Runs `kernel(r0, r1, rows_slice)` over contiguous shards of `out`'s
/// `rows × cols` row-major buffer.
///
/// With `threads <= 1` the kernel runs on the calling thread. Otherwise
/// the shard list goes to the persistent worker pool ([`pool::run`]) or,
/// when [`matmul_pool`] is off, to one `std::thread::scope` worker per
/// shard. Both drivers execute the identical shard list and both make a
/// panicking shard re-panic on the caller only after every shard has
/// been accounted for — a dead shard can neither hang the product nor
/// let a half-written output escape as if it were complete.
pub(crate) fn run_row_sharded(
    threads: usize,
    rows: usize,
    cols: usize,
    out: &mut [f32],
    kernel: &(dyn Fn(usize, usize, &mut [f32]) + Sync),
) {
    debug_assert_eq!(out.len(), rows * cols);
    if threads <= 1 || rows <= 1 {
        check_injected_panic(0, rows, rows);
        kernel(0, rows, out);
        return;
    }
    let per_shard = rows.div_ceil(threads);
    let mut spans = Vec::with_capacity(threads);
    let mut rest = out;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + per_shard).min(rows);
        let (shard, tail) = rest.split_at_mut((r1 - r0) * cols);
        rest = tail;
        spans.push((r0, r1, shard));
        r0 = r1;
    }
    run_spans(spans, rows, kernel);
}

/// Runs `kernel(s0, s1, segments_slice)` over shards of whole *segments*
/// (`bounds[s]` = the row range of segment `s`, contiguous and
/// ascending). Shards are cut only between segments, balanced by row
/// count, so per-segment computation order — and therefore every output
/// bit — is identical at any thread count. The injection marker is the
/// covered row total, like the row driver's.
pub(crate) fn run_segment_sharded(
    threads: usize,
    bounds: &[(usize, usize)],
    cols: usize,
    out: &mut [f32],
    kernel: &(dyn Fn(usize, usize, &mut [f32]) + Sync),
) {
    let nsegs = bounds.len();
    let rows_total = bounds.last().map_or(0, |&(_, r1)| r1);
    debug_assert_eq!(out.len(), rows_total * cols);
    if threads <= 1 || nsegs <= 1 {
        check_injected_panic(0, nsegs, rows_total);
        kernel(0, nsegs, out);
        return;
    }
    let target = rows_total.div_ceil(threads).max(1);
    let mut spans = Vec::with_capacity(threads);
    let mut rest = out;
    let mut s0 = 0;
    while s0 < nsegs {
        let row_base = bounds[s0].0;
        let mut s1 = s0 + 1;
        while s1 < nsegs && bounds[s1 - 1].1 - row_base < target {
            s1 += 1;
        }
        let (shard, tail) = rest.split_at_mut((bounds[s1 - 1].1 - row_base) * cols);
        rest = tail;
        spans.push((s0, s1, shard));
        s0 = s1;
    }
    run_spans(spans, rows_total, kernel);
}

/// Executes an explicit shard list (disjoint windows of one output
/// buffer) on the persistent pool, or on one scoped worker per shard
/// when [`matmul_pool`] is off — the shared tail of both sharding
/// geometries. Both drivers run the identical list and both surface a
/// shard panic on the caller only after every shard is accounted for.
fn run_spans(
    spans: Vec<(usize, usize, &mut [f32])>,
    marker: usize,
    kernel: &(dyn Fn(usize, usize, &mut [f32]) + Sync),
) {
    if matmul_pool() {
        pool::run_spans(spans, marker, kernel);
        return;
    }
    // Explicit joins (not the scope's implicit one) so the first
    // worker's panic payload resurfaces on the caller *verbatim* —
    // identical semantics to the pool driver's handoff.
    let panic = std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .into_iter()
            .map(|(lo, hi, slice)| {
                scope.spawn(move || {
                    check_injected_panic(lo, hi, marker);
                    kernel(lo, hi, slice);
                })
            })
            .collect();
        let mut panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                panic.get_or_insert(payload);
            }
        }
        panic
    });
    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
}

/// `out_rows (+)= a[r0..r1] × b` for an `m×kd · kd×n` product:
/// the tiled i-k-j kernel with the inner columns run as 8-wide register
/// accumulator blocks. `out_rows` is the row-major slice for rows
/// `r0..r1` only.
pub(crate) fn mm_rows(
    a: &[f32],
    b: &[f32],
    kd: usize,
    n: usize,
    r0: usize,
    r1: usize,
    out_rows: &mut [f32],
) {
    const KB: usize = 64;
    const JB: usize = 64;
    let mut kb = 0;
    loop {
        let k_end = (kb + KB).min(kd);
        let mut jb = 0;
        while jb < n {
            let j_end = (jb + JB).min(n);
            for i in r0..r1 {
                let a_row = &a[i * kd..(i + 1) * kd];
                let base = (i - r0) * n;
                mm_tile_row(
                    a_row,
                    b,
                    n,
                    kb,
                    k_end,
                    jb,
                    &mut out_rows[base + jb..base + j_end],
                );
            }
            jb = j_end;
        }
        kb = k_end;
        if kb >= kd {
            break;
        }
    }
}

/// One row × one `(kb..k_end, jb..)` tile of the right operand. Each
/// 8-column block holds its partial sums in an explicit `[f32; 8]`
/// register block across the whole `k` tile; lanes are independent
/// output elements, and within a lane the products accumulate in
/// ascending `k` — the parity order.
fn mm_tile_row(
    a_row: &[f32],
    b: &[f32],
    n: usize,
    kb: usize,
    k_end: usize,
    jb: usize,
    out_tile: &mut [f32],
) {
    let width = out_tile.len();
    let mut j = 0;
    while j + 8 <= width {
        let mut acc = [0.0f32; 8];
        acc.copy_from_slice(&out_tile[j..j + 8]);
        for k in kb..k_end {
            let av = a_row[k];
            let b_blk = &b[k * n + jb + j..k * n + jb + j + 8];
            acc[0] += av * b_blk[0];
            acc[1] += av * b_blk[1];
            acc[2] += av * b_blk[2];
            acc[3] += av * b_blk[3];
            acc[4] += av * b_blk[4];
            acc[5] += av * b_blk[5];
            acc[6] += av * b_blk[6];
            acc[7] += av * b_blk[7];
        }
        out_tile[j..j + 8].copy_from_slice(&acc);
        j += 8;
    }
    while j < width {
        let mut acc = out_tile[j];
        for k in kb..k_end {
            acc += a_row[k] * b[k * n + jb + j];
        }
        out_tile[j] = acc;
        j += 1;
    }
}

/// `y += a · x` over equal-length slices, 8 lanes at a time — the inner
/// step of [`tn_rows`]. Each lane is its own output element, so
/// unrolling is order-neutral.
pub(crate) fn axpy8(a: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let mut xc = x.chunks_exact(8);
    let mut yc = y.chunks_exact_mut(8);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        ys[0] += a * xs[0];
        ys[1] += a * xs[1];
        ys[2] += a * xs[2];
        ys[3] += a * xs[3];
        ys[4] += a * xs[4];
        ys[5] += a * xs[5];
        ys[6] += a * xs[6];
        ys[7] += a * xs[7];
    }
    for (xv, yv) in xc.remainder().iter().zip(yc.into_remainder()) {
        *yv += a * xv;
    }
}

/// `out_rows (+)= (aᵀ × b)[i0..i1]` for `a: kr×m`, `b: kr×n` — the
/// row-windowed `xᵀ·g` backward kernel. `k` stays the outer loop (both
/// inputs stream row-by-row) and each output element still accumulates in
/// ascending `k`; the shard only restricts which columns of `a` (output
/// rows) this worker owns.
pub(crate) fn tn_rows(
    a: &[f32],
    b: &[f32],
    kr: usize,
    m: usize,
    n: usize,
    i0: usize,
    i1: usize,
    out_rows: &mut [f32],
) {
    for k in 0..kr {
        let a_row = &a[k * m..(k + 1) * m];
        let b_row = &b[k * n..(k + 1) * n];
        for i in i0..i1 {
            axpy8(
                a_row[i],
                b_row,
                &mut out_rows[(i - i0) * n..(i - i0 + 1) * n],
            );
        }
    }
}

/// `out_rows (+)= (a × bᵀ)[i0..i1]` for `a: m×kd`, `b: n×kd` — the
/// `g·wᵀ` backward kernel. Each output element is a dot product reduced
/// in ascending `k`; four output columns run together as independent
/// accumulators so the loads of `a`'s row amortize.
pub(crate) fn nt_rows(
    a: &[f32],
    b: &[f32],
    kd: usize,
    n: usize,
    i0: usize,
    i1: usize,
    out_rows: &mut [f32],
) {
    for i in i0..i1 {
        let a_row = &a[i * kd..(i + 1) * kd];
        let out_row = &mut out_rows[(i - i0) * n..(i - i0 + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * kd..(j + 1) * kd];
            let b1 = &b[(j + 1) * kd..(j + 2) * kd];
            let b2 = &b[(j + 2) * kd..(j + 3) * kd];
            let b3 = &b[(j + 3) * kd..(j + 4) * kd];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for k in 0..kd {
                let av = a_row[k];
                s0 += av * b0[k];
                s1 += av * b1[k];
                s2 += av * b2[k];
                s3 += av * b3[k];
            }
            out_row[j] += s0;
            out_row[j + 1] += s1;
            out_row[j + 2] += s2;
            out_row[j + 3] += s3;
            j += 4;
        }
        while j < n {
            let b_row = &b[j * kd..(j + 1) * kd];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            out_row[j] += acc;
            j += 1;
        }
    }
}

/// Serializes tests that assert on (rather than merely set) the global
/// knobs — without it, concurrently running unit tests would race on the
/// process-wide atomics and flake.
#[cfg(test)]
pub(crate) static KNOB_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_clamp_and_stick() {
        let _guard = KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_matmul_threads(0);
        assert_eq!(matmul_threads(), 1);
        set_matmul_threads(6);
        assert_eq!(matmul_threads(), 6);
        set_matmul_grain(0);
        assert_eq!(matmul_grain(), 1);
        set_matmul_grain(DEFAULT_MATMUL_GRAIN);
        set_matmul_threads(default_matmul_threads());
    }

    #[test]
    fn effective_threads_respects_rows_and_grain() {
        let _guard = KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_matmul_threads(8);
        set_matmul_grain(1000);
        // 3 rows cap the shard count regardless of the request.
        assert_eq!(effective_threads(3, usize::MAX / 2), 3);
        // 2500 madds at grain 1000 fund 1 + 2 workers.
        assert_eq!(effective_threads(100, 2500), 3);
        // Tiny products stay serial.
        assert_eq!(effective_threads(100, 10), 1);
        assert_eq!(effective_threads(1, usize::MAX / 2), 1);
        set_matmul_threads(1);
        set_matmul_grain(DEFAULT_MATMUL_GRAIN);
        assert_eq!(effective_threads(100, usize::MAX / 2), 1);
        set_matmul_threads(default_matmul_threads());
    }

    #[test]
    fn sharded_driver_covers_every_row_exactly_once() {
        for (threads, rows) in [(1usize, 5usize), (2, 5), (3, 7), (8, 3), (4, 0), (5, 100)] {
            let cols = 3;
            let mut out = vec![0.0f32; rows * cols];
            run_row_sharded(threads, rows, cols, &mut out, &|r0, r1, slice| {
                for i in r0..r1 {
                    for c in 0..cols {
                        slice[(i - r0) * cols + c] += (i * cols + c) as f32;
                    }
                }
            });
            let want: Vec<f32> = (0..rows * cols).map(|x| x as f32).collect();
            assert_eq!(out, want, "threads={threads} rows={rows}");
        }
    }

    #[test]
    fn kernel_mode_knob_parses_and_sticks() {
        let _guard = KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_kernel_mode(KernelMode::Fast);
        assert_eq!(kernel_mode(), KernelMode::Fast);
        set_kernel_mode(KernelMode::Strict);
        assert_eq!(kernel_mode(), KernelMode::Strict);
        assert_eq!("fast".parse(), Ok(KernelMode::Fast));
        assert_eq!(" Strict ".parse(), Ok(KernelMode::Strict));
        assert!("blazing".parse::<KernelMode>().is_err());
        assert_eq!(KernelMode::Fast.name(), "fast");
        set_kernel_mode(default_kernel_mode());
    }

    #[test]
    fn k_split_engages_only_on_tall_thin_funded_products() {
        let _guard = KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_matmul_threads(8);
        set_matmul_grain(1);
        // The 2×340·340×64 policy shape: rows cap row sharding at 2, so
        // the 8 funded workers split the 340-deep reduction instead.
        assert_eq!(k_split_shards(2, 340, 2 * 340 * 64), Some(8));
        // Short reductions can't hand every worker a window.
        assert_eq!(k_split_shards(2, 3, usize::MAX / 2), Some(3));
        // Wide-enough outputs keep row sharding (it funds all workers).
        assert_eq!(k_split_shards(512, 340, usize::MAX / 2), None);
        // Degenerate shapes never split.
        assert_eq!(k_split_shards(2, 1, usize::MAX / 2), None);
        assert_eq!(k_split_shards(0, 340, usize::MAX / 2), None);
        // The work floor still gates the split.
        set_matmul_grain(DEFAULT_MATMUL_GRAIN);
        assert_eq!(k_split_shards(2, 340, 10), None);
        set_matmul_threads(1);
        assert_eq!(k_split_shards(2, 340, usize::MAX / 2), None);
        set_matmul_threads(default_matmul_threads());
        set_matmul_grain(DEFAULT_MATMUL_GRAIN);
    }

    #[test]
    fn k_split_driver_accumulates_every_window_into_out() {
        let _guard = KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (m, n, kd, shards) = (3usize, 2usize, 10usize, 4usize);
        // Integer-valued work keeps float addition exact, so the partial
        // combine must reproduce the serial sum bit-for-bit.
        let mut out = vec![1.0f32; m * n];
        run_mm_k_split(shards, m, n, kd, &mut out, &|k0, k1, partial| {
            for i in 0..m {
                for j in 0..n {
                    for k in k0..k1 {
                        partial[i * n + j] += (i * 100 + j * 10 + k) as f32;
                    }
                }
            }
        });
        for i in 0..m {
            for j in 0..n {
                let want: f32 = 1.0 + (0..kd).map(|k| (i * 100 + j * 10 + k) as f32).sum::<f32>();
                assert_eq!(out[i * n + j], want, "element ({i},{j})");
            }
        }
    }

    #[test]
    fn injected_panic_only_fires_on_the_marked_product() {
        // 251 rows: outside the shape range of every concurrently
        // running kernel/graph test, so arming the hook cannot hit them.
        inject_worker_panic(1, 251);
        // A different total row count is untouched.
        let mut out = vec![0.0f32; 4 * 2];
        run_row_sharded(2, 4, 2, &mut out, &|_, _, _| {});
        // The marked one panics (and the scope joins, so no hang).
        let hit = std::panic::catch_unwind(|| {
            let mut out = vec![0.0f32; 251 * 2];
            run_row_sharded(3, 251, 2, &mut out, &|_, _, _| {});
        });
        clear_worker_panic();
        assert!(hit.is_err(), "armed shard must panic");
        let again = std::panic::catch_unwind(|| {
            let mut out = vec![0.0f32; 251 * 2];
            run_row_sharded(3, 251, 2, &mut out, &|_, _, _| {});
        });
        assert!(again.is_ok(), "disarmed hook must not fire");
    }
}
