//! Named parameter store with gradient accumulation and Adam.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::graph::Graph;
use crate::tensor::Tensor;

/// Handle to a parameter tensor in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Owns model parameters, their gradients and initialization RNG.
#[derive(Debug, Clone)]
pub struct ParamStore {
    names: Vec<String>,
    params: Vec<Tensor>,
    grads: Vec<Tensor>,
    rng: ChaCha8Rng,
}

impl ParamStore {
    /// Creates an empty store; `seed` drives all parameter initialization.
    pub fn new(seed: u64) -> Self {
        ParamStore {
            names: Vec::new(),
            params: Vec::new(),
            grads: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Registers a parameter with an explicit initial value.
    pub fn param(&mut self, name: impl Into<String>, init: Tensor) -> ParamId {
        self.names.push(name.into());
        self.grads.push(Tensor::zeros(init.rows(), init.cols()));
        self.params.push(init);
        ParamId(self.params.len() - 1)
    }

    /// Registers a parameter with Xavier/Glorot-uniform initialization.
    pub fn param_xavier(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| self.rng.gen_range(-bound..bound))
            .collect();
        self.param(name, Tensor::from_vec(rows, cols, data))
    }

    /// Registers a parameter initialized from `N(0, std)`-ish uniform noise.
    pub fn param_uniform(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        bound: f32,
    ) -> ParamId {
        let data = (0..rows * cols)
            .map(|_| self.rng.gen_range(-bound..bound))
            .collect();
        self.param(name, Tensor::from_vec(rows, cols, data))
    }

    /// Parameter value.
    pub fn get(&self, p: ParamId) -> &Tensor {
        &self.params[p.0]
    }

    /// Mutable parameter value (tests and serialization).
    pub fn get_mut(&mut self, p: ParamId) -> &mut Tensor {
        &mut self.params[p.0]
    }

    /// Parameter name.
    pub fn name(&self, p: ParamId) -> &str {
        &self.names[p.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, p: ParamId) -> &Tensor {
        &self.grads[p.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Iterates over `(id, name, tensor)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, t)| (ParamId(i), self.names[i].as_str(), t))
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(Tensor::len).sum()
    }

    /// Adds the parameter gradients computed by `graph` into the store.
    ///
    /// Note the borrow shape: the graph holds `&ParamStore`, so callers
    /// typically extract [`Graph::param_grads`], drop the graph, and feed
    /// the map to [`ParamStore::apply_grads`] instead.
    pub fn accumulate_grads(&mut self, graph: &Graph<'_>) {
        self.apply_grads(graph.param_grads());
    }

    /// Adds a pre-extracted gradient map (see [`Graph::param_grads`]).
    pub fn apply_grads(&mut self, grads: std::collections::HashMap<ParamId, Tensor>) {
        for (p, g) in grads {
            self.grads[p.0].add_scaled(&g, 1.0);
        }
    }

    /// Mutable access to a parameter's gradient buffer.
    pub fn grad_tensor_mut(&mut self, p: ParamId) -> &mut Tensor {
        &mut self.grads[p.0]
    }

    /// Clears all gradients.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            for x in g.data_mut() {
                *x = 0.0;
            }
        }
    }

    /// Global L2 norm of all gradients (for clipping diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.data().iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads {
                for x in g.data_mut() {
                    *x *= s;
                }
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba), the optimizer RLlib's PPO uses.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate — the key hyperparameter swept in Figure 5.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    t: i32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update step from the store's accumulated gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        // Lazily grow moment buffers as parameters are registered.
        while self.m.len() < store.params.len() {
            let i = self.m.len();
            let (r, c) = store.params[i].shape();
            self.m.push(Tensor::zeros(r, c));
            self.v.push(Tensor::zeros(r, c));
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t);
        let b2t = 1.0 - self.beta2.powi(self.t);
        for i in 0..store.params.len() {
            let g = store.grads[i].data().to_vec();
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            let p = store.params[i].data_mut();
            for j in 0..g.len() {
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g[j];
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g[j] * g[j];
                let mhat = m[j] / b1t;
                let vhat = v[j] / b2t;
                p[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_registration_and_lookup() {
        let mut s = ParamStore::new(1);
        let a = s.param("a", Tensor::scalar(5.0));
        let b = s.param_xavier("b", 4, 4);
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(a), "a");
        assert_eq!(s.get(a).data()[0], 5.0);
        assert_eq!(s.get(b).shape(), (4, 4));
        assert_eq!(s.num_scalars(), 17);
    }

    #[test]
    fn xavier_is_seed_deterministic() {
        let mut s1 = ParamStore::new(99);
        let mut s2 = ParamStore::new(99);
        let p1 = s1.param_xavier("w", 8, 8);
        let p2 = s2.param_xavier("w", 8, 8);
        assert_eq!(s1.get(p1), s2.get(p2));
        let mut s3 = ParamStore::new(100);
        let p3 = s3.param_xavier("w", 8, 8);
        assert_ne!(s1.get(p1), s3.get(p3));
    }

    #[test]
    fn xavier_bounds() {
        let mut s = ParamStore::new(3);
        let p = s.param_xavier("w", 10, 10);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(s.get(p).data().iter().all(|x| x.abs() <= bound));
        // Not all zero.
        assert!(s.get(p).norm() > 0.0);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // min (p - 3)^2 without a graph: hand-computed gradient 2(p-3).
        let mut s = ParamStore::new(0);
        let p = s.param("p", Tensor::scalar(0.0));
        let mut adam = Adam::new(0.1);
        for _ in 0..300 {
            let x = s.get(p).data()[0];
            s.grads[p.0] = Tensor::scalar(2.0 * (x - 3.0));
            adam.step(&mut s);
            s.zero_grads();
        }
        assert!((s.get(p).data()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn grad_clipping_caps_norm() {
        let mut s = ParamStore::new(0);
        let p = s.param("p", Tensor::zeros(1, 4));
        s.grads[p.0] = Tensor::from_vec(1, 4, vec![3.0, 4.0, 0.0, 0.0]);
        assert!((s.grad_norm() - 5.0).abs() < 1e-6);
        s.clip_grad_norm(1.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_grads_clears() {
        let mut s = ParamStore::new(0);
        let p = s.param("p", Tensor::zeros(2, 2));
        s.grads[p.0] = Tensor::full(2, 2, 1.5);
        s.zero_grads();
        assert_eq!(s.grad(p), &Tensor::zeros(2, 2));
    }
}
