//! From-scratch neural-network substrate: tensors, reverse-mode autodiff,
//! parameter store with Adam, and a tiny model-serialization format.
//!
//! The paper trains a code2vec-style embedding network end-to-end with a
//! PPO agent (RLlib/TensorFlow in the original). This crate provides the
//! minimal differentiable-programming stack those components need, with no
//! external ML dependencies:
//!
//! * [`Tensor`] — dense row-major `f32` matrices with a threaded,
//!   SIMD-explicit matmul family ([`kernels`]: 8-wide unrolled inner
//!   loops, output rows sharded across worker threads) plus
//!   transpose-free `Aᵀ·B` / `A·Bᵀ` kernels for the backward pass; the
//!   cache-blocked tiled kernel is retained as the reference baseline
//!   ([`Tensor::matmul_accum_into_tiled`]). A process-wide
//!   [`KernelMode`] picks the numeric contract: `Strict` (default) keeps
//!   bitwise parity — any thread count produces the single-threaded bits
//!   — while `Fast` (the serving default) runs fused-FMA accumulators,
//!   reduction-dimension sharding for tall-thin shapes and a single-pass
//!   online softmax, ε-close to strict with identical decisions and
//!   special-value propagation;
//! * [`Graph`] — a tape of operations supporting `matmul`, a fused
//!   `linear` (matmul + bias broadcast in one node), broadcasting adds,
//!   `tanh`/`relu`/`exp`/`ln`, row softmax / log-softmax, embedding
//!   `gather` (including direct-from-store parameter gathers),
//!   concatenation, elementwise arithmetic, clipping, minimum, per-row
//!   selection, and reductions — everything PPO over an attention-based
//!   encoder requires. Ragged batches run through the segment ops
//!   (`segment_matmul`, `segment_softmax_rows`, `segment_weighted_sum`
//!   over a shared [`Segments`] row partition), which evaluate a whole
//!   batch of variable-length attention reductions in one node each
//!   while staying bitwise-identical — values *and* parameter gradients
//!   — to the per-sample spelling;
//! * [`TensorArena`] — a recycled buffer pool graphs draw from
//!   ([`Graph::with_arena`]) so per-iteration tapes stop churning the
//!   allocator;
//! * [`ParamStore`] — named parameters with gradient accumulation and an
//!   [`Adam`] optimizer;
//! * [`serialize`] — a small self-describing text format for checkpoints
//!   (the sanctioned offline crate set has no `serde_json`, so we keep our
//!   own writer/reader).
//!
//! Gradients are verified against central finite differences in the test
//! suite for every operation.
//!
//! # Example
//!
//! ```
//! use nvc_nn::{Adam, Graph, ParamStore, Tensor};
//!
//! let mut store = ParamStore::new(42);
//! let w = store.param("w", Tensor::zeros(1, 1));
//!
//! // Minimize (3w - 6)^2 with Adam.
//! let mut adam = Adam::new(0.1);
//! for _ in 0..200 {
//!     let mut g = Graph::new(&store);
//!     let wn = g.param(w);
//!     let y = g.scale(wn, 3.0);
//!     let t = g.add_scalar(y, -6.0);
//!     let loss = g.mul_elem(t, t);
//!     g.backward(loss);
//!     let grads = g.param_grads();
//!     drop(g); // release the store borrow
//!     store.apply_grads(grads);
//!     adam.step(&mut store);
//!     store.zero_grads();
//! }
//! assert!((store.get(w).data()[0] - 2.0).abs() < 1e-2);
//! ```

pub mod arena;
pub mod graph;
pub mod kernels;
pub mod params;
pub mod serialize;
pub mod tensor;

pub use arena::{ArenaStats, TensorArena};
pub use graph::{Graph, NodeId, Segments};
pub use kernels::KernelMode;
pub use params::{Adam, ParamId, ParamStore};
pub use tensor::Tensor;

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: a 2-layer MLP learns XOR, proving that forward, backward
    /// and Adam compose correctly.
    #[test]
    fn mlp_learns_xor() {
        let mut store = ParamStore::new(7);
        let w1 = store.param_xavier("w1", 2, 8);
        let b1 = store.param("b1", Tensor::zeros(1, 8));
        let w2 = store.param_xavier("w2", 8, 1);
        let b2 = store.param("b2", Tensor::zeros(1, 1));
        let x = Tensor::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = Tensor::from_rows(&[vec![0.0], vec![1.0], vec![1.0], vec![0.0]]);

        let mut adam = Adam::new(0.05);
        let mut final_loss = f32::INFINITY;
        for _ in 0..400 {
            let mut g = Graph::new(&store);
            let xs = g.input(x.clone());
            let ys = g.input(y.clone());
            let (w1n, b1n, w2n, b2n) = (g.param(w1), g.param(b1), g.param(w2), g.param(b2));
            let h = g.matmul(xs, w1n);
            let h = g.add_row_broadcast(h, b1n);
            let h = g.tanh(h);
            let o = g.matmul(h, w2n);
            let o = g.add_row_broadcast(o, b2n);
            let d = g.sub(o, ys);
            let sq = g.mul_elem(d, d);
            let loss = g.mean_all(sq);
            final_loss = g.value(loss).data()[0];
            g.backward(loss);
            let grads = g.param_grads();
            drop(g);
            for (pid, grad) in grads {
                store.grad_tensor_mut(pid).add_scaled(&grad, 1.0);
            }
            adam.step(&mut store);
            store.zero_grads();
        }
        assert!(final_loss < 0.05, "XOR did not converge: loss={final_loss}");
    }
}
