//! Reverse-mode automatic differentiation over a tape of tensor ops.
//!
//! Values are computed eagerly as nodes are added; [`Graph::backward`]
//! walks the tape in reverse accumulating gradients. Gradients of
//! [`Op::Param`] nodes are exported to the owning
//! [`ParamStore`](crate::ParamStore) via
//! [`ParamStore::accumulate_grads`](crate::ParamStore::accumulate_grads).
//!
//! Every operation's gradient is validated against central finite
//! differences in this module's tests.

use std::collections::HashMap;

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Index of a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

#[derive(Debug, Clone)]
#[allow(dead_code)] // constant operands are kept for Debug output even where backward ignores them
enum Op {
    Input,
    Param(ParamId),
    MatMul(NodeId, NodeId),
    AddRowBroadcast(NodeId, NodeId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    MulElem(NodeId, NodeId),
    Minimum(NodeId, NodeId),
    Scale(NodeId, f32),
    AddScalar(NodeId, f32),
    Clamp(NodeId, f32, f32),
    Tanh(NodeId),
    Relu(NodeId),
    Exp(NodeId),
    Ln(NodeId),
    SoftmaxRows(NodeId),
    LogSoftmaxRows(NodeId),
    Transpose(NodeId),
    GatherRows(NodeId, Vec<usize>),
    ConcatCols(Vec<NodeId>),
    ConcatRows(Vec<NodeId>),
    PickPerRow(NodeId, Vec<usize>),
    SumAll(NodeId),
    MeanAll(NodeId),
}

/// A tape of tensor operations with eager forward evaluation and
/// reverse-mode gradients.
#[derive(Debug)]
pub struct Graph<'s> {
    store: &'s ParamStore,
    ops: Vec<Op>,
    values: Vec<Tensor>,
    grads: Vec<Option<Tensor>>,
    ran_backward: bool,
}

impl<'s> Graph<'s> {
    /// Creates an empty tape reading parameters from `store`.
    pub fn new(store: &'s ParamStore) -> Self {
        Graph {
            store,
            ops: Vec::new(),
            values: Vec::new(),
            grads: Vec::new(),
            ran_backward: false,
        }
    }

    fn push(&mut self, op: Op, value: Tensor) -> NodeId {
        self.ops.push(op);
        self.values.push(value);
        self.grads.push(None);
        NodeId(self.ops.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, n: NodeId) -> &Tensor {
        &self.values[n.0]
    }

    /// Gradient of a node (available after [`Graph::backward`]).
    pub fn grad(&self, n: NodeId) -> Option<&Tensor> {
        self.grads[n.0].as_ref()
    }

    // ---- leaf nodes ---------------------------------------------------

    /// A constant input (no gradient flows out of the graph).
    pub fn input(&mut self, t: Tensor) -> NodeId {
        self.push(Op::Input, t)
    }

    /// A parameter leaf; its gradient is exported to the store.
    pub fn param(&mut self, p: ParamId) -> NodeId {
        let value = self.store.get(p).clone();
        self.push(Op::Param(p), value)
    }

    // ---- operations ----------------------------------------------------

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.values[a.0].matmul(&self.values[b.0]);
        self.push(Op::MatMul(a, b), v)
    }

    /// Adds a `1×d` bias row to every row of an `n×d` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1×d`.
    pub fn add_row_broadcast(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let (av, bv) = (&self.values[a.0], &self.values[bias.0]);
        assert_eq!(bv.rows(), 1, "bias must be a row vector");
        assert_eq!(av.cols(), bv.cols(), "bias width mismatch");
        let mut out = av.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out[(r, c)] += bv[(0, c)];
            }
        }
        self.push(Op::AddRowBroadcast(a, bias), out)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.values[a.0].zip(&self.values[b.0], |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.values[a.0].zip(&self.values[b.0], |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise product.
    pub fn mul_elem(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.values[a.0].zip(&self.values[b.0], |x, y| x * y);
        self.push(Op::MulElem(a, b), v)
    }

    /// Elementwise minimum (PPO's clipped-surrogate uses this).
    pub fn minimum(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.values[a.0].zip(&self.values[b.0], f32::min);
        self.push(Op::Minimum(a, b), v)
    }

    /// Multiplies by a constant.
    pub fn scale(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.values[a.0].map(|x| x * c);
        self.push(Op::Scale(a, c), v)
    }

    /// Adds a constant.
    pub fn add_scalar(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.values[a.0].map(|x| x + c);
        self.push(Op::AddScalar(a, c), v)
    }

    /// Clamps to `[lo, hi]` (zero gradient outside).
    pub fn clamp(&mut self, a: NodeId, lo: f32, hi: f32) -> NodeId {
        let v = self.values[a.0].map(|x| x.clamp(lo, hi));
        self.push(Op::Clamp(a, lo, hi), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.values[a.0].map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.values[a.0].map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.values[a.0].map(f32::exp);
        self.push(Op::Exp(a), v)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        let v = self.values[a.0].map(f32::ln);
        self.push(Op::Ln(a), v)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let v = softmax_rows(&self.values[a.0]);
        self.push(Op::SoftmaxRows(a), v)
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn log_softmax_rows(&mut self, a: NodeId) -> NodeId {
        let av = &self.values[a.0];
        let mut out = av.clone();
        for r in 0..av.rows() {
            let row = av.row(r);
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
            for c in 0..av.cols() {
                out[(r, c)] = av[(r, c)] - lse;
            }
        }
        self.push(Op::LogSoftmaxRows(a), out)
    }

    /// Transposed copy.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.values[a.0].transposed();
        self.push(Op::Transpose(a), v)
    }

    /// Selects rows of `table` by index (embedding lookup). Gradients
    /// scatter-add back into the table.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&mut self, table: NodeId, indices: &[usize]) -> NodeId {
        let t = &self.values[table.0];
        let mut out = Tensor::zeros(indices.len(), t.cols());
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < t.rows(), "gather index out of bounds");
            out.data_mut()[i * t.cols()..(i + 1) * t.cols()].copy_from_slice(t.row(idx));
        }
        self.push(Op::GatherRows(table, indices.to_vec()), out)
    }

    /// Concatenates tensors with equal row counts along columns.
    ///
    /// # Panics
    ///
    /// Panics when row counts differ or `parts` is empty.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let rows = self.values[parts[0].0].rows();
        let total: usize = parts.iter().map(|p| self.values[p.0].cols()).sum();
        let mut out = Tensor::zeros(rows, total);
        let mut col = 0;
        for p in parts {
            let v = &self.values[p.0];
            assert_eq!(v.rows(), rows, "concat_cols row mismatch");
            for r in 0..rows {
                for c in 0..v.cols() {
                    out[(r, col + c)] = v[(r, c)];
                }
            }
            col += v.cols();
        }
        self.push(Op::ConcatCols(parts.to_vec()), out)
    }

    /// Stacks tensors with equal column counts along rows.
    ///
    /// # Panics
    ///
    /// Panics when column counts differ or `parts` is empty.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let cols = self.values[parts[0].0].cols();
        let total: usize = parts.iter().map(|p| self.values[p.0].rows()).sum();
        let mut out = Tensor::zeros(total, cols);
        let mut row = 0;
        for p in parts {
            let v = &self.values[p.0];
            assert_eq!(v.cols(), cols, "concat_rows col mismatch");
            for r in 0..v.rows() {
                for c in 0..cols {
                    out[(row + r, c)] = v[(r, c)];
                }
            }
            row += v.rows();
        }
        self.push(Op::ConcatRows(parts.to_vec()), out)
    }

    /// Picks one element per row (e.g. the log-probability of the action
    /// taken), returning `n×1`.
    ///
    /// # Panics
    ///
    /// Panics when `indices.len()` differs from the row count or any index
    /// is out of bounds.
    pub fn pick_per_row(&mut self, a: NodeId, indices: &[usize]) -> NodeId {
        let v = &self.values[a.0];
        assert_eq!(v.rows(), indices.len(), "one index per row required");
        let mut out = Tensor::zeros(v.rows(), 1);
        for (r, &c) in indices.iter().enumerate() {
            assert!(c < v.cols(), "pick index out of bounds");
            out[(r, 0)] = v[(r, c)];
        }
        self.push(Op::PickPerRow(a, indices.to_vec()), out)
    }

    /// Sum of all elements, as `1×1`.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let v = Tensor::scalar(self.values[a.0].sum());
        self.push(Op::SumAll(a), v)
    }

    /// Mean of all elements, as `1×1`.
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let t = &self.values[a.0];
        let v = Tensor::scalar(t.sum() / t.len() as f32);
        self.push(Op::MeanAll(a), v)
    }

    // ---- backward -------------------------------------------------------

    /// Runs reverse-mode differentiation from `loss` (must be `1×1`).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not scalar or `backward` was already run.
    pub fn backward(&mut self, loss: NodeId) {
        assert!(!self.ran_backward, "backward may only run once per graph");
        assert_eq!(self.values[loss.0].shape(), (1, 1), "loss must be a scalar");
        self.ran_backward = true;
        self.grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..self.ops.len()).rev() {
            let Some(g) = self.grads[i].clone() else {
                continue;
            };
            match self.ops[i].clone() {
                Op::Input | Op::Param(_) => {}
                Op::MatMul(a, b) => {
                    let bt = self.values[b.0].transposed();
                    let at = self.values[a.0].transposed();
                    let da = g.matmul(&bt);
                    let db = at.matmul(&g);
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::AddRowBroadcast(a, bias) => {
                    let mut db = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            db[(0, c)] += g[(r, c)];
                        }
                    }
                    self.accum(a, g);
                    self.accum(bias, db);
                }
                Op::Add(a, b) => {
                    self.accum(a, g.clone());
                    self.accum(b, g);
                }
                Op::Sub(a, b) => {
                    self.accum(a, g.clone());
                    self.accum(b, g.map(|x| -x));
                }
                Op::MulElem(a, b) => {
                    let da = g.zip(&self.values[b.0], |x, y| x * y);
                    let db = g.zip(&self.values[a.0], |x, y| x * y);
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::Minimum(a, b) => {
                    let av = self.values[a.0].clone();
                    let bv = self.values[b.0].clone();
                    let da = Tensor::from_vec(
                        g.rows(),
                        g.cols(),
                        g.data()
                            .iter()
                            .zip(av.data().iter().zip(bv.data().iter()))
                            .map(|(&gd, (&x, &y))| if x <= y { gd } else { 0.0 })
                            .collect(),
                    );
                    let db = Tensor::from_vec(
                        g.rows(),
                        g.cols(),
                        g.data()
                            .iter()
                            .zip(av.data().iter().zip(bv.data().iter()))
                            .map(|(&gd, (&x, &y))| if x > y { gd } else { 0.0 })
                            .collect(),
                    );
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::Scale(a, c) => self.accum(a, g.map(|x| x * c)),
                Op::AddScalar(a, _) => self.accum(a, g),
                Op::Clamp(a, lo, hi) => {
                    let da = g.zip(
                        &self.values[a.0],
                        |gd, x| {
                            if x > lo && x < hi {
                                gd
                            } else {
                                0.0
                            }
                        },
                    );
                    self.accum(a, da);
                }
                Op::Tanh(a) => {
                    let da = g.zip(&self.values[i], |gd, y| gd * (1.0 - y * y));
                    self.accum(a, da);
                }
                Op::Relu(a) => {
                    let da = g.zip(&self.values[a.0], |gd, x| if x > 0.0 { gd } else { 0.0 });
                    self.accum(a, da);
                }
                Op::Exp(a) => {
                    let da = g.zip(&self.values[i], |gd, y| gd * y);
                    self.accum(a, da);
                }
                Op::Ln(a) => {
                    let da = g.zip(&self.values[a.0], |gd, x| gd / x);
                    self.accum(a, da);
                }
                Op::SoftmaxRows(a) => {
                    let y = self.values[i].clone();
                    let mut da = Tensor::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 = (0..y.cols()).map(|c| g[(r, c)] * y[(r, c)]).sum();
                        for c in 0..y.cols() {
                            da[(r, c)] = y[(r, c)] * (g[(r, c)] - dot);
                        }
                    }
                    self.accum(a, da);
                }
                Op::LogSoftmaxRows(a) => {
                    let y = self.values[i].clone(); // log-probs
                    let mut da = Tensor::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let gsum: f32 = (0..y.cols()).map(|c| g[(r, c)]).sum();
                        for c in 0..y.cols() {
                            da[(r, c)] = g[(r, c)] - y[(r, c)].exp() * gsum;
                        }
                    }
                    self.accum(a, da);
                }
                Op::Transpose(a) => self.accum(a, g.transposed()),
                Op::GatherRows(table, indices) => {
                    let t = &self.values[table.0];
                    let mut dt = Tensor::zeros(t.rows(), t.cols());
                    for (r, &idx) in indices.iter().enumerate() {
                        for c in 0..t.cols() {
                            dt[(idx, c)] += g[(r, c)];
                        }
                    }
                    self.accum(table, dt);
                }
                Op::ConcatCols(parts) => {
                    let mut col = 0;
                    for p in parts {
                        let w = self.values[p.0].cols();
                        let rows = self.values[p.0].rows();
                        let mut dp = Tensor::zeros(rows, w);
                        for r in 0..rows {
                            for c in 0..w {
                                dp[(r, c)] = g[(r, col + c)];
                            }
                        }
                        self.accum(p, dp);
                        col += w;
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut row = 0;
                    for p in parts {
                        let h = self.values[p.0].rows();
                        let cols = self.values[p.0].cols();
                        let mut dp = Tensor::zeros(h, cols);
                        for r in 0..h {
                            for c in 0..cols {
                                dp[(r, c)] = g[(row + r, c)];
                            }
                        }
                        self.accum(p, dp);
                        row += h;
                    }
                }
                Op::PickPerRow(a, indices) => {
                    let v = &self.values[a.0];
                    let mut da = Tensor::zeros(v.rows(), v.cols());
                    for (r, &c) in indices.iter().enumerate() {
                        da[(r, c)] += g[(r, 0)];
                    }
                    self.accum(a, da);
                }
                Op::SumAll(a) => {
                    let gv = g[(0, 0)];
                    let v = &self.values[a.0];
                    self.accum(a, Tensor::full(v.rows(), v.cols(), gv));
                }
                Op::MeanAll(a) => {
                    let v = &self.values[a.0];
                    let gv = g[(0, 0)] / v.len() as f32;
                    self.accum(a, Tensor::full(v.rows(), v.cols(), gv));
                }
            }
        }
    }

    fn accum(&mut self, n: NodeId, g: Tensor) {
        match &mut self.grads[n.0] {
            Some(existing) => existing.add_scaled(&g, 1.0),
            slot @ None => *slot = Some(g),
        }
    }

    /// Gradients of every parameter node, merged by [`ParamId`].
    pub fn param_grads(&self) -> HashMap<ParamId, Tensor> {
        let mut out: HashMap<ParamId, Tensor> = HashMap::new();
        for (i, op) in self.ops.iter().enumerate() {
            if let Op::Param(p) = op {
                if let Some(g) = &self.grads[i] {
                    out.entry(*p)
                        .and_modify(|acc| acc.add_scaled(g, 1.0))
                        .or_insert_with(|| g.clone());
                }
            }
        }
        out
    }
}

fn softmax_rows(t: &Tensor) -> Tensor {
    let mut out = t.clone();
    for r in 0..t.rows() {
        let row = t.row(r);
        let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for c in 0..t.cols() {
            let e = (t[(r, c)] - m).exp();
            out[(r, c)] = e;
            sum += e;
        }
        for c in 0..t.cols() {
            out[(r, c)] /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Central finite-difference check of `d loss / d param` for an
    /// arbitrary graph builder.
    fn grad_check(
        shape: (usize, usize),
        build: impl Fn(&mut Graph<'_>, NodeId) -> NodeId,
        seed: u64,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut store = ParamStore::new(seed);
        let init = Tensor::from_vec(
            shape.0,
            shape.1,
            (0..shape.0 * shape.1)
                .map(|_| rng.gen_range(-0.9..0.9f32))
                .collect(),
        );
        let p = store.param("p", init);

        // Analytic gradient.
        let mut g = Graph::new(&store);
        let leaf = g.param(p);
        let loss = build(&mut g, leaf);
        g.backward(loss);
        let analytic = g.param_grads().remove(&p).expect("param grad");

        // Numeric gradient.
        let eps = 1e-3f32;
        for i in 0..store.get(p).len() {
            let orig = store.get(p).data()[i];
            store.get_mut(p).data_mut()[i] = orig + eps;
            let mut g1 = Graph::new(&store);
            let leaf = g1.param(p);
            let l1 = build(&mut g1, leaf);
            let f1 = g1.value(l1).data()[0];

            store.get_mut(p).data_mut()[i] = orig - eps;
            let mut g2 = Graph::new(&store);
            let leaf = g2.param(p);
            let l2 = build(&mut g2, leaf);
            let f2 = g2.value(l2).data()[0];

            store.get_mut(p).data_mut()[i] = orig;
            let numeric = (f1 - f2) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs().max(numeric.abs())),
                "grad mismatch at {i}: analytic={a} numeric={numeric}"
            );
        }
    }

    #[test]
    fn grad_matmul() {
        grad_check(
            (3, 4),
            |g, p| {
                let w = g.input(Tensor::from_vec(
                    4,
                    2,
                    (0..8).map(|i| i as f32 * 0.1).collect(),
                ));
                let y = g.matmul(p, w);
                g.sum_all(y)
            },
            1,
        );
    }

    #[test]
    fn grad_matmul_rhs() {
        grad_check(
            (4, 2),
            |g, p| {
                let x = g.input(Tensor::from_vec(
                    3,
                    4,
                    (0..12).map(|i| i as f32 * 0.1 - 0.5).collect(),
                ));
                let y = g.matmul(x, p);
                g.sum_all(y)
            },
            2,
        );
    }

    #[test]
    fn grad_tanh_relu_exp_ln() {
        grad_check(
            (2, 3),
            |g, p| {
                let t = g.tanh(p);
                let r = g.relu(t);
                let e = g.exp(r);
                let pos = g.add_scalar(e, 1.0);
                let l = g.ln(pos);
                g.sum_all(l)
            },
            3,
        );
    }

    #[test]
    fn grad_softmax_rows() {
        grad_check(
            (2, 4),
            |g, p| {
                let s = g.softmax_rows(p);
                let w = g.input(Tensor::from_vec(
                    2,
                    4,
                    vec![0.3, -0.7, 0.2, 0.9, -0.1, 0.4, 0.8, -0.5],
                ));
                let m = g.mul_elem(s, w);
                g.sum_all(m)
            },
            4,
        );
    }

    #[test]
    fn grad_log_softmax_rows() {
        grad_check(
            (2, 5),
            |g, p| {
                let s = g.log_softmax_rows(p);
                let picked = g.pick_per_row(s, &[1, 3]);
                g.sum_all(picked)
            },
            5,
        );
    }

    #[test]
    fn grad_gather_rows() {
        grad_check(
            (5, 3),
            |g, p| {
                let rows = g.gather_rows(p, &[0, 2, 2, 4]);
                let sq = g.mul_elem(rows, rows);
                g.sum_all(sq)
            },
            6,
        );
    }

    #[test]
    fn grad_concat_and_transpose() {
        grad_check(
            (2, 3),
            |g, p| {
                let t = g.transpose(p); // 3x2
                let c = g.concat_cols(&[t, t]); // 3x4
                let r = g.concat_rows(&[c, c]); // 6x4
                let sq = g.mul_elem(r, r);
                g.mean_all(sq)
            },
            7,
        );
    }

    #[test]
    fn grad_minimum_and_clamp() {
        grad_check(
            (3, 3),
            |g, p| {
                let s = g.scale(p, 2.0);
                let c = g.clamp(s, -0.8, 0.8);
                let m = g.minimum(s, c);
                g.sum_all(m)
            },
            8,
        );
    }

    #[test]
    fn grad_add_sub_broadcast() {
        grad_check(
            (1, 4),
            |g, p| {
                let x = g.input(Tensor::from_vec(
                    3,
                    4,
                    (0..12).map(|i| i as f32 * 0.05).collect(),
                ));
                let y = g.add_row_broadcast(x, p);
                let z = g.sub(y, x);
                let w = g.add(z, y);
                g.mean_all(w)
            },
            9,
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let store = ParamStore::new(0);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::from_vec(
            3,
            4,
            (0..12).map(|i| (i as f32).sin()).collect(),
        ));
        let s = g.softmax_rows(x);
        for r in 0..3 {
            let sum: f32 = g.value(s).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let store = ParamStore::new(0);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let ls = g.log_softmax_rows(x);
        let s = g.softmax_rows(x);
        for i in 0..6 {
            assert!((g.value(ls).data()[i] - g.value(s).data()[i].ln()).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "loss must be a scalar")]
    fn backward_requires_scalar() {
        let store = ParamStore::new(0);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::zeros(2, 2));
        g.backward(x);
    }

    #[test]
    fn shared_param_grads_accumulate() {
        let mut store = ParamStore::new(0);
        let p = store.param("p", Tensor::scalar(3.0));
        let mut g = Graph::new(&store);
        let a = g.param(p);
        let b = g.param(p);
        // loss = a * b = p^2 → dp = 2p = 6.
        let loss = g.mul_elem(a, b);
        g.backward(loss);
        let grads = g.param_grads();
        assert!((grads[&p].data()[0] - 6.0).abs() < 1e-5);
    }
}
