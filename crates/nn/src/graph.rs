//! Reverse-mode automatic differentiation over a tape of tensor ops.
//!
//! Values are computed eagerly as nodes are added; [`Graph::backward`]
//! walks the tape in reverse accumulating gradients. Gradients of
//! [`Op::Param`] nodes are exported to the owning
//! [`ParamStore`](crate::ParamStore) via
//! [`ParamStore::accumulate_grads`](crate::ParamStore::accumulate_grads).
//!
//! The tape is allocation-lean: a graph built with
//! [`Graph::with_arena`] draws every output tensor from a shared
//! [`TensorArena`] and returns them all on drop, so steady-state training
//! loops reuse the same buffers tape after tape. Parameter reads are
//! memoized ([`Graph::param`] pushes each `ParamId` once), embedding
//! lookups can gather straight from the store without materializing the
//! table ([`Graph::gather_param_rows`]), and the fused
//! [`Graph::linear`] runs matmul + bias broadcast as one node with one
//! output allocation.
//!
//! Every operation's gradient is validated against central finite
//! differences in this module's tests.

use std::collections::HashMap;

use crate::arena::TensorArena;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Index of a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// Row partition of a stacked (ragged-batch) matrix: segment `s` owns the
/// contiguous row range `[offsets[s], offsets[s+1])`. Shared by the
/// forward and backward kernels of the segment ops
/// ([`Graph::segment_matmul`], [`Graph::segment_softmax_rows`],
/// [`Graph::segment_weighted_sum`]) so both sides agree on reduction
/// boundaries — the property that keeps a segmented batched forward
/// bitwise-identical to the per-sample spelling it replaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segments {
    /// `len() + 1` monotonically non-decreasing row offsets, starting at 0.
    offsets: Vec<usize>,
}

impl Segments {
    /// Builds a partition from per-segment row counts (zero-row segments
    /// are allowed — they stand for empty samples).
    pub fn from_lens(lens: impl IntoIterator<Item = usize>) -> Self {
        let mut offsets = vec![0usize];
        let mut total = 0usize;
        for l in lens {
            total += l;
            offsets.push(total);
        }
        Segments { offsets }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the partition has no segments at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total stacked rows covered (`offsets.last()`).
    pub fn total_rows(&self) -> usize {
        *self.offsets.last().expect("offsets is never empty")
    }

    /// Row bounds `[start, end)` of segment `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= len()`.
    pub fn bounds(&self, s: usize) -> (usize, usize) {
        (self.offsets[s], self.offsets[s + 1])
    }

    /// Iterates `(start, end)` bounds in segment order.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = (usize, usize)> + '_ {
        self.offsets.windows(2).map(|w| (w[0], w[1]))
    }
}

#[derive(Debug, Clone)]
#[allow(dead_code)] // constant operands are kept for Debug output even where backward ignores them
enum Op {
    Input,
    Param(ParamId),
    /// Rows of a parameter table gathered without materializing the table.
    GatherParamRows(ParamId, Vec<usize>),
    MatMul(NodeId, NodeId),
    /// Matmul over a segmented (ragged-batch) left operand: forward is a
    /// plain stacked matmul, backward reduces `db` per segment in reverse
    /// segment order (the per-sample tape's accumulation order).
    SegmentMatMul(NodeId, NodeId, Segments),
    /// Softmax down the rows of each segment, per column.
    SegmentSoftmaxRows(NodeId, Segments),
    /// Attention pool: per-segment weighted sum of value rows.
    SegmentWeightedSum(NodeId, NodeId, Segments),
    /// Fused `x·W + b` (bias row-broadcast), one node and one output.
    Linear(NodeId, NodeId, NodeId),
    AddRowBroadcast(NodeId, NodeId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    MulElem(NodeId, NodeId),
    Minimum(NodeId, NodeId),
    Scale(NodeId, f32),
    AddScalar(NodeId, f32),
    Clamp(NodeId, f32, f32),
    Tanh(NodeId),
    Relu(NodeId),
    Exp(NodeId),
    Ln(NodeId),
    SoftmaxRows(NodeId),
    LogSoftmaxRows(NodeId),
    Transpose(NodeId),
    GatherRows(NodeId, Vec<usize>),
    ConcatCols(Vec<NodeId>),
    ConcatRows(Vec<NodeId>),
    PickPerRow(NodeId, Vec<usize>),
    SumAll(NodeId),
    MeanAll(NodeId),
}

/// A tape of tensor operations with eager forward evaluation and
/// reverse-mode gradients.
#[derive(Debug)]
pub struct Graph<'s> {
    store: &'s ParamStore,
    arena: Option<&'s TensorArena>,
    ops: Vec<Op>,
    values: Vec<Tensor>,
    grads: Vec<Option<Tensor>>,
    param_nodes: HashMap<ParamId, NodeId>,
    ran_backward: bool,
}

impl<'s> Graph<'s> {
    /// Creates an empty tape reading parameters from `store`.
    pub fn new(store: &'s ParamStore) -> Self {
        Graph {
            store,
            arena: None,
            ops: Vec::new(),
            values: Vec::new(),
            grads: Vec::new(),
            param_nodes: HashMap::new(),
            ran_backward: false,
        }
    }

    /// Like [`Graph::new`], but every tensor the tape allocates comes
    /// from (and on drop returns to) `arena`.
    pub fn with_arena(store: &'s ParamStore, arena: &'s TensorArena) -> Self {
        let mut g = Graph::new(store);
        g.arena = Some(arena);
        g
    }

    /// A zeroed `rows × cols` tensor from the arena (or the allocator
    /// when the graph has none).
    fn alloc(&self, rows: usize, cols: usize) -> Tensor {
        match self.arena {
            Some(a) => a.alloc(rows, cols),
            None => Tensor::zeros(rows, cols),
        }
    }

    /// An arena-backed copy of `t`.
    fn dup(&self, t: &Tensor) -> Tensor {
        let mut out = self.alloc(t.rows(), t.cols());
        out.data_mut().copy_from_slice(t.data());
        out
    }

    fn push(&mut self, op: Op, value: Tensor) -> NodeId {
        self.ops.push(op);
        self.values.push(value);
        self.grads.push(None);
        NodeId(self.ops.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, n: NodeId) -> &Tensor {
        &self.values[n.0]
    }

    /// Gradient of a node (available after [`Graph::backward`]).
    pub fn grad(&self, n: NodeId) -> Option<&Tensor> {
        self.grads[n.0].as_ref()
    }

    // ---- leaf nodes ---------------------------------------------------

    /// A constant input (no gradient flows out of the graph).
    pub fn input(&mut self, t: Tensor) -> NodeId {
        self.push(Op::Input, t)
    }

    /// A parameter leaf; its gradient is exported to the store.
    ///
    /// Repeated calls with the same `ParamId` return the same node — the
    /// parameter value is cloned into the tape once per graph, not once
    /// per use (gradient accumulation over shared uses is unaffected).
    pub fn param(&mut self, p: ParamId) -> NodeId {
        if let Some(&n) = self.param_nodes.get(&p) {
            return n;
        }
        let value = self.dup(self.store.get(p));
        let n = self.push(Op::Param(p), value);
        self.param_nodes.insert(p, n);
        n
    }

    // ---- operations ----------------------------------------------------

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let rows = self.values[a.0].rows();
        let cols = self.values[b.0].cols();
        let mut out = self.alloc(rows, cols);
        self.values[a.0].matmul_accum_into(&self.values[b.0], &mut out);
        self.push(Op::MatMul(a, b), out)
    }

    /// Matrix product of a stacked ragged batch `a` (rows partitioned by
    /// `segs`) with a shared right operand `b`.
    ///
    /// The forward value is bitwise-identical to [`Graph::matmul`] (each
    /// output row depends only on its own input row), and so is `da`. The
    /// difference is `db`: a plain stacked matmul would reduce `aᵀ·g` in
    /// one ascending chain over all rows, while the per-sample spelling
    /// this op replaces accumulates one partial per sample, combined in
    /// reverse tape order. This backward computes exactly those
    /// per-segment partials and combines them in reverse segment order,
    /// which is what keeps segmented batched gradients bitwise-identical
    /// to the per-sample reference.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or when `segs` does not cover
    /// `a`'s rows exactly.
    pub fn segment_matmul(&mut self, a: NodeId, b: NodeId, segs: &Segments) -> NodeId {
        assert_eq!(
            self.values[a.0].rows(),
            segs.total_rows(),
            "segment_matmul: segments must cover the left operand's rows"
        );
        let rows = self.values[a.0].rows();
        let cols = self.values[b.0].cols();
        let mut out = self.alloc(rows, cols);
        self.values[a.0].matmul_accum_into(&self.values[b.0], &mut out);
        self.push(Op::SegmentMatMul(a, b, segs.clone()), out)
    }

    /// Softmax down the rows of each segment, independently per column —
    /// the ragged-batch form of "softmax over each sample's score
    /// vector". For an `n×1` score column this computes, per segment,
    /// exactly what [`Graph::softmax_rows`] computes on the transposed
    /// `1×n` row (same max/exp/sum order), so values and gradients match
    /// the per-sample `transpose → softmax_rows` spelling bitwise.
    ///
    /// Zero-row segments are skipped.
    ///
    /// # Panics
    ///
    /// Panics when `segs` does not cover `a`'s rows exactly.
    pub fn segment_softmax_rows(&mut self, a: NodeId, segs: &Segments) -> NodeId {
        let av = &self.values[a.0];
        assert_eq!(
            av.rows(),
            segs.total_rows(),
            "segment_softmax_rows: segments must cover the input's rows"
        );
        let cols = av.cols();
        let rows_total = segs.total_rows();
        let _timer = nvc_obs::time_op(nvc_obs::Op::SegmentSoftmax);
        let mut out = self.dup(av);
        // Sharded over whole segments (cuts only between segments), so
        // each segment's max/exp/sum/divide order is untouched and the
        // threaded bits equal the serial ones. The ×8 scales the
        // element count to a multiply-add-equivalent cost (max + exp +
        // sum + divide passes, exp being the expensive one).
        let bounds: Vec<(usize, usize)> = segs.iter().collect();
        let threads = crate::kernels::effective_threads(
            segs.len(),
            rows_total.saturating_mul(cols).saturating_mul(8),
        );
        crate::kernels::run_segment_sharded(
            threads,
            &bounds,
            cols,
            out.data_mut(),
            &|s0, s1, slice| {
                let base = bounds[s0].0;
                let fast = crate::kernels::kernel_mode() == crate::kernels::KernelMode::Fast;
                for &(r0, r1) in &bounds[s0..s1] {
                    if r0 == r1 {
                        continue;
                    }
                    for c in 0..cols {
                        if fast {
                            // Single-pass online-max softmax down this
                            // segment's column — same element order as
                            // strict, one data pass instead of three.
                            crate::kernels::fast::online_softmax_strided(
                                slice,
                                (r0 - base) * cols + c,
                                cols,
                                r1 - r0,
                            );
                            continue;
                        }
                        let at = |r: usize| (r - base) * cols + c;
                        let m = (r0..r1).fold(f32::NEG_INFINITY, |m, r| m.max(slice[at(r)]));
                        let mut sum = 0.0f32;
                        for r in r0..r1 {
                            let e = (slice[at(r)] - m).exp();
                            slice[at(r)] = e;
                            sum += e;
                        }
                        for r in r0..r1 {
                            slice[at(r)] /= sum;
                        }
                    }
                }
            },
        );
        self.push(Op::SegmentSoftmaxRows(a, segs.clone()), out)
    }

    /// Attention pool over a stacked ragged batch: row `s` of the output
    /// is `Σ_r weights[r] · values[r]` over segment `s`'s rows, i.e. the
    /// per-segment `α · C` product, accumulated in ascending row order —
    /// bitwise-identical to the per-sample `1×n × n×d` matmul.
    ///
    /// Zero-row segments produce zero rows (empty samples embed to zero).
    ///
    /// # Panics
    ///
    /// Panics unless `weights` is a `total_rows × 1` column and `values`
    /// has `total_rows` rows.
    pub fn segment_weighted_sum(
        &mut self,
        weights: NodeId,
        values: NodeId,
        segs: &Segments,
    ) -> NodeId {
        let (wv, vv) = (&self.values[weights.0], &self.values[values.0]);
        assert_eq!(wv.cols(), 1, "weights must be a column vector");
        assert_eq!(
            wv.rows(),
            segs.total_rows(),
            "segment_weighted_sum: segments must cover the weight rows"
        );
        assert_eq!(
            vv.rows(),
            segs.total_rows(),
            "segment_weighted_sum: segments must cover the value rows"
        );
        let d = vv.cols();
        let _timer = nvc_obs::time_op(nvc_obs::Op::SegmentWeightedSum);
        let mut out = self.alloc(segs.len(), d);
        // Output row `s` is segment `s`'s pooled row, so row sharding
        // *is* segment sharding here: a shard owns whole segments, and
        // within each the ascending-`r` accumulation is unchanged —
        // threaded bits equal serial bits.
        let bounds: Vec<(usize, usize)> = segs.iter().collect();
        let (wd, vd) = (wv.data(), vv.data());
        let threads =
            crate::kernels::effective_threads(segs.len(), segs.total_rows().saturating_mul(d));
        crate::kernels::run_row_sharded(
            threads,
            segs.len(),
            d,
            out.data_mut(),
            &|s0, s1, out_rows| {
                let fast = crate::kernels::kernel_mode() == crate::kernels::KernelMode::Fast;
                for (s, &(r0, r1)) in bounds[s0..s1].iter().enumerate() {
                    let orow = &mut out_rows[s * d..(s + 1) * d];
                    if fast {
                        crate::kernels::fast::weighted_sum_fast(wd, vd, d, r0, r1, orow);
                        continue;
                    }
                    for r in r0..r1 {
                        let a = wd[r];
                        let vrow = &vd[r * d..(r + 1) * d];
                        for (o, &x) in orow.iter_mut().zip(vrow.iter()) {
                            *o += a * x;
                        }
                    }
                }
            },
        );
        self.push(Op::SegmentWeightedSum(weights, values, segs.clone()), out)
    }

    /// Fused affine map `x·W + b` where `b` is a `1×d` bias row added to
    /// every output row: one tape node, one output allocation, and
    /// results bitwise-identical to `matmul` followed by
    /// [`Graph::add_row_broadcast`].
    ///
    /// The whole fusion is row-parallel: each worker of the sharded
    /// kernel driver runs its rows' matmul *and* their bias add in one
    /// pass, so the threaded path never rescans the output. Per element
    /// the bias still lands after the complete ascending-`k` product
    /// chain — exactly the unfused order — keeping the fused, unfused,
    /// and threaded spellings bitwise-identical.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or when `b` is not `1 × W.cols()`.
    pub fn linear(&mut self, x: NodeId, w: NodeId, b: NodeId) -> NodeId {
        let (rows, kd) = self.values[x.0].shape();
        let cols = self.values[w.0].cols();
        {
            let bv = &self.values[b.0];
            assert_eq!(bv.rows(), 1, "bias must be a row vector");
            assert_eq!(bv.cols(), cols, "bias width mismatch");
        }
        assert_eq!(
            kd,
            self.values[w.0].rows(),
            "matmul shape mismatch: {}x{} × {}x{}",
            rows,
            kd,
            self.values[w.0].rows(),
            cols
        );
        let mut out = self.alloc(rows, cols);
        {
            let _timer = nvc_obs::time_op(nvc_obs::Op::Linear);
            let xv = &self.values[x.0];
            let wv = &self.values[w.0];
            let bias = self.values[b.0].data();
            let madds = rows.saturating_mul(kd).saturating_mul(cols);
            let fast = crate::kernels::kernel_mode() == crate::kernels::KernelMode::Fast;
            if fast {
                if let Some(shards) = crate::kernels::k_split_shards(rows, kd, madds) {
                    // Tall-thin fast path: k-split the product, then add
                    // the bias serially after the partials combine (the
                    // bias must land after the *complete* product chain,
                    // same as the row-sharded spellings).
                    crate::kernels::run_mm_k_split(
                        shards,
                        rows,
                        cols,
                        kd,
                        out.data_mut(),
                        &|k0, k1, partial| {
                            crate::kernels::fast::mm_rows_fast(
                                xv.data(),
                                wv.data(),
                                kd,
                                cols,
                                k0,
                                k1,
                                0,
                                rows,
                                partial,
                            );
                        },
                    );
                    if cols > 0 {
                        for row in out.data_mut().chunks_exact_mut(cols) {
                            for (o, &bb) in row.iter_mut().zip(bias.iter()) {
                                *o += bb;
                            }
                        }
                    }
                    return self.push(Op::Linear(x, w, b), out);
                }
            }
            let threads = crate::kernels::effective_threads(rows, madds);
            crate::kernels::run_row_sharded(
                threads,
                rows,
                cols,
                out.data_mut(),
                &|r0, r1, out_rows| {
                    if fast {
                        crate::kernels::fast::mm_rows_fast(
                            xv.data(),
                            wv.data(),
                            kd,
                            cols,
                            0,
                            kd,
                            r0,
                            r1,
                            out_rows,
                        );
                    } else {
                        crate::kernels::mm_rows(xv.data(), wv.data(), kd, cols, r0, r1, out_rows);
                    }
                    if cols > 0 {
                        for row in out_rows.chunks_exact_mut(cols) {
                            for (o, &bb) in row.iter_mut().zip(bias.iter()) {
                                *o += bb;
                            }
                        }
                    }
                },
            );
        }
        self.push(Op::Linear(x, w, b), out)
    }

    /// Adds a `1×d` bias row to every row of an `n×d` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1×d`.
    pub fn add_row_broadcast(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let (av, bv) = (&self.values[a.0], &self.values[bias.0]);
        assert_eq!(bv.rows(), 1, "bias must be a row vector");
        assert_eq!(av.cols(), bv.cols(), "bias width mismatch");
        let (rows, cols) = av.shape();
        let mut out = self.dup(av);
        let bias_row = self.values[bias.0].data();
        for r in 0..rows {
            let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
            for (o, &bb) in row.iter_mut().zip(bias_row.iter()) {
                *o += bb;
            }
        }
        self.push(Op::AddRowBroadcast(a, bias), out)
    }

    /// Arena-backed elementwise unary output.
    fn unary_value(&self, a: NodeId, f: impl Fn(f32) -> f32) -> Tensor {
        let av = &self.values[a.0];
        let mut out = self.alloc(av.rows(), av.cols());
        for (o, &x) in out.data_mut().iter_mut().zip(av.data().iter()) {
            *o = f(x);
        }
        out
    }

    /// Arena-backed elementwise binary output.
    fn binary_value(&self, a: NodeId, b: NodeId, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let (av, bv) = (&self.values[a.0], &self.values[b.0]);
        assert_eq!(av.shape(), bv.shape(), "elementwise shape mismatch");
        let mut out = self.alloc(av.rows(), av.cols());
        for ((o, &x), &y) in out
            .data_mut()
            .iter_mut()
            .zip(av.data().iter())
            .zip(bv.data().iter())
        {
            *o = f(x, y);
        }
        out
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.binary_value(a, b, |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.binary_value(a, b, |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise product.
    pub fn mul_elem(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.binary_value(a, b, |x, y| x * y);
        self.push(Op::MulElem(a, b), v)
    }

    /// Elementwise minimum (PPO's clipped-surrogate uses this).
    pub fn minimum(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.binary_value(a, b, f32::min);
        self.push(Op::Minimum(a, b), v)
    }

    /// Multiplies by a constant.
    pub fn scale(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.unary_value(a, |x| x * c);
        self.push(Op::Scale(a, c), v)
    }

    /// Adds a constant.
    pub fn add_scalar(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.unary_value(a, |x| x + c);
        self.push(Op::AddScalar(a, c), v)
    }

    /// Clamps to `[lo, hi]` (zero gradient outside).
    pub fn clamp(&mut self, a: NodeId, lo: f32, hi: f32) -> NodeId {
        let v = self.unary_value(a, |x| x.clamp(lo, hi));
        self.push(Op::Clamp(a, lo, hi), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.unary_value(a, f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.unary_value(a, |x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.unary_value(a, f32::exp);
        self.push(Op::Exp(a), v)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        let v = self.unary_value(a, f32::ln);
        self.push(Op::Ln(a), v)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let av = &self.values[a.0];
        let mut out = self.dup(av);
        softmax_rows_inplace(&mut out);
        self.push(Op::SoftmaxRows(a), out)
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn log_softmax_rows(&mut self, a: NodeId) -> NodeId {
        let av = &self.values[a.0];
        let (rows, cols) = av.shape();
        let mut out = self.dup(av);
        for r in 0..rows {
            let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
            for x in row.iter_mut() {
                *x -= lse;
            }
        }
        self.push(Op::LogSoftmaxRows(a), out)
    }

    /// Transposed copy.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let av = &self.values[a.0];
        let (rows, cols) = av.shape();
        let mut out = self.alloc(cols, rows);
        for i in 0..rows {
            for j in 0..cols {
                out.data_mut()[j * rows + i] = av.data()[i * cols + j];
            }
        }
        self.push(Op::Transpose(a), out)
    }

    /// Selects rows of `table` by index (embedding lookup). Gradients
    /// scatter-add back into the table.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&mut self, table: NodeId, indices: &[usize]) -> NodeId {
        let cols = self.values[table.0].cols();
        let mut out = self.alloc(indices.len(), cols);
        gather_into(&self.values[table.0], indices, &mut out);
        self.push(Op::GatherRows(table, indices.to_vec()), out)
    }

    /// Selects rows of parameter `p` by index, reading straight from the
    /// store — the table itself is never cloned onto the tape (a full
    /// copy of an embedding table per graph is the single largest
    /// allocation the encoder used to make). Gradients scatter-add into
    /// the parameter exactly as `param` + `gather_rows` would.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_param_rows(&mut self, p: ParamId, indices: &[usize]) -> NodeId {
        let table = self.store.get(p);
        let mut out = self.alloc(indices.len(), table.cols());
        gather_into(table, indices, &mut out);
        self.push(Op::GatherParamRows(p, indices.to_vec()), out)
    }

    /// Concatenates tensors with equal row counts along columns.
    ///
    /// # Panics
    ///
    /// Panics when row counts differ or `parts` is empty.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let rows = self.values[parts[0].0].rows();
        let total: usize = parts.iter().map(|p| self.values[p.0].cols()).sum();
        let mut out = self.alloc(rows, total);
        let mut col = 0;
        for p in parts {
            let v = &self.values[p.0];
            assert_eq!(v.rows(), rows, "concat_cols row mismatch");
            let w = v.cols();
            for r in 0..rows {
                out.data_mut()[r * total + col..r * total + col + w]
                    .copy_from_slice(&v.data()[r * w..(r + 1) * w]);
            }
            col += w;
        }
        self.push(Op::ConcatCols(parts.to_vec()), out)
    }

    /// Stacks tensors with equal column counts along rows.
    ///
    /// # Panics
    ///
    /// Panics when column counts differ or `parts` is empty.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let cols = self.values[parts[0].0].cols();
        let total: usize = parts.iter().map(|p| self.values[p.0].rows()).sum();
        let mut out = self.alloc(total, cols);
        let mut row = 0;
        for p in parts {
            let v = &self.values[p.0];
            assert_eq!(v.cols(), cols, "concat_rows col mismatch");
            let n = v.len();
            out.data_mut()[row * cols..row * cols + n].copy_from_slice(v.data());
            row += v.rows();
        }
        self.push(Op::ConcatRows(parts.to_vec()), out)
    }

    /// Picks one element per row (e.g. the log-probability of the action
    /// taken), returning `n×1`.
    ///
    /// # Panics
    ///
    /// Panics when `indices.len()` differs from the row count or any index
    /// is out of bounds.
    pub fn pick_per_row(&mut self, a: NodeId, indices: &[usize]) -> NodeId {
        let v = &self.values[a.0];
        assert_eq!(v.rows(), indices.len(), "one index per row required");
        let mut out = self.alloc(v.rows(), 1);
        for (r, &c) in indices.iter().enumerate() {
            assert!(c < v.cols(), "pick index out of bounds");
            out.data_mut()[r] = v[(r, c)];
        }
        self.push(Op::PickPerRow(a, indices.to_vec()), out)
    }

    /// Sum of all elements, as `1×1`.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let mut v = self.alloc(1, 1);
        v.data_mut()[0] = self.values[a.0].sum();
        self.push(Op::SumAll(a), v)
    }

    /// Mean of all elements, as `1×1`.
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let t = &self.values[a.0];
        let mean = t.sum() / t.len() as f32;
        let mut v = self.alloc(1, 1);
        v.data_mut()[0] = mean;
        self.push(Op::MeanAll(a), v)
    }

    // ---- backward -------------------------------------------------------

    /// Runs reverse-mode differentiation from `loss` (must be `1×1`).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not scalar or `backward` was already run.
    pub fn backward(&mut self, loss: NodeId) {
        assert!(!self.ran_backward, "backward may only run once per graph");
        assert_eq!(self.values[loss.0].shape(), (1, 1), "loss must be a scalar");
        self.ran_backward = true;
        let mut seed = self.alloc(1, 1);
        seed.data_mut()[0] = 1.0;
        self.grads[loss.0] = Some(seed);

        for i in (0..self.ops.len()).rev() {
            // Take the node's gradient for the duration of its backward
            // step (no clone); restored below so `grad()` keeps working.
            let Some(g) = self.grads[i].take() else {
                continue;
            };
            match self.ops[i].clone() {
                Op::Input | Op::Param(_) | Op::GatherParamRows(_, _) => {}
                Op::MatMul(a, b) => {
                    let mut da = self.alloc(g.rows(), self.values[a.0].cols());
                    g.matmul_nt_accum_into(&self.values[b.0], &mut da);
                    let mut db = self.alloc(self.values[a.0].cols(), g.cols());
                    self.values[a.0].matmul_tn_accum_into(&g, &mut db);
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::SegmentMatMul(a, b, segs) => {
                    // da is row-independent — identical to MatMul.
                    let mut da = self.alloc(g.rows(), self.values[a.0].cols());
                    g.matmul_nt_accum_into(&self.values[b.0], &mut da);
                    // db: one `aᵀ·g` partial per segment, combined in
                    // reverse segment order — the order the per-sample
                    // tape's reverse walk accumulates its per-sample
                    // partials in. Empty segments contribute nothing
                    // (empty samples create no ops in the reference).
                    let (bk, bn) = self.values[b.0].shape();
                    let mut db = self.alloc(bk, bn);
                    {
                        let av = &self.values[a.0];
                        for (r0, r1) in segs.iter().rev() {
                            if r0 == r1 {
                                continue;
                            }
                            let mut partial = self.alloc(bk, bn);
                            matmul_tn_rows_accum_into(av, &g, r0, r1, &mut partial);
                            db.add_scaled(&partial, 1.0);
                            if let Some(arena) = self.arena {
                                arena.recycle(partial);
                            }
                        }
                    }
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::SegmentSoftmaxRows(a, segs) => {
                    let y = &self.values[i];
                    let cols = y.cols();
                    let mut da = self.alloc(y.rows(), cols);
                    for (r0, r1) in segs.iter() {
                        for c in 0..cols {
                            let dot: f32 = (r0..r1).map(|r| g[(r, c)] * y[(r, c)]).sum();
                            for r in r0..r1 {
                                da[(r, c)] = y[(r, c)] * (g[(r, c)] - dot);
                            }
                        }
                    }
                    self.accum(a, da);
                }
                Op::SegmentWeightedSum(w, v, segs) => {
                    // dw[r] = g[s]·v[r] (ascending-column dot, matching
                    // matmul_nt); dv[r] = w[r]·g[s] (single product,
                    // matching matmul_tn with one shared row).
                    let d = self.values[v.0].cols();
                    let mut dw = self.alloc(self.values[w.0].rows(), 1);
                    let mut dv = self.alloc(self.values[v.0].rows(), d);
                    {
                        let (wv, vv) = (&self.values[w.0], &self.values[v.0]);
                        let fast =
                            crate::kernels::kernel_mode() == crate::kernels::KernelMode::Fast;
                        for (s, (r0, r1)) in segs.iter().enumerate() {
                            let grow = &g.data()[s * d..(s + 1) * d];
                            for r in r0..r1 {
                                let vrow = &vv.data()[r * d..(r + 1) * d];
                                let acc = if fast {
                                    crate::kernels::fast::dot_fast(grow, vrow)
                                } else {
                                    let mut acc = 0.0f32;
                                    for (&gx, &vx) in grow.iter().zip(vrow.iter()) {
                                        acc += gx * vx;
                                    }
                                    acc
                                };
                                dw.data_mut()[r] = acc;
                                let a = wv.data()[r];
                                let dvrow = &mut dv.data_mut()[r * d..(r + 1) * d];
                                for (o, &gx) in dvrow.iter_mut().zip(grow.iter()) {
                                    *o = a * gx;
                                }
                            }
                        }
                    }
                    self.accum(w, dw);
                    self.accum(v, dv);
                }
                Op::Linear(x, w, b) => {
                    let mut dx = self.alloc(g.rows(), self.values[x.0].cols());
                    g.matmul_nt_accum_into(&self.values[w.0], &mut dx);
                    let mut dw = self.alloc(self.values[x.0].cols(), g.cols());
                    self.values[x.0].matmul_tn_accum_into(&g, &mut dw);
                    let db = colsum(self, &g);
                    self.accum(x, dx);
                    self.accum(w, dw);
                    self.accum(b, db);
                }
                Op::AddRowBroadcast(a, bias) => {
                    let db = colsum(self, &g);
                    let da = self.dup(&g);
                    self.accum(a, da);
                    self.accum(bias, db);
                }
                Op::Add(a, b) => {
                    let da = self.dup(&g);
                    let db = self.dup(&g);
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::Sub(a, b) => {
                    let da = self.dup(&g);
                    let mut db = self.dup(&g);
                    db.map_inplace(|x| -x);
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::MulElem(a, b) => {
                    let mut da = self.dup(&g);
                    da.zip_inplace(&self.values[b.0], |x, y| x * y);
                    let mut db = self.dup(&g);
                    db.zip_inplace(&self.values[a.0], |x, y| x * y);
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::Minimum(a, b) => {
                    let (av, bv) = (&self.values[a.0], &self.values[b.0]);
                    let mut da = self.alloc(g.rows(), g.cols());
                    let mut db = self.alloc(g.rows(), g.cols());
                    for (((da_i, db_i), &gd), (&x, &y)) in da
                        .data_mut()
                        .iter_mut()
                        .zip(db.data_mut().iter_mut())
                        .zip(g.data().iter())
                        .zip(av.data().iter().zip(bv.data().iter()))
                    {
                        if x <= y {
                            *da_i = gd;
                        } else {
                            *db_i = gd;
                        }
                    }
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::Scale(a, c) => {
                    let mut da = self.dup(&g);
                    da.map_inplace(|x| x * c);
                    self.accum(a, da);
                }
                Op::AddScalar(a, _) => {
                    let da = self.dup(&g);
                    self.accum(a, da);
                }
                Op::Clamp(a, lo, hi) => {
                    let mut da = self.dup(&g);
                    da.zip_inplace(
                        &self.values[a.0],
                        |gd, x| {
                            if x > lo && x < hi {
                                gd
                            } else {
                                0.0
                            }
                        },
                    );
                    self.accum(a, da);
                }
                Op::Tanh(a) => {
                    let mut da = self.dup(&g);
                    da.zip_inplace(&self.values[i], |gd, y| gd * (1.0 - y * y));
                    self.accum(a, da);
                }
                Op::Relu(a) => {
                    let mut da = self.dup(&g);
                    da.zip_inplace(&self.values[a.0], |gd, x| if x > 0.0 { gd } else { 0.0 });
                    self.accum(a, da);
                }
                Op::Exp(a) => {
                    let mut da = self.dup(&g);
                    da.zip_inplace(&self.values[i], |gd, y| gd * y);
                    self.accum(a, da);
                }
                Op::Ln(a) => {
                    let mut da = self.dup(&g);
                    da.zip_inplace(&self.values[a.0], |gd, x| gd / x);
                    self.accum(a, da);
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.values[i];
                    let mut da = self.alloc(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 = (0..y.cols()).map(|c| g[(r, c)] * y[(r, c)]).sum();
                        for c in 0..y.cols() {
                            da[(r, c)] = y[(r, c)] * (g[(r, c)] - dot);
                        }
                    }
                    self.accum(a, da);
                }
                Op::LogSoftmaxRows(a) => {
                    let y = &self.values[i]; // log-probs
                    let mut da = self.alloc(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let gsum: f32 = (0..y.cols()).map(|c| g[(r, c)]).sum();
                        for c in 0..y.cols() {
                            da[(r, c)] = g[(r, c)] - y[(r, c)].exp() * gsum;
                        }
                    }
                    self.accum(a, da);
                }
                Op::Transpose(a) => {
                    let (rows, cols) = (g.rows(), g.cols());
                    let mut da = self.alloc(cols, rows);
                    for r in 0..rows {
                        for c in 0..cols {
                            da.data_mut()[c * rows + r] = g.data()[r * cols + c];
                        }
                    }
                    self.accum(a, da);
                }
                Op::GatherRows(table, indices) => {
                    let t = &self.values[table.0];
                    let cols = t.cols();
                    let mut dt = self.alloc(t.rows(), cols);
                    for (r, &idx) in indices.iter().enumerate() {
                        let dst = &mut dt.data_mut()[idx * cols..(idx + 1) * cols];
                        for (d, &gd) in dst.iter_mut().zip(g.data()[r * cols..].iter()) {
                            *d += gd;
                        }
                    }
                    self.accum(table, dt);
                }
                Op::ConcatCols(parts) => {
                    let total = g.cols();
                    let mut col = 0;
                    for p in parts {
                        let w = self.values[p.0].cols();
                        let rows = self.values[p.0].rows();
                        let mut dp = self.alloc(rows, w);
                        for r in 0..rows {
                            dp.data_mut()[r * w..(r + 1) * w]
                                .copy_from_slice(&g.data()[r * total + col..r * total + col + w]);
                        }
                        self.accum(p, dp);
                        col += w;
                    }
                }
                Op::ConcatRows(parts) => {
                    let cols = g.cols();
                    let mut row = 0;
                    for p in parts {
                        let h = self.values[p.0].rows();
                        let mut dp = self.alloc(h, cols);
                        let n = h * cols;
                        dp.data_mut()
                            .copy_from_slice(&g.data()[row * cols..row * cols + n]);
                        self.accum(p, dp);
                        row += h;
                    }
                }
                Op::PickPerRow(a, indices) => {
                    let v = &self.values[a.0];
                    let mut da = self.alloc(v.rows(), v.cols());
                    for (r, &c) in indices.iter().enumerate() {
                        da[(r, c)] += g[(r, 0)];
                    }
                    self.accum(a, da);
                }
                Op::SumAll(a) => {
                    let gv = g[(0, 0)];
                    let v = &self.values[a.0];
                    let mut da = self.alloc(v.rows(), v.cols());
                    da.data_mut().fill(gv);
                    self.accum(a, da);
                }
                Op::MeanAll(a) => {
                    let v = &self.values[a.0];
                    let gv = g[(0, 0)] / v.len() as f32;
                    let mut da = self.alloc(v.rows(), v.cols());
                    da.data_mut().fill(gv);
                    self.accum(a, da);
                }
            }
            self.grads[i] = Some(g);
        }
    }

    fn accum(&mut self, n: NodeId, g: Tensor) {
        match &mut self.grads[n.0] {
            Some(existing) => {
                existing.add_scaled(&g, 1.0);
                if let Some(arena) = self.arena {
                    arena.recycle(g);
                }
            }
            slot @ None => *slot = Some(g),
        }
    }

    /// Gradients of every parameter node, merged by [`ParamId`].
    /// Gathered-parameter nodes ([`Graph::gather_param_rows`]) scatter
    /// their row gradients into a table-shaped tensor here.
    pub fn param_grads(&self) -> HashMap<ParamId, Tensor> {
        let mut out: HashMap<ParamId, Tensor> = HashMap::new();
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                Op::Param(p) => {
                    if let Some(g) = &self.grads[i] {
                        out.entry(*p)
                            .and_modify(|acc| acc.add_scaled(g, 1.0))
                            .or_insert_with(|| g.clone());
                    }
                }
                Op::GatherParamRows(p, indices) => {
                    if let Some(g) = &self.grads[i] {
                        let table = self.store.get(*p);
                        let cols = table.cols();
                        let entry = out
                            .entry(*p)
                            .or_insert_with(|| Tensor::zeros(table.rows(), cols));
                        for (r, &idx) in indices.iter().enumerate() {
                            let dst = &mut entry.data_mut()[idx * cols..(idx + 1) * cols];
                            for (d, &gd) in dst.iter_mut().zip(g.data()[r * cols..].iter()) {
                                *d += gd;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }
}

impl Drop for Graph<'_> {
    fn drop(&mut self) {
        if let Some(arena) = self.arena {
            for v in self.values.drain(..) {
                arena.recycle(v);
            }
            for g in self.grads.drain(..).flatten() {
                arena.recycle(g);
            }
        }
    }
}

/// Column sums of `g` as a `1×d` arena-backed tensor (bias gradients).
fn colsum(g_ref: &Graph<'_>, g: &Tensor) -> Tensor {
    let cols = g.cols();
    let mut out = g_ref.alloc(1, cols);
    for r in 0..g.rows() {
        let row = &g.data()[r * cols..(r + 1) * cols];
        for (o, &x) in out.data_mut().iter_mut().zip(row.iter()) {
            *o += x;
        }
    }
    out
}

/// `a[r0..r1]ᵀ × g[r0..r1]` accumulated into `out` — the row-windowed
/// form of [`Tensor::matmul_tn_accum_into`], with the identical
/// ascending-row accumulation order (so a per-segment partial matches
/// the per-sample `xᵀ·g` bitwise).
fn matmul_tn_rows_accum_into(a: &Tensor, g: &Tensor, r0: usize, r1: usize, out: &mut Tensor) {
    let (m, n) = (a.cols(), g.cols());
    debug_assert_eq!(out.shape(), (m, n));
    if crate::kernels::kernel_mode() == crate::kernels::KernelMode::Fast {
        // The fast `tn` kernel over just this row window — same madd
        // chain the per-sample `matmul_tn_accum_into` runs in fast mode.
        crate::kernels::fast::tn_rows_fast(
            &a.data()[r0 * m..r1 * m],
            &g.data()[r0 * n..r1 * n],
            r1 - r0,
            m,
            n,
            0,
            m,
            out.data_mut(),
        );
        return;
    }
    for k in r0..r1 {
        let a_row = &a.data()[k * m..(k + 1) * m];
        let g_row = &g.data()[k * n..(k + 1) * n];
        for (i, &x) in a_row.iter().enumerate() {
            let out_row = &mut out.data_mut()[i * n..(i + 1) * n];
            for (o, &gg) in out_row.iter_mut().zip(g_row.iter()) {
                *o += x * gg;
            }
        }
    }
}

fn gather_into(table: &Tensor, indices: &[usize], out: &mut Tensor) {
    let _timer = nvc_obs::time_op(nvc_obs::Op::Gather);
    let cols = table.cols();
    for (i, &idx) in indices.iter().enumerate() {
        assert!(idx < table.rows(), "gather index out of bounds");
        out.data_mut()[i * cols..(i + 1) * cols].copy_from_slice(table.row(idx));
    }
}

fn softmax_rows_inplace(t: &mut Tensor) {
    let (rows, cols) = t.shape();
    if crate::kernels::kernel_mode() == crate::kernels::KernelMode::Fast {
        // Same single-pass online-max kernel the segmented spelling uses
        // (stride 1 over a contiguous row), so the per-sample `transpose
        // → softmax_rows` chain stays bitwise-equal to
        // `segment_softmax_rows` in fast mode too.
        for r in 0..rows {
            crate::kernels::fast::online_softmax_strided(t.data_mut(), r * cols, 1, cols);
        }
        return;
    }
    for r in 0..rows {
        let row = &mut t.data_mut()[r * cols..(r + 1) * cols];
        let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            let e = (*x - m).exp();
            *x = e;
            sum += e;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Central finite-difference check of `d loss / d param` for an
    /// arbitrary graph builder.
    fn grad_check(
        shape: (usize, usize),
        build: impl Fn(&mut Graph<'_>, NodeId) -> NodeId,
        seed: u64,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut store = ParamStore::new(seed);
        let init = Tensor::from_vec(
            shape.0,
            shape.1,
            (0..shape.0 * shape.1)
                .map(|_| rng.gen_range(-0.9..0.9f32))
                .collect(),
        );
        let p = store.param("p", init);

        // Analytic gradient (scoped: Graph's Drop holds the store borrow).
        let analytic = {
            let mut g = Graph::new(&store);
            let leaf = g.param(p);
            let loss = build(&mut g, leaf);
            g.backward(loss);
            g.param_grads().remove(&p).expect("param grad")
        };

        // Numeric gradient.
        let eps = 1e-3f32;
        for i in 0..store.get(p).len() {
            let orig = store.get(p).data()[i];
            store.get_mut(p).data_mut()[i] = orig + eps;
            let f1 = {
                let mut g1 = Graph::new(&store);
                let leaf = g1.param(p);
                let l1 = build(&mut g1, leaf);
                g1.value(l1).data()[0]
            };

            store.get_mut(p).data_mut()[i] = orig - eps;
            let f2 = {
                let mut g2 = Graph::new(&store);
                let leaf = g2.param(p);
                let l2 = build(&mut g2, leaf);
                g2.value(l2).data()[0]
            };

            store.get_mut(p).data_mut()[i] = orig;
            let numeric = (f1 - f2) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs().max(numeric.abs())),
                "grad mismatch at {i}: analytic={a} numeric={numeric}"
            );
        }
    }

    #[test]
    fn grad_matmul() {
        grad_check(
            (3, 4),
            |g, p| {
                let w = g.input(Tensor::from_vec(
                    4,
                    2,
                    (0..8).map(|i| i as f32 * 0.1).collect(),
                ));
                let y = g.matmul(p, w);
                g.sum_all(y)
            },
            1,
        );
    }

    #[test]
    fn grad_matmul_rhs() {
        grad_check(
            (4, 2),
            |g, p| {
                let x = g.input(Tensor::from_vec(
                    3,
                    4,
                    (0..12).map(|i| i as f32 * 0.1 - 0.5).collect(),
                ));
                let y = g.matmul(x, p);
                g.sum_all(y)
            },
            2,
        );
    }

    #[test]
    fn grad_linear_wrt_input() {
        grad_check(
            (3, 4),
            |g, p| {
                let w = g.input(Tensor::from_vec(
                    4,
                    2,
                    (0..8).map(|i| i as f32 * 0.1 - 0.3).collect(),
                ));
                let b = g.input(Tensor::from_vec(1, 2, vec![0.5, -0.25]));
                let y = g.linear(p, w, b);
                let t = g.tanh(y);
                g.sum_all(t)
            },
            21,
        );
    }

    #[test]
    fn grad_linear_wrt_weight() {
        grad_check(
            (4, 2),
            |g, p| {
                let x = g.input(Tensor::from_vec(
                    3,
                    4,
                    (0..12).map(|i| i as f32 * 0.07 - 0.4).collect(),
                ));
                let b = g.input(Tensor::from_vec(1, 2, vec![0.1, 0.2]));
                let y = g.linear(x, p, b);
                let sq = g.mul_elem(y, y);
                g.mean_all(sq)
            },
            22,
        );
    }

    #[test]
    fn grad_linear_wrt_bias() {
        grad_check(
            (1, 3),
            |g, p| {
                let x = g.input(Tensor::from_vec(
                    4,
                    2,
                    (0..8).map(|i| i as f32 * 0.1).collect(),
                ));
                let w = g.input(Tensor::from_vec(
                    2,
                    3,
                    (0..6).map(|i| i as f32 * 0.2).collect(),
                ));
                let y = g.linear(x, w, p);
                let e = g.exp(y);
                g.sum_all(e)
            },
            23,
        );
    }

    /// The fused op must be bitwise-identical to the two-op spelling —
    /// forward values and all parameter gradients.
    #[test]
    fn linear_matches_matmul_plus_broadcast_bitwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut store = ParamStore::new(31);
        let x_init = Tensor::from_vec(5, 7, (0..35).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let w = store.param(
            "w",
            Tensor::from_vec(7, 3, (0..21).map(|_| rng.gen_range(-1.0..1.0)).collect()),
        );
        let b = store.param(
            "b",
            Tensor::from_vec(1, 3, (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect()),
        );

        let mut g1 = Graph::new(&store);
        let x1 = g1.input(x_init.clone());
        let (wn, bn) = (g1.param(w), g1.param(b));
        let fused = g1.linear(x1, wn, bn);
        let t1 = g1.tanh(fused);
        let l1 = g1.sum_all(t1);
        g1.backward(l1);
        let grads1 = g1.param_grads();

        let mut g2 = Graph::new(&store);
        let x2 = g2.input(x_init);
        let (wn2, bn2) = (g2.param(w), g2.param(b));
        let mm = g2.matmul(x2, wn2);
        let unfused = g2.add_row_broadcast(mm, bn2);
        let t2 = g2.tanh(unfused);
        let l2 = g2.sum_all(t2);
        g2.backward(l2);
        let grads2 = g2.param_grads();

        assert_eq!(g1.value(fused), g2.value(unfused), "forward diverged");
        assert_eq!(grads1[&w], grads2[&w], "dW diverged");
        assert_eq!(grads1[&b], grads2[&b], "db diverged");
    }

    /// Direct-from-store gathers must match the param + gather_rows
    /// spelling bitwise, values and gradients both.
    #[test]
    fn gather_param_rows_matches_param_gather() {
        let mut rng = ChaCha8Rng::seed_from_u64(37);
        let mut store = ParamStore::new(37);
        let table = store.param(
            "table",
            Tensor::from_vec(6, 4, (0..24).map(|_| rng.gen_range(-1.0..1.0)).collect()),
        );
        let idxs = [0usize, 3, 3, 5, 1];

        let mut g1 = Graph::new(&store);
        let rows1 = g1.gather_param_rows(table, &idxs);
        let sq1 = g1.mul_elem(rows1, rows1);
        let l1 = g1.sum_all(sq1);
        g1.backward(l1);
        let grads1 = g1.param_grads();

        let mut g2 = Graph::new(&store);
        let t = g2.param(table);
        let rows2 = g2.gather_rows(t, &idxs);
        let sq2 = g2.mul_elem(rows2, rows2);
        let l2 = g2.sum_all(sq2);
        g2.backward(l2);
        let grads2 = g2.param_grads();

        assert_eq!(g1.value(rows1), g2.value(rows2));
        assert_eq!(grads1[&table], grads2[&table]);
    }

    #[test]
    fn param_nodes_are_memoized() {
        let mut store = ParamStore::new(0);
        let p = store.param("p", Tensor::scalar(2.0));
        let mut g = Graph::new(&store);
        let a = g.param(p);
        let b = g.param(p);
        assert_eq!(a, b, "same ParamId must map to one tape node");
    }

    /// An arena-backed graph computes the same values as a plain one and
    /// actually reuses buffers on the second tape.
    #[test]
    fn arena_graphs_match_plain_graphs_and_reuse_buffers() {
        let mut store = ParamStore::new(5);
        let w = store.param_xavier("w", 6, 4);
        let b = store.param("b", Tensor::zeros(1, 4));
        let arena = TensorArena::new();
        let x = Tensor::from_vec(3, 6, (0..18).map(|i| (i as f32).sin()).collect());

        let run = |g: &mut Graph<'_>| {
            let xn = g.input(x.clone());
            let (wn, bn) = (g.param(w), g.param(b));
            let y = g.linear(xn, wn, bn);
            let t = g.tanh(y);
            let l = g.mean_all(t);
            g.backward(l);
            (g.value(t).clone(), g.param_grads())
        };

        let (plain_v, plain_g) = {
            let mut g = Graph::new(&store);
            run(&mut g)
        };
        for pass in 0..2 {
            let mut g = Graph::with_arena(&store, &arena);
            let (v, grads) = run(&mut g);
            assert_eq!(v, plain_v, "arena pass {pass} changed forward values");
            assert_eq!(grads[&w], plain_g[&w]);
            assert_eq!(grads[&b], plain_g[&b]);
        }
        let stats = arena.stats();
        assert!(
            stats.reused > 0,
            "second arena tape must reuse buffers: {stats:?}"
        );
    }

    #[test]
    fn segments_partition_rows() {
        let segs = Segments::from_lens([3, 0, 2]);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs.total_rows(), 5);
        assert_eq!(segs.bounds(0), (0, 3));
        assert_eq!(segs.bounds(1), (3, 3));
        assert_eq!(segs.bounds(2), (3, 5));
        let bounds: Vec<_> = segs.iter().collect();
        assert_eq!(bounds, vec![(0, 3), (3, 3), (3, 5)]);
        assert!(!segs.is_empty());
        assert!(Segments::from_lens([]).is_empty());
    }

    #[test]
    fn grad_segment_matmul_wrt_left() {
        let segs = Segments::from_lens([2, 1, 3]);
        grad_check(
            (6, 4),
            move |g, p| {
                let w = g.input(Tensor::from_vec(
                    4,
                    3,
                    (0..12).map(|i| i as f32 * 0.11 - 0.4).collect(),
                ));
                let y = g.segment_matmul(p, w, &segs);
                let t = g.tanh(y);
                g.sum_all(t)
            },
            51,
        );
    }

    #[test]
    fn grad_segment_matmul_wrt_right() {
        let segs = Segments::from_lens([1, 0, 4]);
        grad_check(
            (4, 2),
            move |g, p| {
                let x = g.input(Tensor::from_vec(
                    5,
                    4,
                    (0..20).map(|i| (i as f32 * 0.3).sin()).collect(),
                ));
                let y = g.segment_matmul(x, p, &segs);
                let sq = g.mul_elem(y, y);
                g.mean_all(sq)
            },
            52,
        );
    }

    #[test]
    fn grad_segment_softmax_rows() {
        let segs = Segments::from_lens([3, 1, 2]);
        grad_check(
            (6, 1),
            move |g, p| {
                let s = g.segment_softmax_rows(p, &segs);
                let w = g.input(Tensor::from_vec(6, 1, vec![0.3, -0.7, 0.2, 0.9, -0.1, 0.4]));
                let m = g.mul_elem(s, w);
                g.sum_all(m)
            },
            53,
        );
    }

    #[test]
    fn grad_segment_weighted_sum_wrt_weights() {
        let segs = Segments::from_lens([2, 3]);
        grad_check(
            (5, 1),
            move |g, p| {
                let v = g.input(Tensor::from_vec(
                    5,
                    3,
                    (0..15).map(|i| (i as f32 * 0.7).cos()).collect(),
                ));
                let pooled = g.segment_weighted_sum(p, v, &segs);
                let sq = g.mul_elem(pooled, pooled);
                g.sum_all(sq)
            },
            54,
        );
    }

    #[test]
    fn grad_segment_weighted_sum_wrt_values() {
        let segs = Segments::from_lens([2, 0, 3]);
        grad_check(
            (5, 3),
            move |g, p| {
                let w = g.input(Tensor::from_vec(5, 1, vec![0.2, 0.8, 0.5, -0.3, 0.6]));
                let pooled = g.segment_weighted_sum(w, p, &segs);
                let t = g.tanh(pooled);
                g.sum_all(t)
            },
            55,
        );
    }

    /// The full segmented attention pipeline must be bitwise-identical —
    /// forward values and every parameter gradient — to the per-sample
    /// spelling it replaces (per-sample matmul/softmax/pool stacked with
    /// concat_rows), across ragged segment shapes including empty and
    /// single-row segments. This is the kernel-level half of the
    /// `nvc-embed` encoder parity bar.
    #[test]
    fn segmented_attention_matches_per_sample_spelling_bitwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        for lens in [vec![4usize, 1, 7], vec![1], vec![3, 0, 5, 2], vec![2, 2]] {
            let total: usize = lens.iter().sum();
            let mut store = ParamStore::new(72);
            let w = store.param(
                "w",
                Tensor::from_vec(6, 4, (0..24).map(|_| rng.gen_range(-1.0..1.0)).collect()),
            );
            let attn = store.param(
                "attn",
                Tensor::from_vec(4, 1, (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect()),
            );
            let x = Tensor::from_vec(
                total,
                6,
                (0..total * 6).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            );
            let gsel = Tensor::from_vec(
                lens.len(),
                4,
                (0..lens.len() * 4)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
            );

            // Per-sample spelling: one matmul/softmax/pool chain per
            // segment, stacked with concat_rows (zeros for empty rows).
            let (ref_vals, ref_grads) = {
                let mut g = Graph::new(&store);
                let rows: Vec<NodeId> = {
                    let mut rows = Vec::new();
                    let mut r0 = 0usize;
                    for &l in &lens {
                        if l == 0 {
                            rows.push(g.input(Tensor::zeros(1, 4)));
                            continue;
                        }
                        let xs = g.input(Tensor::from_vec(
                            l,
                            6,
                            x.data()[r0 * 6..(r0 + l) * 6].to_vec(),
                        ));
                        let (wn, an) = (g.param(w), g.param(attn));
                        let proj = g.matmul(xs, wn);
                        let c = g.tanh(proj);
                        let scores = g.matmul(c, an);
                        let row = g.transpose(scores);
                        let alpha = g.softmax_rows(row);
                        rows.push(g.matmul(alpha, c));
                        r0 += l;
                    }
                    rows
                };
                let out = if rows.len() == 1 {
                    rows[0]
                } else {
                    g.concat_rows(&rows)
                };
                let sel = g.input(gsel.clone());
                let prod = g.mul_elem(out, sel);
                let loss = g.sum_all(prod);
                g.backward(loss);
                (g.value(out).clone(), g.param_grads())
            };

            // Segmented spelling: one node per stage over the whole stack.
            let segs = Segments::from_lens(lens.iter().copied());
            let (seg_vals, seg_grads) = {
                let mut g = Graph::new(&store);
                let xs = g.input(x.clone());
                let (wn, an) = (g.param(w), g.param(attn));
                let proj = g.segment_matmul(xs, wn, &segs);
                let c = g.tanh(proj);
                let scores = g.segment_matmul(c, an, &segs);
                let alpha = g.segment_softmax_rows(scores, &segs);
                let out = g.segment_weighted_sum(alpha, c, &segs);
                let sel = g.input(gsel.clone());
                let prod = g.mul_elem(out, sel);
                let loss = g.sum_all(prod);
                g.backward(loss);
                (g.value(out).clone(), g.param_grads())
            };

            assert_eq!(ref_vals, seg_vals, "forward diverged for lens {lens:?}");
            assert_eq!(
                ref_grads[&w], seg_grads[&w],
                "dW diverged for lens {lens:?}"
            );
            assert_eq!(
                ref_grads[&attn], seg_grads[&attn],
                "d_attn diverged for lens {lens:?}"
            );
        }
    }

    #[test]
    fn grad_tanh_relu_exp_ln() {
        grad_check(
            (2, 3),
            |g, p| {
                let t = g.tanh(p);
                let r = g.relu(t);
                let e = g.exp(r);
                let pos = g.add_scalar(e, 1.0);
                let l = g.ln(pos);
                g.sum_all(l)
            },
            3,
        );
    }

    #[test]
    fn grad_softmax_rows() {
        grad_check(
            (2, 4),
            |g, p| {
                let s = g.softmax_rows(p);
                let w = g.input(Tensor::from_vec(
                    2,
                    4,
                    vec![0.3, -0.7, 0.2, 0.9, -0.1, 0.4, 0.8, -0.5],
                ));
                let m = g.mul_elem(s, w);
                g.sum_all(m)
            },
            4,
        );
    }

    #[test]
    fn grad_log_softmax_rows() {
        grad_check(
            (2, 5),
            |g, p| {
                let s = g.log_softmax_rows(p);
                let picked = g.pick_per_row(s, &[1, 3]);
                g.sum_all(picked)
            },
            5,
        );
    }

    #[test]
    fn grad_gather_rows() {
        grad_check(
            (5, 3),
            |g, p| {
                let rows = g.gather_rows(p, &[0, 2, 2, 4]);
                let sq = g.mul_elem(rows, rows);
                g.sum_all(sq)
            },
            6,
        );
    }

    #[test]
    fn grad_concat_and_transpose() {
        grad_check(
            (2, 3),
            |g, p| {
                let t = g.transpose(p); // 3x2
                let c = g.concat_cols(&[t, t]); // 3x4
                let r = g.concat_rows(&[c, c]); // 6x4
                let sq = g.mul_elem(r, r);
                g.mean_all(sq)
            },
            7,
        );
    }

    #[test]
    fn grad_minimum_and_clamp() {
        grad_check(
            (3, 3),
            |g, p| {
                let s = g.scale(p, 2.0);
                let c = g.clamp(s, -0.8, 0.8);
                let m = g.minimum(s, c);
                g.sum_all(m)
            },
            8,
        );
    }

    #[test]
    fn grad_add_sub_broadcast() {
        grad_check(
            (1, 4),
            |g, p| {
                let x = g.input(Tensor::from_vec(
                    3,
                    4,
                    (0..12).map(|i| i as f32 * 0.05).collect(),
                ));
                let y = g.add_row_broadcast(x, p);
                let z = g.sub(y, x);
                let w = g.add(z, y);
                g.mean_all(w)
            },
            9,
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let store = ParamStore::new(0);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::from_vec(
            3,
            4,
            (0..12).map(|i| (i as f32).sin()).collect(),
        ));
        let s = g.softmax_rows(x);
        for r in 0..3 {
            let sum: f32 = g.value(s).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let store = ParamStore::new(0);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let ls = g.log_softmax_rows(x);
        let s = g.softmax_rows(x);
        for i in 0..6 {
            assert!((g.value(ls).data()[i] - g.value(s).data()[i].ln()).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "loss must be a scalar")]
    fn backward_requires_scalar() {
        let store = ParamStore::new(0);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::zeros(2, 2));
        g.backward(x);
    }

    #[test]
    fn shared_param_grads_accumulate() {
        let mut store = ParamStore::new(0);
        let p = store.param("p", Tensor::scalar(3.0));
        let mut g = Graph::new(&store);
        let a = g.param(p);
        let b = g.param(p);
        // loss = a * b = p^2 → dp = 2p = 6.
        let loss = g.mul_elem(a, b);
        g.backward(loss);
        let grads = g.param_grads();
        assert!((grads[&p].data()[0] - 6.0).abs() < 1e-5);
    }
}
