//! A reusable tensor-buffer pool.
//!
//! Every [`Graph`](crate::Graph) op allocates an output tensor, and a
//! training iteration builds thousands of short-lived tapes — without
//! reuse that is a steady stream of `malloc`/`free` of identical sizes.
//! [`TensorArena`] keeps the freed buffers: a graph created with
//! [`Graph::with_arena`](crate::Graph::with_arena) draws its allocations
//! from the pool and returns them all when dropped, so steady-state
//! training and serving run with near-zero allocator traffic.
//!
//! Buffers are binned by power-of-two capacity class, so `alloc` and
//! `recycle` are O(1) with no size scans, and each bin carries its own
//! lock — concurrent users (the serving layer's workers all draw from
//! the trainer's arena) contend only when they want the same size class
//! at the same instant, not on one global pool mutex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::tensor::Tensor;

/// Number of power-of-two size classes (covers buffers up to 2⁶³).
const CLASSES: usize = 64;

/// Buffers kept per size class; excess recycles are released to the
/// allocator so one giant graph cannot pin memory forever.
const PER_CLASS_CAP: usize = 64;

/// How many bins above the request's own an `alloc` probes before
/// giving up and taking a fresh allocation. Bounds both the number of
/// lock acquisitions per miss and the capacity waste of a reused buffer
/// (at most ~16× the request).
const SEARCH_SPAN: usize = 4;

/// Point-in-time counters of a [`TensorArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Allocations served from the pool.
    pub reused: u64,
    /// Allocations that fell through to the system allocator.
    pub fresh: u64,
    /// Buffers currently pooled.
    pub pooled: usize,
}

/// A thread-safe pool of recycled tensor buffers.
#[derive(Debug)]
pub struct TensorArena {
    bins: Vec<Mutex<Vec<Vec<f32>>>>,
    reused: AtomicU64,
    fresh: AtomicU64,
}

impl Default for TensorArena {
    fn default() -> Self {
        TensorArena {
            bins: (0..CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
            reused: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
        }
    }
}

/// Bin of a buffer with capacity `c`: `floor(log2(c))`. Every buffer in
/// bin `b` has capacity in `[2^b, 2^(b+1))`, so bins strictly above
/// `floor(log2(n))` always satisfy a request for `n` elements, and the
/// request's own bin may after a capacity check.
fn bin_of(c: usize) -> usize {
    (usize::BITS - 1 - c.max(1).leading_zeros()) as usize
}

impl TensorArena {
    /// An empty pool.
    pub fn new() -> Self {
        TensorArena::default()
    }

    /// A zeroed `rows × cols` tensor, reusing a pooled buffer when one of
    /// sufficient capacity exists in the request's own bin or the next
    /// few above it.
    pub fn alloc(&self, rows: usize, cols: usize) -> Tensor {
        let n = rows * cols;
        let own = bin_of(n);
        let mut found = None;
        for b in own..(own + SEARCH_SPAN).min(CLASSES) {
            let mut bin = self.bins[b].lock().unwrap_or_else(|e| e.into_inner());
            if b == own {
                // The request's own bin holds capacities [2^b, 2^(b+1)),
                // which may straddle n — check before taking.
                if let Some(pos) = bin.iter().rposition(|v| v.capacity() >= n) {
                    found = Some(bin.swap_remove(pos));
                }
            } else {
                // Every buffer in a higher bin is large enough.
                found = bin.pop();
            }
            if found.is_some() {
                break;
            }
        }
        match found {
            Some(mut b) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                b.clear();
                b.resize(n, 0.0);
                Tensor::from_vec(rows, cols, b)
            }
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                Tensor::zeros(rows, cols)
            }
        }
    }

    /// Returns a tensor's buffer to the pool.
    pub fn recycle(&self, t: Tensor) {
        let buf = t.into_data();
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        let mut bin = self.bins[bin_of(cap)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if bin.len() < PER_CLASS_CAP {
            bin.push(buf);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            reused: self.reused.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
            pooled: self
                .bins
                .iter()
                .map(|b| b.lock().unwrap_or_else(|e| e.into_inner()).len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_zeroed_even_after_recycle() {
        let arena = TensorArena::new();
        let mut t = arena.alloc(3, 4);
        t.data_mut().fill(7.0);
        arena.recycle(t);
        let t2 = arena.alloc(2, 5);
        assert_eq!(t2.shape(), (2, 5));
        assert!(
            t2.data().iter().all(|&x| x == 0.0),
            "recycled buffer leaked data"
        );
        assert_eq!(
            arena.stats().reused,
            1,
            "second alloc should reuse the buffer"
        );
    }

    #[test]
    fn larger_requests_fall_through_to_fresh_allocation() {
        let arena = TensorArena::new();
        arena.recycle(arena.alloc(1, 2));
        let big = arena.alloc(64, 64);
        assert_eq!(big.len(), 4096);
        let s = arena.stats();
        assert_eq!(s.reused, 0);
        assert_eq!(s.fresh, 2);
        assert_eq!(s.pooled, 1, "the small buffer must still be pooled");
    }

    #[test]
    fn binning_never_hands_out_undersized_buffers() {
        let arena = TensorArena::new();
        for n in [1usize, 2, 3, 63, 64, 65, 1000] {
            arena.recycle(arena.alloc(1, n));
        }
        for n in [1usize, 5, 64, 100, 900] {
            let t = arena.alloc(n, 1);
            assert_eq!(t.len(), n);
        }
    }

    #[test]
    fn pool_is_bounded() {
        let arena = TensorArena::new();
        for _ in 0..(PER_CLASS_CAP + 50) {
            arena.recycle(Tensor::zeros(4, 4));
        }
        assert!(arena.stats().pooled <= PER_CLASS_CAP);
    }

    #[test]
    fn concurrent_use_is_safe() {
        let arena = std::sync::Arc::new(TensorArena::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let a = std::sync::Arc::clone(&arena);
                s.spawn(move || {
                    for i in 1..200usize {
                        let t = a.alloc(1 + i % 17, 1 + i % 23);
                        a.recycle(t);
                    }
                });
            }
        });
        let stats = arena.stats();
        assert_eq!(stats.reused + stats.fresh, 4 * 199);
    }
}
