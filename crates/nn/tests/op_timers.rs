//! Kernel profiling hooks: the hot tensor/graph ops report into
//! `nvc_obs`'s per-op aggregate timers when (and only when) profiling is
//! enabled. Runs as its own test binary so the process-global ops flag
//! cannot race the unit tests.

use nvc_nn::{Graph, ParamStore, Segments, Tensor};
use nvc_obs::{ops_snapshot, reset_ops, set_ops_enabled, Op};

fn calls(op: Op) -> u64 {
    ops_snapshot()
        .into_iter()
        .find(|s| s.op == op)
        .map(|s| s.calls)
        .unwrap_or(0)
}

/// Runs one tiny forward that touches every instrumented op family.
fn exercise() -> Vec<f32> {
    let mut store = ParamStore::new(7);
    let table = store.param(
        "table",
        Tensor::from_vec(4, 3, (0..12).map(|i| i as f32).collect()),
    );
    let w = store.param("w", Tensor::from_vec(3, 2, vec![0.5; 6]));
    let b = store.param("b", Tensor::from_vec(1, 2, vec![0.1, -0.1]));

    let mut g = Graph::new(&store);
    let rows = g.gather_param_rows(table, &[0, 2, 1, 3]);
    let wn = g.param(w);
    let bn = g.param(b);
    let h = g.linear(rows, wn, bn);
    let segs = Segments::from_lens([2, 2]);
    let scores = g.input(Tensor::from_vec(4, 1, vec![0.3, -0.2, 1.0, 0.5]));
    let attn = g.segment_softmax_rows(scores, &segs);
    let pooled = g.segment_weighted_sum(attn, h, &segs);
    let proj = g.input(Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
    let out = g.matmul(pooled, proj);
    g.value(out).data().to_vec()
}

#[test]
fn op_timers_count_when_enabled_and_stay_silent_when_disabled() {
    // Disabled: nothing records, whatever NVC_OPS says.
    set_ops_enabled(false);
    reset_ops();
    let baseline = exercise();
    for stat in ops_snapshot() {
        assert_eq!(
            stat.calls, 0,
            "{:?} recorded while profiling was off",
            stat.op
        );
        assert_eq!(stat.total_ns, 0);
    }

    // Enabled: every instrumented family that the forward touches shows up.
    set_ops_enabled(true);
    reset_ops();
    let timed = exercise();
    for op in [
        Op::Gather,
        Op::Linear,
        Op::SegmentSoftmax,
        Op::SegmentWeightedSum,
        Op::MatMul,
    ] {
        assert!(calls(op) > 0, "{op:?} ran but its timer stayed at zero");
    }

    // Profiling must not perturb the math: bitwise-identical output.
    assert_eq!(
        baseline.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        timed.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        "op timers changed the forward's numerics"
    );

    // Leave the process-global flag the way we found it.
    set_ops_enabled(false);
    reset_ops();
}
