//! Target machine description.

use serde::{Deserialize, Serialize};

/// Execution resource classes. Each maps to a number of ports on the target
/// (see [`PortCounts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceClass {
    /// Vector integer/float ALU (add, sub, compare, blend, shuffle, logic).
    VAlu,
    /// Vector multiply / FMA.
    VMul,
    /// Divide / sqrt (non-pipelined; occupancy handled by the scheduler).
    VDiv,
    /// Vector/scalar load.
    VLoad,
    /// Vector/scalar store.
    VStore,
    /// Scalar bookkeeping (induction update, branches, address generation).
    Scalar,
}

impl ResourceClass {
    /// All classes, for iteration.
    pub const ALL: [ResourceClass; 6] = [
        ResourceClass::VAlu,
        ResourceClass::VMul,
        ResourceClass::VDiv,
        ResourceClass::VLoad,
        ResourceClass::VStore,
        ResourceClass::Scalar,
    ];
}

/// Number of issue ports per resource class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortCounts {
    /// Vector ALU ports.
    pub valu: f64,
    /// Vector multiply ports.
    pub vmul: f64,
    /// Divider units.
    pub vdiv: f64,
    /// Load ports.
    pub vload: f64,
    /// Store ports.
    pub vstore: f64,
    /// Scalar ports.
    pub scalar: f64,
}

impl PortCounts {
    /// Ports available for `class`.
    pub fn get(&self, class: ResourceClass) -> f64 {
        match class {
            ResourceClass::VAlu => self.valu,
            ResourceClass::VMul => self.vmul,
            ResourceClass::VDiv => self.vdiv,
            ResourceClass::VLoad => self.vload,
            ResourceClass::VStore => self.vstore,
            ResourceClass::Scalar => self.scalar,
        }
    }
}

/// One level of the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheSpec {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Load-to-use latency in cycles.
    pub latency: f64,
    /// Sustained bandwidth in bytes per cycle.
    pub bytes_per_cycle: f64,
}

/// Full description of the modelled CPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetConfig {
    /// Human-readable name.
    pub name: String,
    /// Vector register width in bits for floating-point operations
    /// (AVX = 256).
    pub vector_bits: u32,
    /// Vector width usable by *integer* operations. AVX1 (the paper's
    /// testbed configuration) executes integer SIMD at 128 bits; this is
    /// why LLVM's VF cap for `i32` loops is 4 there.
    pub int_vector_bits: u32,
    /// Architectural vector registers.
    pub num_vector_regs: u32,
    /// Micro-ops issued per cycle.
    pub issue_width: f64,
    /// Ports per resource class.
    pub ports: PortCounts,
    /// L1D, L2, L3 then memory, ordered smallest to largest. The last entry
    /// is main memory (capacity ignored).
    pub memory: [CacheSpec; 4],
    /// Core frequency in GHz (for cycle→seconds conversion).
    pub freq_ghz: f64,
    /// Micro-op cache capacity (in uops); loop bodies larger than this
    /// issue slower.
    pub uop_cache: f64,
    /// Maximum VF exposed to the pragma action space (`MAX_VF` in §3.3).
    pub max_vf: u32,
    /// Maximum IF exposed to the pragma action space (`MAX_IF` in §3.3).
    pub max_if: u32,
}

impl TargetConfig {
    /// The paper's testbed: 4-core Intel i7-8559U (Coffee Lake, AVX2),
    /// 2.7 GHz base / 4.5 GHz turbo, 16 GB LPDDR3-2133.
    ///
    /// Port counts and latencies follow public instruction tables for the
    /// microarchitecture class; bandwidths are per-core sustained figures.
    pub fn i7_8559u() -> Self {
        TargetConfig {
            name: "i7-8559u".to_string(),
            vector_bits: 256,
            int_vector_bits: 128,
            num_vector_regs: 16,
            issue_width: 4.0,
            ports: PortCounts {
                valu: 2.0,
                vmul: 2.0,
                vdiv: 1.0,
                vload: 2.0,
                vstore: 1.0,
                scalar: 2.0,
            },
            memory: [
                CacheSpec {
                    capacity: 32 * 1024,
                    latency: 4.0,
                    bytes_per_cycle: 96.0,
                },
                CacheSpec {
                    capacity: 256 * 1024,
                    latency: 12.0,
                    bytes_per_cycle: 32.0,
                },
                CacheSpec {
                    capacity: 8 * 1024 * 1024,
                    latency: 38.0,
                    bytes_per_cycle: 14.0,
                },
                CacheSpec {
                    capacity: u64::MAX,
                    latency: 160.0,
                    bytes_per_cycle: 7.0,
                },
            ],
            freq_ghz: 3.6,
            uop_cache: 1536.0,
            max_vf: 64,
            max_if: 16,
        }
    }

    /// Lanes of a `bytes`-wide element in one native vector register.
    /// Integer and floating-point element types may have different widths
    /// (AVX1 integer SIMD is 128-bit).
    pub fn native_lanes(&self, elem_bytes: u32, is_float: bool) -> u32 {
        let bits = if is_float {
            self.vector_bits
        } else {
            self.int_vector_bits
        };
        (bits / 8 / elem_bytes.max(1)).max(1)
    }

    /// Converts cycles to seconds at the configured frequency.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }

    /// The discrete VF action values `1, 2, 4, …, max_vf` (§3.3, eq. 3).
    pub fn vf_candidates(&self) -> Vec<u32> {
        pow2_up_to(self.max_vf)
    }

    /// The discrete IF action values `1, 2, 4, …, max_if`.
    pub fn if_candidates(&self) -> Vec<u32> {
        pow2_up_to(self.max_if)
    }
}

impl Default for TargetConfig {
    fn default() -> Self {
        Self::i7_8559u()
    }
}

fn pow2_up_to(max: u32) -> Vec<u32> {
    let mut v = Vec::new();
    let mut x = 1u32;
    while x <= max {
        v.push(x);
        x <<= 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_testbed() {
        let t = TargetConfig::default();
        assert_eq!(t.vector_bits, 256);
        assert_eq!(t.num_vector_regs, 16);
        assert_eq!(t.max_vf, 64);
        assert_eq!(t.max_if, 16);
    }

    #[test]
    fn action_space_matches_figure1_grid() {
        // 7 VFs × 5 IFs = 35 configurations, as in §2.1.
        let t = TargetConfig::i7_8559u();
        assert_eq!(t.vf_candidates(), vec![1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(t.if_candidates(), vec![1, 2, 4, 8, 16]);
        assert_eq!(t.vf_candidates().len() * t.if_candidates().len(), 35);
    }

    #[test]
    fn native_lanes_by_type() {
        let t = TargetConfig::i7_8559u();
        assert_eq!(t.native_lanes(4, true), 8); // f32: 256-bit
        assert_eq!(t.native_lanes(8, true), 4); // f64
        assert_eq!(t.native_lanes(4, false), 4); // i32: AVX1 = 128-bit
        assert_eq!(t.native_lanes(1, false), 16); // i8
    }

    #[test]
    fn memory_levels_are_monotonic() {
        let t = TargetConfig::i7_8559u();
        for w in t.memory.windows(2) {
            assert!(w[0].capacity < w[1].capacity);
            assert!(w[0].latency < w[1].latency);
            assert!(w[0].bytes_per_cycle > w[1].bytes_per_cycle);
        }
    }

    #[test]
    fn cycle_conversion() {
        let t = TargetConfig::i7_8559u();
        let s = t.cycles_to_seconds(3.6e9);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn port_lookup_covers_all_classes() {
        let t = TargetConfig::i7_8559u();
        for c in ResourceClass::ALL {
            assert!(t.ports.get(c) > 0.0);
        }
    }
}
