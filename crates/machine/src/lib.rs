//! Analytic SIMD CPU performance model.
//!
//! The paper measures kernels on a 2.7 GHz Intel i7-8559U with AVX and
//! 16 GB LPDDR3, averaging one million runs (§2.1). This crate replaces
//! that testbed with a deterministic analytic model of the same machine
//! class — an out-of-order core with:
//!
//! * a front end issuing a fixed number of micro-ops per cycle,
//! * per-class execution ports (vector ALU, vector multiply, divide,
//!   load, store, scalar),
//! * software-pipeline-style steady-state throughput: the initiation
//!   interval of the vector loop body is `max(ResMII, RecMII, front-end)`,
//!   where `RecMII` comes from loop-carried recurrence chains (reduction
//!   accumulators — the reason interleaving helps),
//! * a three-level cache hierarchy plus memory with per-level bandwidth
//!   (roofline behaviour) and a residency model based on working-set
//!   footprints,
//! * penalties real vectorized code pays: misaligned accesses, gathers,
//!   masked operations, register spills when `VF × IF` explodes, uop-cache
//!   overflow for huge unrolled bodies, scalar remainder loops, and
//!   horizontal reduction tails.
//!
//! None of this claims cycle accuracy against real silicon; what matters
//! for the reproduction is that the *shape* of the VF×IF landscape matches
//! the paper's Figure 1 (many configurations beat the baseline's choice,
//! the best ones combine wide vectors with enough interleaving to hide
//! latency, and extreme factors collapse), and that a linear per-instruction
//! cost model — the baseline — systematically mispredicts it.
//!
//! The input is a [`LoopShape`] produced by the vectorizer crate; the
//! output a [`LoopTiming`] in cycles (convert with
//! [`TargetConfig::cycles_to_seconds`]).

pub mod cache;
pub mod model;
pub mod target;

pub use cache::{assign_residency, CacheLevel, MemStream, StreamPattern};
pub use model::{simulate_loop, Bottleneck, LoopShape, LoopTiming, Recurrence, UopBundle};
pub use target::{PortCounts, ResourceClass, TargetConfig};

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end sanity: a trivially small shape produces finite positive
    /// cycles on the default target.
    #[test]
    fn simulate_smoke() {
        let target = TargetConfig::i7_8559u();
        let shape = LoopShape {
            blocks: 64,
            elems_per_block: 8,
            uops: vec![UopBundle::new(ResourceClass::VAlu, 2.0, 1.0)],
            recurrences: vec![],
            streams: vec![],
            remainder_elems: 0,
            scalar_uops_per_iter: 4.0,
            per_execution_overhead_uops: 2.0,
            live_vector_regs: 3,
            runtime_trip_check: false,
        };
        let t = simulate_loop(&shape, &target);
        assert!(t.cycles > 0.0);
        assert!(t.cycles.is_finite());
    }
}
