//! Cache residency assignment for memory streams.
//!
//! The paper's kernels are run a million times and averaged (§2.1), so the
//! steady state matters: a 2 KB dot-product array lives in L1 and the
//! kernel is latency/throughput bound, while PolyBench matrices spill to L2
//! or L3 and become bandwidth bound — which is where Polly's tiling wins
//! (§4.1). This module decides, per stream, which level of the hierarchy
//! feeds it.

use serde::{Deserialize, Serialize};

use crate::target::TargetConfig;

/// Which level of the hierarchy serves a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CacheLevel {
    /// First-level data cache.
    L1,
    /// Second-level cache.
    L2,
    /// Last-level cache.
    L3,
    /// DRAM.
    Memory,
}

impl CacheLevel {
    /// Index into [`TargetConfig::memory`].
    pub fn index(self) -> usize {
        match self {
            CacheLevel::L1 => 0,
            CacheLevel::L2 => 1,
            CacheLevel::L3 => 2,
            CacheLevel::Memory => 3,
        }
    }

    fn from_index(i: usize) -> Self {
        match i {
            0 => CacheLevel::L1,
            1 => CacheLevel::L2,
            2 => CacheLevel::L3,
            _ => CacheLevel::Memory,
        }
    }
}

/// Spatial pattern of a stream, for bandwidth accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StreamPattern {
    /// Dense unit-stride traffic.
    Contiguous,
    /// Strided: whole cache lines fetched per element once stride exceeds a
    /// line.
    Strided,
    /// Data-dependent addresses (gather/scatter).
    Gather,
}

/// One memory stream of a vectorized loop, as seen by the machine model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemStream {
    /// Bytes transferred per vector block (including over-fetch for strided
    /// patterns).
    pub bytes_per_block: f64,
    /// Steady-state working set this stream needs resident to avoid misses.
    pub footprint_bytes: u64,
    /// Pattern for latency/bandwidth treatment.
    pub pattern: StreamPattern,
    /// Gathered lanes per block (0 unless `pattern == Gather`).
    pub gather_lanes_per_block: f64,
    /// True for stores.
    pub is_store: bool,
    /// Streams sharing a key (accesses to the same array) contribute their
    /// footprint to the shared working set only once.
    pub footprint_key: u32,
    /// Residency, filled in by [`assign_residency`].
    pub level: CacheLevel,
}

impl MemStream {
    /// Creates a stream with residency defaulted to L1 (call
    /// [`assign_residency`] to fix it up).
    pub fn new(
        bytes_per_block: f64,
        footprint_bytes: u64,
        pattern: StreamPattern,
        is_store: bool,
    ) -> Self {
        MemStream {
            bytes_per_block,
            footprint_bytes,
            pattern,
            gather_lanes_per_block: 0.0,
            is_store,
            footprint_key: 0,
            level: CacheLevel::L1,
        }
    }

    /// Sets the footprint-sharing key (builder style).
    pub fn with_footprint_key(mut self, key: u32) -> Self {
        self.footprint_key = key;
        self
    }
}

/// Assigns each stream the smallest cache level that can keep it resident.
///
/// A stream fits a level when its own footprint fits *and* the combined
/// working set of all streams does not overwhelm the level (beyond a 1.5×
/// slack factor approximating partial residency and associativity effects).
pub fn assign_residency(streams: &mut [MemStream], target: &TargetConfig) {
    // Sum each array's working set once, even when several access sites
    // (different offsets into the same array) produce separate streams.
    let mut seen: Vec<(u32, u64)> = Vec::new();
    for s in streams.iter() {
        match seen.iter_mut().find(|(k, _)| *k == s.footprint_key) {
            Some((_, fp)) => *fp = (*fp).max(s.footprint_bytes),
            None => seen.push((s.footprint_key, s.footprint_bytes)),
        }
    }
    let total: u64 = seen.iter().map(|(_, fp)| fp).sum();
    for s in streams.iter_mut() {
        let mut chosen = CacheLevel::Memory;
        for (i, spec) in target.memory.iter().enumerate() {
            let own_fits = s.footprint_bytes <= spec.capacity;
            let shared_ok = (total as f64) <= spec.capacity as f64 * 1.5;
            if own_fits && (shared_ok || s.footprint_bytes <= spec.capacity / 8) {
                chosen = CacheLevel::from_index(i);
                break;
            }
        }
        s.level = chosen;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(footprint: u64) -> MemStream {
        MemStream::new(256.0, footprint, StreamPattern::Contiguous, false)
    }

    fn keyed(footprint: u64, key: u32) -> MemStream {
        MemStream::new(256.0, footprint, StreamPattern::Contiguous, false).with_footprint_key(key)
    }

    #[test]
    fn small_arrays_live_in_l1() {
        let t = TargetConfig::i7_8559u();
        // Dot product: 512 × 4 bytes = 2 KB.
        let mut s = vec![stream(2048)];
        assign_residency(&mut s, &t);
        assert_eq!(s[0].level, CacheLevel::L1);
    }

    #[test]
    fn medium_arrays_live_in_l2() {
        let t = TargetConfig::i7_8559u();
        let mut s = vec![stream(128 * 1024)];
        assign_residency(&mut s, &t);
        assert_eq!(s[0].level, CacheLevel::L2);
    }

    #[test]
    fn large_arrays_go_to_l3_or_memory() {
        let t = TargetConfig::i7_8559u();
        let mut s = vec![stream(4 * 1024 * 1024)];
        assign_residency(&mut s, &t);
        assert_eq!(s[0].level, CacheLevel::L3);
        let mut m = vec![stream(64 * 1024 * 1024)];
        assign_residency(&mut m, &t);
        assert_eq!(m[0].level, CacheLevel::Memory);
    }

    #[test]
    fn shared_pressure_demotes_streams() {
        let t = TargetConfig::i7_8559u();
        // Three 24 KB streams: each alone fits L1 (32 KB) but together (72 KB)
        // they do not — they should demote to L2.
        let mut s = vec![
            keyed(24 * 1024, 0),
            keyed(24 * 1024, 1),
            keyed(24 * 1024, 2),
        ];
        assign_residency(&mut s, &t);
        assert!(s.iter().all(|x| x.level == CacheLevel::L2));
    }

    #[test]
    fn same_array_streams_share_footprint() {
        let t = TargetConfig::i7_8559u();
        // Three access sites into one 24 KB array count once → stays L1.
        let mut s = vec![
            keyed(24 * 1024, 7),
            keyed(24 * 1024, 7),
            keyed(24 * 1024, 7),
        ];
        assign_residency(&mut s, &t);
        assert!(s.iter().all(|x| x.level == CacheLevel::L1));
    }

    #[test]
    fn tiny_stream_among_big_ones_keeps_l1() {
        let t = TargetConfig::i7_8559u();
        // A 1 KB lookup table next to a 16 MB stream stays hot.
        let mut s = vec![keyed(1024, 0), keyed(16 * 1024 * 1024, 1)];
        assign_residency(&mut s, &t);
        assert_eq!(s[0].level, CacheLevel::L1);
        assert_eq!(s[1].level, CacheLevel::Memory);
    }

    #[test]
    fn level_index_roundtrip() {
        for l in [
            CacheLevel::L1,
            CacheLevel::L2,
            CacheLevel::L3,
            CacheLevel::Memory,
        ] {
            assert_eq!(CacheLevel::from_index(l.index()), l);
        }
    }
}
