//! Steady-state loop timing: the heart of the performance model.
//!
//! One *block* is a single iteration of the vectorized-and-interleaved loop
//! body: it processes `VF × IF` source elements. The model computes the
//! block initiation interval
//!
//! ```text
//! II = max(ResMII, FrontEndMII, RecMII, MemMII)
//! ```
//!
//! * `ResMII` — micro-ops per resource class divided by its ports,
//! * `FrontEndMII` — total uops over the issue width (degraded when the
//!   body overflows the uop cache),
//! * `RecMII` — loop-carried recurrence latency: each reduction
//!   accumulator advances once per block, so a block cannot start before
//!   the previous block's accumulator update retires. This is *the* term
//!   interleaving amortizes: bigger blocks move more elements per RecMII.
//! * `MemMII` — per-level bytes moved per block over per-level bandwidth,
//!   plus unhidden gather latency.
//!
//! On top of the steady state the model adds per-execution costs: pipeline
//! fill, runtime trip-count guards, scalar remainder iterations, horizontal
//! reduction tails and register-spill traffic.

use serde::{Deserialize, Serialize};

use crate::cache::{assign_residency, MemStream, StreamPattern};
use crate::target::{ResourceClass, TargetConfig};

/// A group of identical micro-ops within one block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UopBundle {
    /// Executing resource.
    pub class: ResourceClass,
    /// Micro-ops per block (fractional values model amortized helpers).
    pub count: f64,
    /// Result latency in cycles (used for critical-path fill and divider
    /// occupancy).
    pub latency: f64,
}

impl UopBundle {
    /// Creates a bundle.
    pub fn new(class: ResourceClass, count: f64, latency: f64) -> Self {
        UopBundle {
            class,
            count,
            latency,
        }
    }
}

/// A loop-carried recurrence (one per reduction).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Recurrence {
    /// Latency of the combining operation (e.g. 4 cycles for an FP add).
    pub op_latency: f64,
}

/// Everything the machine model needs to time one innermost loop under a
/// particular vectorization decision. Built by `nvc-vectorizer`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopShape {
    /// Whole vector blocks executed per innermost-loop execution.
    pub blocks: u64,
    /// Elements processed per block (`VF × IF`).
    pub elems_per_block: u64,
    /// Vector/scalar work per block.
    pub uops: Vec<UopBundle>,
    /// Loop-carried recurrences.
    pub recurrences: Vec<Recurrence>,
    /// Memory streams (residency is assigned inside the simulator).
    pub streams: Vec<MemStream>,
    /// Elements executed in the scalar remainder loop.
    pub remainder_elems: u64,
    /// Micro-ops of one scalar iteration (for the remainder).
    pub scalar_uops_per_iter: f64,
    /// Fixed per-execution uops: horizontal reduction tail, accumulator
    /// setup, final-value extraction.
    pub per_execution_overhead_uops: f64,
    /// Live vector registers in the steady state (accumulators + temps).
    pub live_vector_regs: u32,
    /// True when the trip count is unknown at compile time and the vector
    /// loop is guarded by runtime checks.
    pub runtime_trip_check: bool,
}

/// What limited the loop's throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// Execution-port pressure.
    Ports,
    /// Instruction issue (front end / uop-cache overflow).
    FrontEnd,
    /// Loop-carried recurrence latency.
    Recurrence,
    /// Cache or memory bandwidth / gather latency.
    Memory,
    /// Dominated by remainder/overhead (tiny trip counts).
    Overhead,
}

/// Timing result for one innermost-loop execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoopTiming {
    /// Total cycles per innermost-loop execution.
    pub cycles: f64,
    /// Steady-state initiation interval per block.
    pub ii: f64,
    /// Cycles spent in the scalar remainder.
    pub remainder_cycles: f64,
    /// Fixed per-execution cycles (fill, checks, tails, spill refills).
    pub overhead_cycles: f64,
    /// Dominant limiter.
    pub bottleneck: Bottleneck,
}

/// Times one innermost-loop execution on `target`.
///
/// Residency is assigned to the shape's memory streams internally; the
/// input is not mutated.
pub fn simulate_loop(shape: &LoopShape, target: &TargetConfig) -> LoopTiming {
    let mut streams = shape.streams.clone();
    assign_residency(&mut streams, target);

    // ---- Register spills -------------------------------------------------
    // Live registers beyond the architectural file spill; the traffic is
    // store-forwarded in L1, so the cost is front-end/port throughput only
    // (about one reload-store pair per excess register per block, half of
    // which the allocator hides by rematerialization).
    let excess_regs = shape
        .live_vector_regs
        .saturating_sub(target.num_vector_regs) as f64;
    let mut uops = shape.uops.clone();
    if excess_regs > 0.0 {
        uops.push(UopBundle::new(ResourceClass::VLoad, excess_regs * 0.5, 4.0));
        uops.push(UopBundle::new(
            ResourceClass::VStore,
            excess_regs * 0.5,
            1.0,
        ));
    }

    // ---- ResMII ----------------------------------------------------------
    let mut res_mii = 0.0f64;
    for class in ResourceClass::ALL {
        let mut demand = 0.0;
        for u in &uops {
            if u.class == class {
                // Divides are barely pipelined: occupancy ≈ latency / 2.
                let occupancy = if class == ResourceClass::VDiv {
                    u.count * (u.latency / 2.0).max(1.0)
                } else {
                    u.count
                };
                demand += occupancy;
            }
        }
        res_mii = res_mii.max(demand / target.ports.get(class));
    }

    // ---- Front end -------------------------------------------------------
    let total_uops: f64 = uops.iter().map(|u| u.count).sum();
    let mut issue = target.issue_width;
    if total_uops > target.uop_cache {
        // Body no longer fits the uop cache: legacy decode feeds the core.
        issue *= 0.75;
        if total_uops > 3.0 * target.uop_cache {
            issue *= 0.8;
        }
    }
    let fe_mii = total_uops / issue;

    // ---- RecMII ----------------------------------------------------------
    let rec_mii = shape
        .recurrences
        .iter()
        .map(|r| r.op_latency)
        .fold(0.0, f64::max);

    // ---- Memory ----------------------------------------------------------
    let mut mem_mii = 0.0f64;
    let mut gather_latency = 0.0f64;
    for s in &streams {
        let spec = target.memory[s.level.index()];
        mem_mii += s.bytes_per_block / spec.bytes_per_cycle;
        if matches!(s.pattern, StreamPattern::Gather) {
            // Gathers expose a fraction of the access latency per block: the
            // prefetcher cannot follow data-dependent addresses. Several
            // gather lanes overlap in the OoO window (≈8 in flight).
            gather_latency += spec.latency * (s.gather_lanes_per_block / 8.0).max(1.0) * 0.25;
        }
    }
    mem_mii += gather_latency;

    let ii = res_mii.max(fe_mii).max(rec_mii).max(mem_mii).max(0.25);

    // ---- Per-execution costs ----------------------------------------------
    // Pipeline fill: a fraction of the body's critical path. Out-of-order
    // execution overlaps the drain of one innermost-loop execution with
    // the fill of the next, so only part of the path is exposed per entry.
    let crit_path: f64 = uops
        .iter()
        .map(|u| u.latency)
        .fold(0.0, f64::max)
        .max(rec_mii);
    let mut overhead = crit_path * 0.25 + 4.0;
    overhead += shape.per_execution_overhead_uops / target.issue_width;
    if shape.runtime_trip_check {
        // Trip-count guard + pointer checks before entering the vector body.
        overhead += 8.0;
    }

    let remainder_cycles =
        shape.remainder_elems as f64 * (shape.scalar_uops_per_iter / target.issue_width).max(1.0);

    let steady = ii * shape.blocks as f64;
    let cycles = steady + remainder_cycles + overhead;

    // ---- Bottleneck classification ----------------------------------------
    let bottleneck = if steady < remainder_cycles + overhead {
        Bottleneck::Overhead
    } else if ii == mem_mii {
        Bottleneck::Memory
    } else if ii == rec_mii {
        Bottleneck::Recurrence
    } else if ii == fe_mii {
        Bottleneck::FrontEnd
    } else {
        Bottleneck::Ports
    };

    LoopTiming {
        cycles,
        ii,
        remainder_cycles,
        overhead_cycles: overhead,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::StreamPattern;

    fn target() -> TargetConfig {
        TargetConfig::i7_8559u()
    }

    fn basic_shape() -> LoopShape {
        LoopShape {
            blocks: 128,
            elems_per_block: 8,
            uops: vec![
                UopBundle::new(ResourceClass::VLoad, 1.0, 4.0),
                UopBundle::new(ResourceClass::VAlu, 1.0, 1.0),
                UopBundle::new(ResourceClass::VStore, 1.0, 1.0),
                UopBundle::new(ResourceClass::Scalar, 2.0, 1.0),
            ],
            recurrences: vec![],
            streams: vec![
                MemStream::new(32.0, 4096, StreamPattern::Contiguous, false),
                MemStream::new(32.0, 4096, StreamPattern::Contiguous, true),
            ],
            remainder_elems: 0,
            scalar_uops_per_iter: 5.0,
            per_execution_overhead_uops: 2.0,
            live_vector_regs: 4,
            runtime_trip_check: false,
        }
    }

    #[test]
    fn ii_respects_port_limits() {
        let t = target();
        let mut s = basic_shape();
        // 6 VAlu uops over 2 ports → ResMII ≥ 3.
        s.uops = vec![UopBundle::new(ResourceClass::VAlu, 6.0, 1.0)];
        let timing = simulate_loop(&s, &t);
        assert!(timing.ii >= 3.0 - 1e-9);
    }

    #[test]
    fn recurrence_bounds_ii() {
        let t = target();
        let mut s = basic_shape();
        s.recurrences = vec![Recurrence { op_latency: 4.0 }];
        s.uops = vec![UopBundle::new(ResourceClass::VAlu, 1.0, 4.0)];
        let timing = simulate_loop(&s, &t);
        assert!(timing.ii >= 4.0 - 1e-9);
        assert_eq!(timing.bottleneck, Bottleneck::Recurrence);
    }

    #[test]
    fn bigger_blocks_amortize_recurrence() {
        // Same total elements; one config interleaves ×4. The interleaved
        // version must be faster because RecMII stalls per *block*.
        let t = target();
        let mut narrow = basic_shape();
        narrow.recurrences = vec![Recurrence { op_latency: 4.0 }];
        narrow.blocks = 512;
        narrow.elems_per_block = 8;

        let mut wide = narrow.clone();
        wide.blocks = 128;
        wide.elems_per_block = 32;
        // ×4 work per block.
        for u in &mut wide.uops {
            u.count *= 4.0;
        }
        for s in &mut wide.streams {
            s.bytes_per_block *= 4.0;
        }
        let tn = simulate_loop(&narrow, &t);
        let tw = simulate_loop(&wide, &t);
        assert!(
            tw.cycles < tn.cycles * 0.5,
            "interleaving should amortize the chain: wide={} narrow={}",
            tw.cycles,
            tn.cycles
        );
    }

    #[test]
    fn memory_bound_when_streaming_from_dram() {
        let t = target();
        let mut s = basic_shape();
        s.streams = vec![MemStream::new(
            256.0,
            64 * 1024 * 1024,
            StreamPattern::Contiguous,
            false,
        )];
        let timing = simulate_loop(&s, &t);
        assert_eq!(timing.bottleneck, Bottleneck::Memory);
        // 256 bytes over 7 B/cy ≈ 36.6 cycles per block.
        assert!(timing.ii > 30.0);
    }

    #[test]
    fn l1_streams_are_cheap() {
        let t = target();
        let s = basic_shape();
        let timing = simulate_loop(&s, &t);
        // 64 bytes per block over 64 B/cy = 1 cycle; ports allow ~1.5.
        assert!(timing.ii < 3.0);
    }

    #[test]
    fn gathers_add_latency() {
        let t = target();
        let mut with_gather = basic_shape();
        let mut g = MemStream::new(64.0, 4096, StreamPattern::Gather, false);
        g.gather_lanes_per_block = 8.0;
        with_gather.streams.push(g);
        let without = simulate_loop(&basic_shape(), &t);
        let with = simulate_loop(&with_gather, &t);
        assert!(with.ii > without.ii);
    }

    #[test]
    fn register_spills_penalize_throughput() {
        let t = target();
        let mut s = basic_shape();
        s.live_vector_regs = 48; // 32 over the 16-register file
        let spilled = simulate_loop(&s, &t);
        let mut ok = basic_shape();
        ok.live_vector_regs = 8;
        let clean = simulate_loop(&ok, &t);
        assert!(spilled.cycles > clean.cycles);
    }

    #[test]
    fn uop_cache_overflow_slows_issue() {
        let t = target();
        // Spread uops across classes so the front end (not a single port)
        // is the binding resource.
        let spread = |n: f64| {
            vec![
                UopBundle::new(ResourceClass::VAlu, n / 4.0, 1.0),
                UopBundle::new(ResourceClass::VMul, n / 4.0, 4.0),
                UopBundle::new(ResourceClass::VLoad, n / 4.0, 4.0),
                UopBundle::new(ResourceClass::Scalar, n / 4.0, 1.0),
            ]
        };
        let mut s = basic_shape();
        s.streams.clear();
        s.uops = spread(400.0);
        let fits = simulate_loop(&s, &t);
        s.uops = spread(4000.0);
        let overflow = simulate_loop(&s, &t);
        // 10× the uops must cost *more* than 10× the II once the body
        // overflows the uop cache.
        assert!(overflow.ii > fits.ii * 10.0 * 1.05);
    }

    #[test]
    fn remainder_dominates_tiny_trips() {
        let t = target();
        let mut s = basic_shape();
        s.blocks = 0;
        s.remainder_elems = 7;
        let timing = simulate_loop(&s, &t);
        assert_eq!(timing.bottleneck, Bottleneck::Overhead);
        assert!(timing.remainder_cycles > 0.0);
    }

    #[test]
    fn runtime_checks_cost_fixed_cycles() {
        let t = target();
        let mut s = basic_shape();
        let without = simulate_loop(&s, &t);
        s.runtime_trip_check = true;
        let with = simulate_loop(&s, &t);
        assert!((with.cycles - without.cycles - 8.0).abs() < 1e-9);
    }

    #[test]
    fn divider_occupancy_is_heavy() {
        let t = target();
        let mut s = basic_shape();
        s.uops.push(UopBundle::new(ResourceClass::VDiv, 2.0, 14.0));
        let timing = simulate_loop(&s, &t);
        // 2 divides × 7 occupancy on one port.
        assert!(timing.ii >= 14.0 - 1e-9);
    }

    #[test]
    fn cycles_scale_linearly_with_blocks() {
        let t = target();
        let mut s = basic_shape();
        s.blocks = 100;
        let a = simulate_loop(&s, &t);
        s.blocks = 200;
        let b = simulate_loop(&s, &t);
        let delta = b.cycles - a.cycles;
        assert!((delta - 100.0 * a.ii).abs() < 1e-6);
    }
}
