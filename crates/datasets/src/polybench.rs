//! Six PolyBench-style kernels (Figure 8).
//!
//! "PolyBench includes benchmarks that perform matrix operations,
//! decomposition, and linear algebra for which Polly is optimized to run
//! on" (§4.1). The selection below mirrors that mix: three dense
//! matrix-matrix kernels where tiling/interchange shine (gemm, 2mm, syrk),
//! two matrix-vector kernels (atax, mvt) and one stencil (jacobi-2d) where
//! they do little — reproducing the paper's observation that deep RL wins
//! on three of the six while Polly wins on the large-iteration-count
//! kernels.

use nvc_ir::ParamEnv;

use crate::Kernel;

/// The six PolyBench-style kernels.
pub fn polybench() -> Vec<Kernel> {
    vec![
        Kernel::new(
            "poly_gemm",
            "polybench",
            "float GA[256][256]; float GB[256][256]; float GC[256][256];
void kernel(float alpha) {
    for (int i = 0; i < 256; i++) {
        for (int j = 0; j < 256; j++) {
            for (int k = 0; k < 256; k++) {
                GC[i][j] += alpha * GA[i][k] * GB[k][j];
            }
        }
    }
}",
            ParamEnv::new().with("alpha", 2),
        ),
        Kernel::new(
            "poly_2mm",
            "polybench",
            "float MA[256][256]; float MB[256][256]; float MD[256][256];
float MC[256][256]; float ME[256][256];
void kernel() {
    for (int i = 0; i < 256; i++) {
        for (int j = 0; j < 256; j++) {
            for (int k = 0; k < 256; k++) {
                MD[i][j] += MA[i][k] * MB[k][j];
            }
        }
    }
    for (int i = 0; i < 256; i++) {
        for (int j = 0; j < 256; j++) {
            for (int k = 0; k < 256; k++) {
                ME[i][j] += MD[i][k] * MC[k][j];
            }
        }
    }
}",
            ParamEnv::new(),
        ),
        Kernel::new(
            "poly_syrk",
            "polybench",
            "float SA[256][256]; float SC[256][256];
void kernel(float alpha) {
    for (int i = 0; i < 256; i++) {
        for (int j = 0; j < 256; j++) {
            for (int k = 0; k < 256; k++) {
                SC[i][j] += alpha * SA[i][k] * SA[j][k];
            }
        }
    }
}",
            ParamEnv::new().with("alpha", 1),
        ),
        Kernel::new(
            "poly_atax",
            "polybench",
            "float AA[384][384]; float ax[384]; float atmp[384]; float ay[384];
void kernel() {
    for (int i = 0; i < 384; i++) {
        float t = 0.0;
        for (int j = 0; j < 384; j++) {
            t += AA[i][j] * ax[j];
        }
        atmp[i] = t;
    }
    for (int i = 0; i < 384; i++) {
        for (int j = 0; j < 384; j++) {
            ay[j] += AA[i][j] * atmp[i];
        }
    }
}",
            ParamEnv::new(),
        ),
        Kernel::new(
            "poly_mvt",
            "polybench",
            "float VA[384][384]; float vx1[384]; float vx2[384]; float vy1[384]; float vy2[384];
void kernel() {
    for (int i = 0; i < 384; i++) {
        float t = 0.0;
        for (int j = 0; j < 384; j++) {
            t += VA[i][j] * vy1[j];
        }
        vx1[i] += t;
    }
    for (int i = 0; i < 384; i++) {
        for (int j = 0; j < 384; j++) {
            vx2[j] += VA[j][i] * vy2[i];
        }
    }
}",
            ParamEnv::new(),
        ),
        Kernel::new(
            "poly_jacobi2d",
            "polybench",
            "float JA[512][512]; float JB[512][512];
void kernel() {
    for (int i = 1; i < 511; i++) {
        for (int j = 1; j < 511; j++) {
            JB[i][j] = 0.2 * (JA[i][j] + JA[i][j-1] + JA[i][j+1] + JA[i+1][j] + JA[i-1][j]);
        }
    }
}",
            ParamEnv::new(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_frontend::parse_translation_unit;
    use nvc_ir::lower_innermost_loops;

    #[test]
    fn six_kernels_lower() {
        let ks = polybench();
        assert_eq!(ks.len(), 6);
        for k in &ks {
            let tu = parse_translation_unit(&k.source).unwrap();
            let loops = lower_innermost_loops(&tu, &k.source, &k.env).unwrap();
            assert!(!loops.is_empty(), "{}", k.name);
        }
    }

    #[test]
    fn gemm_inner_loop_is_reduction_with_strided_b() {
        let ks = polybench();
        let gemm = &ks[0];
        let tu = parse_translation_unit(&gemm.source).unwrap();
        let loops = lower_innermost_loops(&tu, &gemm.source, &gemm.env).unwrap();
        let ir = &loops[0].ir;
        assert_eq!(ir.reductions.len(), 1);
        assert!(ir
            .accesses
            .iter()
            .any(|a| a.kind == nvc_ir::AccessKind::Strided(256)));
        assert_eq!(ir.total_iterations(), 256 * 256 * 256);
    }

    #[test]
    fn footprints_exceed_l2() {
        // The Figure-8 story requires memory pressure: each matrix is
        // 256 KB+, so the combined working set must spill past L2.
        let ks = polybench();
        let gemm = &ks[0];
        let tu = parse_translation_unit(&gemm.source).unwrap();
        let total: u64 = tu.globals().map(|g| g.size_bytes() as u64).sum();
        assert!(total > 512 * 1024, "gemm working set too small: {total}");
    }

    #[test]
    fn polly_transforms_apply_to_gemm_but_not_jacobi() {
        // Cross-crate sanity: handled fully in the core pipeline tests;
        // here we just pin the structural preconditions. gemm: perfect
        // 0-based nest with divisible bounds. jacobi: starts at 1 → not
        // tileable by our conservative pass.
        let ks = polybench();
        assert!(ks[0].source.contains("for (int k = 0"));
        assert!(ks[5].source.contains("for (int i = 1"));
    }
}
