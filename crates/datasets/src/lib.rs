//! Benchmark kernels and the synthetic training dataset.
//!
//! §3.2 of the paper: "we built a dataset that includes loops only. We
//! built generators that generate more than 10,000 synthetic loop examples
//! automatically from the LLVM vectorization test-suite … some new tests
//! are made by changing the names of the parameters … the stride, the
//! number of iterations, the functionality, the instructions, and the
//! number of nested loops."
//!
//! * [`generator`] — the seeded loop generator: 16 kernel families
//!   randomized along exactly those axes, able to emit well over 10,000
//!   distinct compilable kernels;
//! * [`suite`] — a fixed per-family selection standing in for the LLVM
//!   vectorizer test suite (Figure 2);
//! * [`eval`] — the 12 held-out evaluation benchmarks of Figure 7,
//!   covering the feature list in §4 (predicates, strided accesses,
//!   bitwise operations, unknown loop bounds, if statements, unknown
//!   misalignment, multidimensional arrays, summation reduction, type
//!   conversions, different data types);
//! * [`polybench`] — six PolyBench-style linear-algebra/stencil kernels
//!   (Figure 8);
//! * [`mibench`] — six MiBench-style programs where loops are a minor
//!   fraction of the runtime (Figure 9).

pub mod eval;
pub mod generator;
pub mod mibench;
pub mod polybench;
pub mod suite;

use serde::{Deserialize, Serialize};

use nvc_ir::ParamEnv;

/// One benchmark program: source text plus the runtime bindings needed to
/// execute it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Unique name.
    pub name: String,
    /// C source text (parses with `nvc-frontend`).
    pub source: String,
    /// Runtime parameter values and array sizes.
    pub env: ParamEnv,
    /// Abstract non-loop instructions executed per invocation (models the
    /// scalar-dominated parts of MiBench programs; 0 for pure loop
    /// kernels).
    pub scalar_work: u64,
    /// Generator family or suite this kernel belongs to.
    pub family: String,
}

impl Kernel {
    /// Creates a pure-loop kernel.
    pub fn new(
        name: impl Into<String>,
        family: impl Into<String>,
        source: impl Into<String>,
        env: ParamEnv,
    ) -> Self {
        Kernel {
            name: name.into(),
            source: source.into(),
            env,
            scalar_work: 0,
            family: family.into(),
        }
    }

    /// Adds scalar (non-loop) work to the kernel.
    pub fn with_scalar_work(mut self, instrs: u64) -> Self {
        self.scalar_work = instrs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_frontend::parse_translation_unit;
    use nvc_ir::lower_innermost_loops;

    /// Every kernel from every source must parse and lower.
    #[test]
    fn all_fixed_kernels_parse_and_lower() {
        let mut all = Vec::new();
        all.extend(suite::llvm_suite());
        all.extend(eval::eval_benchmarks());
        all.extend(polybench::polybench());
        all.extend(mibench::mibench());
        assert!(all.len() >= 12 + 6 + 6);
        for k in &all {
            let tu = parse_translation_unit(&k.source)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}\n{}", k.name, k.source));
            let loops = lower_innermost_loops(&tu, &k.source, &k.env)
                .unwrap_or_else(|e| panic!("{} does not lower: {e}", k.name));
            assert!(!loops.is_empty(), "{} has no loops", k.name);
        }
    }

    #[test]
    fn generator_reaches_paper_scale() {
        // >10,000 synthetic examples (§3.2). Generating all of them here
        // would slow the test suite; generate a slice and extrapolate by
        // uniqueness rate.
        let kernels = generator::generate(42, 600);
        assert_eq!(kernels.len(), 600);
        let unique: std::collections::HashSet<&str> =
            kernels.iter().map(|k| k.source.as_str()).collect();
        assert!(
            unique.len() > 540,
            "only {} unique of 600 — not enough diversity to reach 10k",
            unique.len()
        );
    }

    #[test]
    fn generated_kernels_parse_and_lower() {
        for k in generator::generate(7, 300) {
            let tu = parse_translation_unit(&k.source)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}\n{}", k.name, k.source));
            let loops = lower_innermost_loops(&tu, &k.source, &k.env)
                .unwrap_or_else(|e| panic!("{} does not lower: {e}", k.name));
            assert!(!loops.is_empty(), "{} has no loops:\n{}", k.name, k.source);
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = generator::generate(123, 50);
        let b = generator::generate(123, 50);
        assert_eq!(a, b);
        let c = generator::generate(124, 50);
        assert_ne!(a, c);
    }
}
