//! Six MiBench-style programs (Figure 9).
//!
//! "MiBench is a set of free and commercially representative embedded
//! benchmarks … where the loops constitute a minor portion of the code"
//! (§4.1). The paper reports an average end-to-end improvement of only
//! 1.1× precisely because most of the runtime is scalar; several MiBench
//! programs cannot be vectorized at all ("due to memory dependencies,
//! control-flow or lack of loops").
//!
//! Each program below pairs a small loop kernel (some vectorizable, some
//! not) with a large `scalar_work` budget modelling the surrounding
//! program.

use nvc_ir::ParamEnv;

use crate::Kernel;

/// The six MiBench-style programs.
pub fn mibench() -> Vec<Kernel> {
    vec![
        // telecomm/FFT: vectorizable float twiddle loop, moderate loop share.
        Kernel::new(
            "mi_telecomm_fft",
            "mibench",
            "float fre[2048]; float fim[2048]; float ftw[4096];
void kernel(int n) {
    for (int i = 0; i < n; i++) {
        float tr = fre[i] * ftw[2*i] - fim[i] * ftw[2*i+1];
        float ti = fre[i] * ftw[2*i+1] + fim[i] * ftw[2*i];
        fre[i] = tr;
        fim[i] = ti;
    }
}",
            ParamEnv::new().with("n", 2048),
        )
        .with_scalar_work(14_000),
        // security/SHA: message-schedule loop with a short loop-carried
        // distance (VF capped at 2 by dependence analysis).
        Kernel::new(
            "mi_security_sha",
            "mibench",
            "unsigned int wsched[4096];
void kernel(int n) {
    for (int i = 16; i < n; i++) {
        wsched[i] = (wsched[i-3] ^ wsched[i-8] ^ wsched[i-14] ^ wsched[i-16]) << 1;
    }
}",
            ParamEnv::new().with("n", 4096),
        )
        .with_scalar_work(22_000),
        // automotive/susan: if-guarded pixel threshold. The baseline cost
        // model refuses masked stores, so this loop stays scalar under
        // -O3 while a pragma unlocks it — the kind of headroom Figure 9's
        // RL bars come from.
        Kernel::new(
            "mi_auto_susan",
            "mibench",
            "unsigned char img[16384]; unsigned char bright[16384];
void kernel(int n, int t) {
    for (int i = 0; i < n; i++) {
        if (img[i] > t) {
            bright[i] = 255;
        }
    }
}",
            ParamEnv::new().with("n", 16384).with("t", 100),
        )
        .with_scalar_work(110_000),
        // office/stringsearch: early-exit search loop — not vectorizable.
        Kernel::new(
            "mi_office_search",
            "mibench",
            "int text_buf[8192];
int kernel(int n, int key) {
    int pos = 0;
    for (int i = 0; i < n; i++) {
        if (text_buf[i] == key) {
            pos = i;
            break;
        }
    }
    return pos;
}",
            ParamEnv::new().with("n", 8192).with("key", 7),
        )
        .with_scalar_work(18_000),
        // network/CRC32: serial recurrence through the crc accumulator —
        // not vectorizable, exactly like the real benchmark.
        Kernel::new(
            "mi_network_crc",
            "mibench",
            "unsigned int crc_tab[256]; unsigned char msg[8192]; unsigned int crc_acc;
void kernel(int n) {
    for (int i = 0; i < n; i++) {
        crc_acc = crc_tab[(crc_acc ^ msg[i]) & 255] ^ (crc_acc >> 8);
    }
}",
            ParamEnv::new().with("n", 8192),
        )
        .with_scalar_work(12_000),
        // consumer/jpeg-ish colour conversion: cleanly vectorizable int math.
        Kernel::new(
            "mi_consumer_rgb2y",
            "mibench",
            "unsigned char rch[8192]; unsigned char gch[8192]; unsigned char bch[8192]; unsigned char ych[8192];
void kernel(int n) {
    for (int i = 0; i < n; i++) {
        int y = 77 * rch[i] + 150 * gch[i] + 29 * bch[i];
        ych[i] = (unsigned char) (y >> 8);
    }
}",
            ParamEnv::new().with("n", 8192),
        )
        .with_scalar_work(26_000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_frontend::parse_translation_unit;
    use nvc_ir::lower_innermost_loops;

    #[test]
    fn six_programs_with_scalar_work() {
        let ks = mibench();
        assert_eq!(ks.len(), 6);
        for k in &ks {
            assert!(k.scalar_work > 0, "{} must model scalar code", k.name);
        }
    }

    #[test]
    fn vectorizability_mix_matches_the_paper() {
        // Some programs vectorize, some cannot — that mix is the point of
        // Figure 9.
        let ks = mibench();
        let mut vectorizable = 0;
        let mut blocked = 0;
        for k in &ks {
            let tu = parse_translation_unit(&k.source).unwrap();
            let loops = lower_innermost_loops(&tu, &k.source, &k.env).unwrap();
            let ir = &loops[0].ir;
            if ir.not_vectorizable || nvc_ir::legal_max_vf(ir) == 1 {
                blocked += 1;
            } else {
                vectorizable += 1;
            }
        }
        assert!(
            vectorizable >= 3,
            "want ≥3 vectorizable, got {vectorizable}"
        );
        assert!(blocked >= 2, "want ≥2 blocked, got {blocked}");
    }

    #[test]
    fn sha_dependence_caps_vf() {
        let ks = mibench();
        let sha = ks.iter().find(|k| k.name.contains("sha")).unwrap();
        let tu = parse_translation_unit(&sha.source).unwrap();
        let loops = lower_innermost_loops(&tu, &sha.source, &sha.env).unwrap();
        let vf = nvc_ir::legal_max_vf(&loops[0].ir);
        assert_eq!(vf, 2, "w[i-3] flow dependence must cap VF at 2");
    }

    #[test]
    fn crc_recurrence_blocks_vectorization() {
        let ks = mibench();
        let crc = ks.iter().find(|k| k.name.contains("crc")).unwrap();
        let tu = parse_translation_unit(&crc.source).unwrap();
        let loops = lower_innermost_loops(&tu, &crc.source, &crc.env).unwrap();
        assert!(loops[0].ir.not_vectorizable);
    }
}
