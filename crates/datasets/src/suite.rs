//! A fixed stand-in for the LLVM vectorizer test suite (§2.1, Figure 2).
//!
//! The paper brute-forces every VF/IF over the test suite shipped with
//! LLVM (`SingleSource/UnitTests/Vectorizer`) and finds the optimum beats
//! the baseline cost model on every test, by up to ~1.5×. We reproduce the
//! suite as one deterministic kernel per generator family — the same
//! construction §3.2 uses for the training set ("generate … examples
//! automatically from the LLVM vectorization test-suite").

use crate::generator;
use crate::Kernel;

/// A fixed seed chosen once; the suite must never change across runs.
const SUITE_SEED: u64 = 0xF1_6002;

/// The fixed 16-kernel suite, one kernel per family, deterministic.
pub fn llvm_suite() -> Vec<Kernel> {
    let mut kernels = generator::generate(SUITE_SEED, 16);
    for k in &mut kernels {
        k.name = format!("suite_{}", k.family);
    }
    kernels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_stable() {
        let a = llvm_suite();
        let b = llvm_suite();
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn suite_covers_every_family() {
        let names: Vec<String> = llvm_suite().iter().map(|k| k.family.clone()).collect();
        for fam in generator::family_names() {
            assert!(names.iter().any(|n| n == fam), "missing family {fam}");
        }
    }
}
