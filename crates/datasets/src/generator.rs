//! The synthetic loop generator (§3.2).
//!
//! Sixteen kernel families, each randomized along the paper's axes:
//! parameter names, strides, iteration counts, functionality, instruction
//! mix, data types and nesting depth. With ~10⁴ parameter combinations per
//! family, the generator comfortably exceeds the paper's ">10,000
//! synthetic loop examples".

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use nvc_ir::ParamEnv;

use crate::Kernel;

const ARRAY_NAMES: &[&str] = &[
    "a", "b", "c", "d", "src", "dst", "buf", "vecx", "vecy", "data", "in0", "out0", "tmp", "acc_v",
];
const IV_NAMES: &[&str] = &["i", "j", "k", "idx", "t"];
const SCALAR_NAMES: &[&str] = &["s", "total", "accum", "m", "best", "r"];
const TYPES: &[(&str, u32)] = &[
    ("char", 1),
    ("short", 2),
    ("int", 4),
    ("long", 8),
    ("float", 4),
    ("double", 8),
];

/// Deterministically generates `count` kernels from `seed`.
pub fn generate(seed: u64, count: usize) -> Vec<Kernel> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count).map(|i| generate_one(&mut rng, i)).collect()
}

/// Generates a single kernel from the family cycle.
pub fn generate_one(rng: &mut ChaCha8Rng, index: usize) -> Kernel {
    let mut g = Gen::new(rng);
    let fam = index % FAMILIES.len();
    let (family, source, env) = FAMILIES[fam](&mut g);
    Kernel::new(format!("gen_{family}_{index}"), family, source, env)
}

/// Names of all generator families.
pub fn family_names() -> Vec<&'static str> {
    vec![
        "copy",
        "saxpy",
        "sum_reduce",
        "dot",
        "predicate_clip",
        "if_guard",
        "strided_complex",
        "conv_types",
        "bitwise",
        "minmax",
        "stencil3",
        "memset2d",
        "matmul",
        "gather_lut",
        "reverse",
        "unroll2",
    ]
}

type FamilyFn = fn(&mut Gen<'_>) -> (&'static str, String, ParamEnv);

const FAMILIES: &[FamilyFn] = &[
    gen_copy,
    gen_saxpy,
    gen_sum_reduce,
    gen_dot,
    gen_predicate_clip,
    gen_if_guard,
    gen_strided_complex,
    gen_conv_types,
    gen_bitwise,
    gen_minmax,
    gen_stencil3,
    gen_memset2d,
    gen_matmul,
    gen_gather_lut,
    gen_reverse,
    gen_unroll2,
];

struct Gen<'r> {
    rng: &'r mut ChaCha8Rng,
    arrays: Vec<&'static str>,
    ivs: Vec<&'static str>,
    scalars: Vec<&'static str>,
}

impl<'r> Gen<'r> {
    fn new(rng: &'r mut ChaCha8Rng) -> Self {
        let mut arrays: Vec<&'static str> = ARRAY_NAMES.to_vec();
        let mut ivs: Vec<&'static str> = IV_NAMES.to_vec();
        let mut scalars: Vec<&'static str> = SCALAR_NAMES.to_vec();
        arrays.shuffle(rng);
        ivs.shuffle(rng);
        scalars.shuffle(rng);
        Gen {
            rng,
            arrays,
            ivs,
            scalars,
        }
    }

    fn array(&mut self) -> &'static str {
        self.arrays.pop().expect("array name pool exhausted")
    }

    fn iv(&mut self) -> &'static str {
        self.ivs.pop().expect("iv name pool exhausted")
    }

    fn scalar(&mut self) -> &'static str {
        self.scalars.pop().expect("scalar name pool exhausted")
    }

    /// Random trip count: mixes powers of two, odd sizes, and small/large.
    fn trip(&mut self) -> i64 {
        *[64, 100, 128, 256, 500, 512, 1000, 1024, 2000, 2048, 4096]
            .choose(self.rng)
            .expect("non-empty")
    }

    fn numeric_ty(&mut self) -> (&'static str, u32) {
        *TYPES.choose(self.rng).expect("non-empty")
    }

    fn float_ty(&mut self) -> (&'static str, u32) {
        *[("float", 4u32), ("double", 8u32)]
            .choose(self.rng)
            .expect("non-empty")
    }

    fn int_ty(&mut self) -> (&'static str, u32) {
        *[("char", 1u32), ("short", 2), ("int", 4), ("long", 8)]
            .choose(self.rng)
            .expect("non-empty")
    }

    /// Flip: compile-time constant bound vs runtime parameter.
    fn runtime_bound(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }

    fn maybe_align(&mut self) -> &'static str {
        if self.rng.gen_bool(0.5) {
            " __attribute__((aligned(64)))"
        } else {
            ""
        }
    }
}

/// Renders a kernel: globals + a function around a loop body.
fn kernel(
    globals: String,
    params: &str,
    body: String,
    bound_is_runtime: bool,
    n: i64,
) -> (String, ParamEnv) {
    let (sig, env) = if bound_is_runtime {
        let p = if params.is_empty() {
            "int n".to_string()
        } else {
            format!("int n, {params}")
        };
        (p, ParamEnv::new().with("n", n))
    } else {
        (params.to_string(), ParamEnv::new())
    };
    let src = format!("{globals}\nvoid kernel({sig}) {{\n{body}\n}}\n");
    (src, env)
}

fn bound_str(runtime: bool, n: i64) -> String {
    if runtime {
        "n".to_string()
    } else {
        n.to_string()
    }
}

fn gen_copy(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    let (ty, _) = if g.rng.gen_bool(0.5) {
        g.int_ty()
    } else {
        g.numeric_ty()
    };
    let (dst, src_a, iv) = (g.array(), g.array(), g.iv());
    let n = g.trip();
    let rt = g.runtime_bound();
    let b = bound_str(rt, n);
    let (al1, al2) = (g.maybe_align(), g.maybe_align());
    let scale = g.rng.gen_range(2..9);
    let globals = format!("{ty} {dst}[4096]{al1};\n{ty} {src_a}[4096]{al2};");
    let body = format!(
        "    for (int {iv} = 0; {iv} < {b}; {iv}++) {{ {dst}[{iv}] = {src_a}[{iv}] * {scale}; }}"
    );
    let (src, env) = kernel(globals, "", body, rt, n);
    ("copy", src, env)
}

fn gen_saxpy(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    let (ty, _) = g.float_ty();
    let (x, y, iv) = (g.array(), g.array(), g.iv());
    let n = g.trip();
    let rt = g.runtime_bound();
    let b = bound_str(rt, n);
    let globals = format!(
        "{ty} {x}[4096]{};\n{ty} {y}[4096]{};",
        g.maybe_align(),
        g.maybe_align()
    );
    let body = format!(
        "    for (int {iv} = 0; {iv} < {b}; {iv}++) {{ {y}[{iv}] = alpha * {x}[{iv}] + {y}[{iv}]; }}"
    );
    let params = format!("{ty} alpha");
    let (src, env) = kernel(globals, &params, body, rt, n);
    ("saxpy", src, env.with("alpha", 3))
}

fn gen_sum_reduce(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    let (ty, _) = g.numeric_ty();
    let (x, iv, s) = (g.array(), g.iv(), g.scalar());
    let n = g.trip();
    let rt = g.runtime_bound();
    let b = bound_str(rt, n);
    let globals = format!("{ty} {x}[4096]{};\n{ty} {s};", g.maybe_align());
    let body = format!("    for (int {iv} = 0; {iv} < {b}; {iv}++) {{ {s} += {x}[{iv}]; }}");
    let (src, env) = kernel(globals, "", body, rt, n);
    ("sum_reduce", src, env)
}

fn gen_dot(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    let (ty, _) = g.numeric_ty();
    let (x, y, iv, s) = (g.array(), g.array(), g.iv(), g.scalar());
    let n = g.trip();
    let rt = g.runtime_bound();
    let b = bound_str(rt, n);
    let globals = format!(
        "{ty} {x}[4096]{};\n{ty} {y}[4096]{};\n{ty} {s};",
        g.maybe_align(),
        g.maybe_align()
    );
    let body =
        format!("    for (int {iv} = 0; {iv} < {b}; {iv}++) {{ {s} += {x}[{iv}] * {y}[{iv}]; }}");
    let (src, env) = kernel(globals, "", body, rt, n);
    ("dot", src, env)
}

fn gen_predicate_clip(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    // Example #3 of the paper.
    let (x, y, iv) = (g.array(), g.array(), g.iv());
    let n = g.trip();
    let rt = g.runtime_bound();
    let b = bound_str(rt, n);
    let maxv = [127, 255, 1023].choose(g.rng).copied().expect("non-empty");
    let globals = format!("int {x}[8192];\nint {y}[8192];");
    let body = format!(
        "    for (int {iv} = 0; {iv} < {b}; {iv}++) {{ int v = {x}[{iv}]; {y}[{iv}] = (v > {maxv} ? {maxv} : 0); }}"
    );
    let (src, env) = kernel(globals, "", body, rt, n);
    ("predicate_clip", src, env)
}

fn gen_if_guard(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    let (ty, _) = g.float_ty();
    let (x, y, iv) = (g.array(), g.array(), g.iv());
    let n = g.trip();
    let rt = g.runtime_bound();
    let b = bound_str(rt, n);
    let globals = format!("{ty} {x}[4096];\n{ty} {y}[4096];");
    let body = format!(
        "    for (int {iv} = 0; {iv} < {b}; {iv}++) {{ if ({x}[{iv}] > 0.5) {{ {y}[{iv}] = {x}[{iv}] * 2.0; }} }}"
    );
    let (src, env) = kernel(globals, "", body, rt, n);
    ("if_guard", src, env)
}

fn gen_strided_complex(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    // Example #5 of the paper: complex multiply with stride-2 accesses.
    let (re, bb, cc, im) = (g.array(), g.array(), g.array(), g.array());
    let iv = g.iv();
    let n = g.trip().min(2000);
    let rt = g.runtime_bound();
    let b = if rt {
        "n/2-1".to_string()
    } else {
        format!("{}", n / 2 - 1)
    };
    let globals =
        format!("float {re}[4096];\nfloat {bb}[8192];\nfloat {cc}[8192];\nfloat {im}[4096];");
    let body = format!(
        "    for (int {iv} = 0; {iv} < {b}; {iv}++) {{\n        {re}[{iv}] = {bb}[2*{iv}+1] * {cc}[2*{iv}+1] - {bb}[2*{iv}] * {cc}[2*{iv}];\n        {im}[{iv}] = {bb}[2*{iv}] * {cc}[2*{iv}+1] + {bb}[2*{iv}+1] * {cc}[2*{iv}];\n    }}"
    );
    let (src, env) = kernel(globals, "", body, rt, n);
    ("strided_complex", src, env)
}

fn gen_conv_types(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    // Example #1 of the paper: narrow→wide conversion, manually unrolled by 2.
    let (dst, s1) = (g.array(), g.array());
    let iv = g.iv();
    let (from_ty, _) = *[("short", 2u32), ("char", 1)]
        .choose(g.rng)
        .expect("non-empty");
    let n = g.trip();
    let rt = g.runtime_bound();
    let b = if rt {
        "n-1".to_string()
    } else {
        format!("{}", n - 1)
    };
    let globals = format!("int {dst}[4096];\n{from_ty} {s1}[4096];");
    let body = format!(
        "    for (int {iv} = 0; {iv} < {b}; {iv} += 2) {{\n        {dst}[{iv}] = (int) {s1}[{iv}];\n        {dst}[{iv}+1] = (int) {s1}[{iv}+1];\n    }}"
    );
    let (src, env) = kernel(globals, "", body, rt, n);
    ("conv_types", src, env)
}

fn gen_bitwise(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    let (x, y, z, iv) = (g.array(), g.array(), g.array(), g.iv());
    let ity = ["int", "unsigned int", "long"]
        .choose(g.rng)
        .copied()
        .expect("non-empty");
    let n = g.trip();
    let rt = g.runtime_bound();
    let b = bound_str(rt, n);
    let sh = g.rng.gen_range(1..8);
    let mask = [0xff, 0x7f, 0xfff]
        .choose(g.rng)
        .copied()
        .expect("non-empty");
    let globals = format!("{ity} {x}[4096];\n{ity} {y}[4096];\n{ity} {z}[4096];");
    let body = format!(
        "    for (int {iv} = 0; {iv} < {b}; {iv}++) {{ {z}[{iv}] = (({x}[{iv}] >> {sh}) & {mask}) ^ {y}[{iv}]; }}"
    );
    let (src, env) = kernel(globals, "", body, rt, n);
    ("bitwise", src, env)
}

fn gen_minmax(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    let (x, iv, m) = (g.array(), g.iv(), g.scalar());
    let (ty, _) = g.float_ty();
    let n = g.trip();
    let rt = g.runtime_bound();
    let b = bound_str(rt, n);
    let globals = format!("{ty} {x}[4096];\n{ty} {m};");
    let body = if g.rng.gen_bool(0.5) {
        format!(
            "    for (int {iv} = 0; {iv} < {b}; {iv}++) {{ {m} = {x}[{iv}] > {m} ? {x}[{iv}] : {m}; }}"
        )
    } else {
        let f = if ty == "float" { "fminf" } else { "fmin" };
        format!("    for (int {iv} = 0; {iv} < {b}; {iv}++) {{ {m} = {f}({m}, {x}[{iv}]); }}")
    };
    let (src, env) = kernel(globals, "", body, rt, n);
    ("minmax", src, env)
}

fn gen_stencil3(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    let (x, y, iv) = (g.array(), g.array(), g.iv());
    let (ty, _) = g.float_ty();
    let n = g.trip();
    let rt = g.runtime_bound();
    let b = if rt {
        "n-1".to_string()
    } else {
        format!("{}", n - 1)
    };
    let globals = format!("{ty} {x}[4100];\n{ty} {y}[4100];");
    let body = format!(
        "    for (int {iv} = 1; {iv} < {b}; {iv}++) {{ {y}[{iv}] = ({x}[{iv}-1] + {x}[{iv}] + {x}[{iv}+1]) * 0.3333; }}"
    );
    let (src, env) = kernel(globals, "", body, rt, n);
    ("stencil3", src, env)
}

fn gen_memset2d(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    // Example #2 of the paper.
    let (grid, iv1, iv2) = (g.array(), g.iv(), g.iv());
    let (ty, _) = g.numeric_ty();
    let rows = *[32i64, 64, 128].choose(g.rng).expect("non-empty");
    let cols = *[64i64, 128, 256].choose(g.rng).expect("non-empty");
    let globals = format!("{ty} {grid}[{rows}][{cols}];");
    let body = format!(
        "    for (int {iv1} = 0; {iv1} < {rows}; {iv1}++) {{\n        for (int {iv2} = 0; {iv2} < {cols}; {iv2}++) {{ {grid}[{iv1}][{iv2}] = x; }}\n    }}"
    );
    let params = format!("{ty} x");
    let (src, env) = kernel(globals, &params, body, false, 0);
    ("memset2d", src, env.with("x", 1))
}

fn gen_matmul(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    // Example #4 of the paper.
    let (ma, mb, mc) = (g.array(), g.array(), g.array());
    let (i, j, k) = (g.iv(), g.iv(), g.iv());
    let dim = *[32i64, 64, 128, 256].choose(g.rng).expect("non-empty");
    let globals =
        format!("float {ma}[{dim}][{dim}];\nfloat {mb}[{dim}][{dim}];\nfloat {mc}[{dim}][{dim}];");
    let body = format!(
        "    for (int {i} = 0; {i} < {dim}; {i}++) {{\n        for (int {j} = 0; {j} < {dim}; {j}++) {{\n            float inner = 0.0;\n            for (int {k} = 0; {k} < {dim}; {k}++) {{ inner += alpha * {ma}[{i}][{k}] * {mb}[{k}][{j}]; }}\n            {mc}[{i}][{j}] = inner;\n        }}\n    }}"
    );
    let (src, env) = kernel(globals, "float alpha", body, false, 0);
    ("matmul", src, env.with("alpha", 2))
}

fn gen_gather_lut(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    let (lut, idx, out, iv) = (g.array(), g.array(), g.array(), g.iv());
    let n = g.trip();
    let rt = g.runtime_bound();
    let b = bound_str(rt, n);
    let globals = format!("int {lut}[65536];\nint {idx}[4096];\nint {out}[4096];");
    let body = format!(
        "    for (int {iv} = 0; {iv} < {b}; {iv}++) {{ {out}[{iv}] = {lut}[{idx}[{iv}] & 65535]; }}"
    );
    let (src, env) = kernel(globals, "", body, rt, n);
    ("gather_lut", src, env)
}

fn gen_reverse(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    let (x, y, iv) = (g.array(), g.array(), g.iv());
    let (ty, _) = g.numeric_ty();
    let n = g.trip();
    let globals = format!("{ty} {x}[4096];\n{ty} {y}[4096];");
    let body = format!(
        "    for (int {iv} = {m}; {iv} >= 0; {iv}--) {{ {y}[{iv}] = {x}[{iv}]; }}",
        m = n - 1
    );
    let (src, env) = kernel(globals, "", body, false, n);
    ("reverse", src, env)
}

fn gen_unroll2(g: &mut Gen<'_>) -> (&'static str, String, ParamEnv) {
    let (x, y, iv) = (g.array(), g.array(), g.iv());
    let (ty, _) = g.float_ty();
    let n = g.trip();
    let rt = g.runtime_bound();
    let b = if rt {
        "n-1".to_string()
    } else {
        format!("{}", n - 1)
    };
    let globals = format!("{ty} {x}[4096];\n{ty} {y}[4096];");
    let body = format!(
        "    for (int {iv} = 0; {iv} < {b}; {iv} += 2) {{\n        {y}[{iv}] = {x}[{iv}] * 0.5;\n        {y}[{iv}+1] = {x}[{iv}+1] * 0.5;\n    }}"
    );
    let (src, env) = kernel(globals, "", body, rt, n);
    ("unroll2", src, env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_produce_parseable_kernels() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for (fi, f) in FAMILIES.iter().enumerate() {
            for round in 0..8 {
                let mut g = Gen::new(&mut rng);
                let (family, src, _env) = f(&mut g);
                nvc_frontend::parse_translation_unit(&src).unwrap_or_else(|e| {
                    panic!("family {fi} ({family}) round {round} failed: {e}\n{src}")
                });
            }
        }
    }

    #[test]
    fn family_count_matches_names() {
        assert_eq!(FAMILIES.len(), family_names().len());
        assert_eq!(FAMILIES.len(), 16);
    }

    #[test]
    fn families_cycle_round_robin() {
        let ks = generate(5, 32);
        assert_eq!(ks[0].family, ks[16].family);
        assert_ne!(ks[0].family, ks[1].family);
    }

    #[test]
    fn runtime_bound_kernels_bind_n() {
        let ks = generate(11, 200);
        for k in &ks {
            if k.source.contains("int n,") || k.source.contains("(int n)") {
                assert!(k.env.value("n").is_some(), "{} missing n binding", k.name);
            }
        }
    }
}
