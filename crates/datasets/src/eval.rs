//! The 12 held-out evaluation benchmarks of Figure 7.
//!
//! §4: "we take twelve completely different benchmarks from the test set
//! … These benchmarks include loops with different functionality and
//! access patterns. For example, predicates, strided accesses, bitwise
//! operations, unknown loop bounds, if statements, unknown misalignment,
//! multidimensional arrays, summation reduction, type conversions,
//! different data types, etc."
//!
//! Each kernel below exercises one of those features explicitly.

use nvc_ir::ParamEnv;

use crate::Kernel;

/// The 12 evaluation benchmarks, in the order plotted in Figure 7.
pub fn eval_benchmarks() -> Vec<Kernel> {
    vec![
        // #1 — predicates via ternary (paper dataset example #3).
        Kernel::new(
            "bench01_predicates",
            "eval",
            "int pa[8192]; int pb[8192];
void kernel(int n) {
    for (int i = 0; i < n*2; i++) {
        int v = pa[i];
        pb[i] = (v > 255 ? 255 : 0);
    }
}",
            ParamEnv::new().with("n", 2048),
        ),
        // #2 — strided accesses (paper dataset example #5).
        Kernel::new(
            "bench02_strided",
            "eval",
            "float sre[2048]; float sb[4096]; float sc[4096]; float sim[2048];
void kernel(int n) {
    for (int i = 0; i < n/2-1; i++) {
        sre[i] = sb[2*i+1] * sc[2*i+1] - sb[2*i] * sc[2*i];
        sim[i] = sb[2*i] * sc[2*i+1] + sb[2*i+1] * sc[2*i];
    }
}",
            ParamEnv::new().with("n", 2048),
        ),
        // #3 — bitwise operations.
        Kernel::new(
            "bench03_bitwise",
            "eval",
            "unsigned int wa[4096]; unsigned int wb[4096]; unsigned int wc[4096];
void kernel(int n) {
    for (int i = 0; i < n; i++) {
        wc[i] = ((wa[i] >> 3) & 255) ^ (wb[i] << 2);
    }
}",
            ParamEnv::new().with("n", 4096),
        ),
        // #4 — unknown loop bounds + pointer params (unknown misalignment).
        Kernel::new(
            "bench04_unknown_bounds",
            "eval",
            "void kernel(float *dst, float *src, int n) {
    for (int i = 0; i < n; i++) {
        dst[i] = src[i] * 1.5 + 2.0;
    }
}",
            ParamEnv::new()
                .with("n", 3000)
                .with_array_len("dst", 4096)
                .with_array_len("src", 4096),
        ),
        // #5 — if statements guarding stores.
        Kernel::new(
            "bench05_if_stores",
            "eval",
            "float fa[4096]; float fb[4096];
void kernel(int n) {
    for (int i = 0; i < n; i++) {
        if (fb[i] > 0.0) {
            fa[i] = fb[i] * fb[i];
        }
    }
}",
            ParamEnv::new().with("n", 4096),
        ),
        // #6 — unknown misalignment from an offset access.
        Kernel::new(
            "bench06_misaligned",
            "eval",
            "float ma[4100] __attribute__((aligned(64))); float mb[4100] __attribute__((aligned(64)));
void kernel(int n) {
    for (int i = 0; i < n; i++) {
        ma[i] = mb[i+1] + mb[i+3];
    }
}",
            ParamEnv::new().with("n", 4096),
        ),
        // #7 — multidimensional arrays (paper dataset example #2).
        Kernel::new(
            "bench07_multidim",
            "eval",
            "double grid[128][256];
void kernel(double x) {
    for (int i = 0; i < 128; i++) {
        for (int j = 0; j < 256; j++) {
            grid[i][j] = x;
        }
    }
}",
            ParamEnv::new().with("x", 1),
        ),
        // #8 — summation reduction (the §2.1 dot product).
        Kernel::new(
            "bench08_reduction",
            "eval",
            "int vec[512] __attribute__((aligned(16)));
int kernel() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}",
            ParamEnv::new(),
        ),
        // #9 — type conversions (paper dataset example #1).
        Kernel::new(
            "bench09_conversions",
            "eval",
            "int c1[4096]; int c2[4096]; short cs1[4096]; short cs2[4096];
void kernel(int n) {
    for (int i = 0; i < n-1; i += 2) {
        c1[i] = (int) cs1[i];
        c1[i+1] = (int) cs1[i+1];
        c2[i] = (int) cs2[i];
        c2[i+1] = (int) cs2[i+1];
    }
}",
            ParamEnv::new().with("n", 4096),
        ),
        // #10 — different data types in one loop.
        Kernel::new(
            "bench10_mixed_types",
            "eval",
            "double acc_d[2048]; float inf[2048]; int ini[2048];
void kernel(int n) {
    for (int i = 0; i < n; i++) {
        acc_d[i] = (double) inf[i] * 0.5 + (double) ini[i];
    }
}",
            ParamEnv::new().with("n", 2048),
        ),
        // #11 — float min/max reduction with a math call.
        Kernel::new(
            "bench11_minmax",
            "eval",
            "float xs[4096]; float best;
void kernel(int n) {
    for (int i = 0; i < n; i++) {
        best = fmaxf(best, xs[i] * xs[i]);
    }
}",
            ParamEnv::new().with("n", 4096),
        ),
        // #12 — indirect (gather) lookup.
        Kernel::new(
            "bench12_gather",
            "eval",
            "int lut[65536]; int keys[4096]; int vals[4096];
void kernel(int n) {
    for (int i = 0; i < n; i++) {
        vals[i] = lut[keys[i] & 65535] + 1;
    }
}",
            ParamEnv::new().with("n", 4096),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_frontend::parse_translation_unit;
    use nvc_ir::lower_innermost_loops;

    #[test]
    fn twelve_benchmarks() {
        assert_eq!(eval_benchmarks().len(), 12);
    }

    #[test]
    fn names_are_unique_and_ordered() {
        let b = eval_benchmarks();
        for (i, k) in b.iter().enumerate() {
            assert!(
                k.name.starts_with(&format!("bench{:02}", i + 1)),
                "{}",
                k.name
            );
        }
    }

    #[test]
    fn feature_coverage_is_as_advertised() {
        let b = eval_benchmarks();
        let find = |n: &str| {
            let tu = parse_translation_unit(&b.iter().find(|k| k.name.contains(n)).unwrap().source)
                .unwrap();
            let k = b.iter().find(|k| k.name.contains(n)).unwrap();
            lower_innermost_loops(&tu, &k.source, &k.env).unwrap()
        };
        // Predicate benchmark lowers to selects, reduction to a Sum, gather
        // to a Gather access, strided to Strided(2).
        assert!(!find("bench08").is_empty());
        let red = &find("bench08")[0].ir;
        assert_eq!(red.reductions.len(), 1);
        let strided = &find("bench02")[0].ir;
        assert!(strided
            .accesses
            .iter()
            .any(|a| a.kind == nvc_ir::AccessKind::Strided(2)));
        let gat = &find("bench12")[0].ir;
        assert!(gat
            .accesses
            .iter()
            .any(|a| a.kind == nvc_ir::AccessKind::Gather));
        let pred = &find("bench05")[0].ir;
        assert!(pred.predicated);
        let mis = &find("bench06")[0].ir;
        assert!(mis.loads().any(|a| !a.aligned));
    }
}
