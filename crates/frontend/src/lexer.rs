//! Tokenizer for the supported C subset.
//!
//! The lexer performs three small preprocessing duties that the paper's
//! kernels rely on:
//!
//! * object-like `#define NAME <tokens>` macros are collected and expanded
//!   (one level, which is all the paper's kernels use);
//! * `#pragma clang loop …` lines are turned into a dedicated
//!   [`TokenKind::PragmaClangLoop`] token so the parser can attach the hint to
//!   the loop that follows;
//! * `__attribute__((…))` blobs are folded into a single
//!   [`TokenKind::Attribute`] token carrying their text.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::FrontendError;

/// A half-open byte range into the original source, with the 1-based line
/// number of its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a span covering `[start, end)` at the given position.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Self {
            start,
            end,
            line,
            col,
        }
    }

    /// A zero-width placeholder span (used for synthesized nodes).
    pub fn synthetic() -> Self {
        Self {
            start: 0,
            end: 0,
            line: 0,
            col: 0,
        }
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        let (first, start, end) = if self.start <= other.start {
            (self, self.start, self.end.max(other.end))
        } else {
            (other, other.start, other.end.max(self.end))
        };
        Span {
            start,
            end,
            line: first.line,
            col: first.col,
        }
    }

    /// Extracts the covered text from the original source.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start.min(source.len())..self.end.min(source.len())]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Integer literal (decimal or hex).
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// Character literal, stored as its integer value.
    CharLit(i64),
    /// String literal (contents without quotes).
    StrLit(String),
    /// `#pragma clang loop vectorize_width(V) interleave_count(I)`.
    PragmaClangLoop {
        /// Requested vectorization factor.
        vectorize_width: u32,
        /// Requested interleave count.
        interleave_count: u32,
    },
    /// An `__attribute__((…))` blob, verbatim inner text.
    Attribute(String),
    /// Any punctuation or operator, e.g. `+=` or `(`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::IntLit(v) => write!(f, "integer `{v}`"),
            TokenKind::FloatLit(v) => write!(f, "float `{v}`"),
            TokenKind::CharLit(v) => write!(f, "char literal `{v}`"),
            TokenKind::StrLit(s) => write!(f, "string {s:?}"),
            TokenKind::PragmaClangLoop { .. } => write!(f, "#pragma clang loop"),
            TokenKind::Attribute(_) => write!(f, "__attribute__"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

/// Multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "++", "--", "->", "+", "-", "*", "/", "%", "<", ">", "=", "!", "&",
    "|", "^", "~", "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
];

/// Streaming tokenizer over a source string.
///
/// Construct with [`Lexer::new`] and call [`Lexer::tokenize`].
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src str,
    bytes: &'src [u8],
    pos: usize,
    line: u32,
    col: u32,
    macros: HashMap<String, Vec<Token>>,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            macros: HashMap::new(),
        }
    }

    /// Tokenizes the entire input, expanding `#define` macros.
    ///
    /// # Errors
    ///
    /// Returns a [`FrontendError`] on malformed literals, unknown characters,
    /// or malformed preprocessor lines.
    pub fn tokenize(mut self) -> Result<Vec<Token>, FrontendError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            if self.pos >= self.bytes.len() {
                break;
            }
            let start_line = self.line;
            let start_col = self.col;
            let start = self.pos;
            let c = self.bytes[self.pos];

            if c == b'#' {
                self.lex_directive(&mut out)?;
                continue;
            }
            if c.is_ascii_alphabetic() || c == b'_' {
                let ident = self.lex_ident();
                let span = Span::new(start, self.pos, start_line, start_col);
                if ident == "__attribute__" {
                    let inner = self.lex_attribute_body(start_line, start_col)?;
                    out.push(Token {
                        kind: TokenKind::Attribute(inner),
                        span: Span::new(start, self.pos, start_line, start_col),
                    });
                } else if let Some(expansion) = self.macros.get(&ident) {
                    // One-level object-macro expansion; spans point at the use site.
                    for t in expansion.clone() {
                        out.push(Token { kind: t.kind, span });
                    }
                } else {
                    out.push(Token {
                        kind: TokenKind::Ident(ident),
                        span,
                    });
                }
                continue;
            }
            if c.is_ascii_digit() || (c == b'.' && self.peek_digit_at(self.pos + 1)) {
                let tok = self.lex_number(start_line, start_col)?;
                out.push(tok);
                continue;
            }
            if c == b'\'' {
                let tok = self.lex_char(start_line, start_col)?;
                out.push(tok);
                continue;
            }
            if c == b'"' {
                let tok = self.lex_string(start_line, start_col)?;
                out.push(tok);
                continue;
            }
            if let Some(p) = self.lex_punct() {
                out.push(Token {
                    kind: TokenKind::Punct(p),
                    span: Span::new(start, self.pos, start_line, start_col),
                });
                continue;
            }
            return Err(FrontendError::new(
                format!("unexpected character `{}`", c as char),
                start_line,
                start_col,
            ));
        }
        out.push(Token {
            kind: TokenKind::Eof,
            span: Span::new(self.pos, self.pos, self.line, self.col),
        });
        Ok(out)
    }

    fn advance(&mut self) {
        if self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.pos += 1;
        }
    }

    fn peek_digit_at(&self, i: usize) -> bool {
        self.bytes.get(i).is_some_and(u8::is_ascii_digit)
    }

    fn skip_trivia(&mut self) -> Result<(), FrontendError> {
        loop {
            if self.pos >= self.bytes.len() {
                return Ok(());
            }
            let c = self.bytes[self.pos];
            if c.is_ascii_whitespace() {
                self.advance();
            } else if c == b'/' && self.bytes.get(self.pos + 1) == Some(&b'/') {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.advance();
                }
            } else if c == b'/' && self.bytes.get(self.pos + 1) == Some(&b'*') {
                let (line, col) = (self.line, self.col);
                self.advance();
                self.advance();
                loop {
                    if self.pos + 1 >= self.bytes.len() {
                        return Err(FrontendError::new("unterminated block comment", line, col));
                    }
                    if self.bytes[self.pos] == b'*' && self.bytes[self.pos + 1] == b'/' {
                        self.advance();
                        self.advance();
                        break;
                    }
                    self.advance();
                }
            } else {
                return Ok(());
            }
        }
    }

    fn lex_ident(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
        {
            self.advance();
        }
        self.src[start..self.pos].to_string()
    }

    fn lex_number(&mut self, line: u32, col: u32) -> Result<Token, FrontendError> {
        let start = self.pos;
        let mut is_float = false;
        if self.bytes[self.pos] == b'0'
            && matches!(self.bytes.get(self.pos + 1), Some(b'x') | Some(b'X'))
        {
            self.advance();
            self.advance();
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_hexdigit) {
                self.advance();
            }
            let text = &self.src[start + 2..self.pos];
            let v = i64::from_str_radix(text, 16)
                .map_err(|_| FrontendError::new("invalid hex literal", line, col))?;
            self.skip_int_suffix();
            return Ok(Token {
                kind: TokenKind::IntLit(v),
                span: Span::new(start, self.pos, line, col),
            });
        }
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.advance();
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.advance();
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.advance();
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e') | Some(b'E')) {
            let save = (self.pos, self.line, self.col);
            self.advance();
            if matches!(self.bytes.get(self.pos), Some(b'+') | Some(b'-')) {
                self.advance();
            }
            if self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                is_float = true;
                while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                    self.advance();
                }
            } else {
                (self.pos, self.line, self.col) = save;
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            let mut v: f64 = text
                .parse()
                .map_err(|_| FrontendError::new("invalid float literal", line, col))?;
            if matches!(self.bytes.get(self.pos), Some(b'f') | Some(b'F')) {
                self.advance();
                v = v as f32 as f64;
            }
            Ok(Token {
                kind: TokenKind::FloatLit(v),
                span: Span::new(start, self.pos, line, col),
            })
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| FrontendError::new("invalid integer literal", line, col))?;
            self.skip_int_suffix();
            Ok(Token {
                kind: TokenKind::IntLit(v),
                span: Span::new(start, self.pos, line, col),
            })
        }
    }

    fn skip_int_suffix(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b'u') | Some(b'U') | Some(b'l') | Some(b'L')
        ) {
            self.advance();
        }
    }

    fn lex_char(&mut self, line: u32, col: u32) -> Result<Token, FrontendError> {
        let start = self.pos;
        self.advance(); // opening quote
        let v = match self.bytes.get(self.pos) {
            Some(b'\\') => {
                self.advance();
                let esc = self.bytes.get(self.pos).copied().ok_or_else(|| {
                    FrontendError::new("unterminated character literal", line, col)
                })?;
                self.advance();
                match esc {
                    b'n' => b'\n' as i64,
                    b't' => b'\t' as i64,
                    b'r' => b'\r' as i64,
                    b'0' => 0,
                    b'\\' => b'\\' as i64,
                    b'\'' => b'\'' as i64,
                    other => other as i64,
                }
            }
            Some(&c) => {
                self.advance();
                c as i64
            }
            None => {
                return Err(FrontendError::new(
                    "unterminated character literal",
                    line,
                    col,
                ))
            }
        };
        if self.bytes.get(self.pos) != Some(&b'\'') {
            return Err(FrontendError::new(
                "unterminated character literal",
                line,
                col,
            ));
        }
        self.advance();
        Ok(Token {
            kind: TokenKind::CharLit(v),
            span: Span::new(start, self.pos, line, col),
        })
    }

    fn lex_string(&mut self, line: u32, col: u32) -> Result<Token, FrontendError> {
        let start = self.pos;
        self.advance(); // opening quote
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.advance();
                    break;
                }
                Some(b'\\') => {
                    self.advance();
                    if let Some(&esc) = self.bytes.get(self.pos) {
                        s.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            other => other as char,
                        });
                        self.advance();
                    }
                }
                Some(&c) => {
                    s.push(c as char);
                    self.advance();
                }
                None => return Err(FrontendError::new("unterminated string literal", line, col)),
            }
        }
        Ok(Token {
            kind: TokenKind::StrLit(s),
            span: Span::new(start, self.pos, line, col),
        })
    }

    fn lex_punct(&mut self) -> Option<&'static str> {
        for p in PUNCTS {
            if self.src[self.pos..].starts_with(p) {
                for _ in 0..p.len() {
                    self.advance();
                }
                return Some(p);
            }
        }
        None
    }

    /// Consumes text through the rest of the current line, returning it.
    fn take_rest_of_line(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.advance();
        }
        self.src[start..self.pos].to_string()
    }

    fn lex_directive(&mut self, out: &mut Vec<Token>) -> Result<(), FrontendError> {
        let line = self.line;
        let col = self.col;
        let start = self.pos;
        self.advance(); // '#'
                        // Skip horizontal whitespace between '#' and the directive name.
        while matches!(self.bytes.get(self.pos), Some(b' ') | Some(b'\t')) {
            self.advance();
        }
        let name = self.lex_ident();
        match name.as_str() {
            "define" => {
                while matches!(self.bytes.get(self.pos), Some(b' ') | Some(b'\t')) {
                    self.advance();
                }
                let macro_name = self.lex_ident();
                if macro_name.is_empty() {
                    return Err(FrontendError::new("#define requires a name", line, col));
                }
                let body = self.take_rest_of_line();
                let body_tokens = Lexer::new(body.trim())
                    .tokenize()?
                    .into_iter()
                    .filter(|t| t.kind != TokenKind::Eof)
                    .collect::<Vec<_>>();
                self.macros.insert(macro_name, body_tokens);
                Ok(())
            }
            "pragma" => {
                let rest = self.take_rest_of_line();
                let rest = rest.trim();
                if let Some(tok) =
                    parse_clang_loop_pragma(rest, Span::new(start, self.pos, line, col))
                {
                    out.push(tok);
                }
                // Unrecognized pragmas are ignored, matching compiler behaviour.
                Ok(())
            }
            "include" | "ifdef" | "ifndef" | "endif" | "if" | "else" | "undef" => {
                // Harmless for our kernels: includes/conditionals carry no
                // semantics in the subset, so they are skipped line-wise.
                self.take_rest_of_line();
                Ok(())
            }
            other => Err(FrontendError::new(
                format!("unsupported preprocessor directive `#{other}`"),
                line,
                col,
            )),
        }
    }

    fn lex_attribute_body(&mut self, line: u32, col: u32) -> Result<String, FrontendError> {
        self.skip_trivia()?;
        if self.bytes.get(self.pos) != Some(&b'(') {
            return Err(FrontendError::new(
                "expected `((` after __attribute__",
                line,
                col,
            ));
        }
        let mut depth = 0usize;
        let start = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                Some(b'(') => {
                    depth += 1;
                    self.advance();
                }
                Some(b')') => {
                    depth -= 1;
                    self.advance();
                    if depth == 0 {
                        break;
                    }
                }
                Some(_) => self.advance(),
                None => return Err(FrontendError::new("unterminated __attribute__", line, col)),
            }
        }
        // Trim exactly the outer double parens, keeping any parens that
        // belong to the attribute itself (e.g. `aligned(16)`).
        let mut inner = &self.src[start..self.pos];
        for _ in 0..2 {
            inner = inner
                .strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
                .unwrap_or(inner);
        }
        Ok(inner.trim().to_string())
    }
}

/// Parses the body of a `pragma` line, recognizing `clang loop` hints.
///
/// Returns `None` for pragmas we do not model (they are ignored, like a real
/// compiler ignores unknown pragmas).
fn parse_clang_loop_pragma(rest: &str, span: Span) -> Option<Token> {
    let mut words = rest.split_whitespace();
    if words.next()? != "clang" || words.next()? != "loop" {
        return None;
    }
    let mut vf = 1u32;
    let mut ifc = 1u32;
    let mut saw_any = false;
    for clause in words {
        if let Some(v) = clause
            .strip_prefix("vectorize_width(")
            .and_then(|s| s.strip_suffix(')'))
        {
            vf = v.trim().parse().ok()?;
            saw_any = true;
        } else if let Some(v) = clause
            .strip_prefix("interleave_count(")
            .and_then(|s| s.strip_suffix(')'))
        {
            ifc = v.trim().parse().ok()?;
            saw_any = true;
        }
    }
    saw_any.then_some(Token {
        kind: TokenKind::PragmaClangLoop {
            vectorize_width: vf,
            interleave_count: ifc,
        },
        span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lex_simple_expression() {
        let k = kinds("a + 42 * b3");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("+"),
                TokenKind::IntLit(42),
                TokenKind::Punct("*"),
                TokenKind::Ident("b3".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_maximal_munch_compound_ops() {
        let k = kinds("a += b <<= c << d <= e");
        assert!(k.contains(&TokenKind::Punct("+=")));
        assert!(k.contains(&TokenKind::Punct("<<=")));
        assert!(k.contains(&TokenKind::Punct("<<")));
        assert!(k.contains(&TokenKind::Punct("<=")));
    }

    #[test]
    fn lex_float_and_hex_literals() {
        let k = kinds("1.5 0x1F 2e3 7f 3.0f");
        assert_eq!(k[0], TokenKind::FloatLit(1.5));
        assert_eq!(k[1], TokenKind::IntLit(31));
        assert_eq!(k[2], TokenKind::FloatLit(2000.0));
        // `7f` lexes as 7 then identifier f (C would reject; our subset is lenient).
        assert_eq!(k[3], TokenKind::IntLit(7));
        assert_eq!(k[5], TokenKind::FloatLit(3.0));
    }

    #[test]
    fn lex_comments_are_skipped() {
        let k = kinds("a /* multi\nline */ b // trailing\nc");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_pragma_clang_loop() {
        let k = kinds("#pragma clang loop vectorize_width(8) interleave_count(4)\nfor");
        assert_eq!(
            k[0],
            TokenKind::PragmaClangLoop {
                vectorize_width: 8,
                interleave_count: 4
            }
        );
        assert_eq!(k[1], TokenKind::Ident("for".into()));
    }

    #[test]
    fn lex_unknown_pragma_is_ignored() {
        let k = kinds("#pragma omp parallel for\nx");
        assert_eq!(k[0], TokenKind::Ident("x".into()));
    }

    #[test]
    fn lex_define_macro_expansion() {
        let k = kinds("#define N 512\nint a[N];");
        assert!(k.contains(&TokenKind::IntLit(512)));
        assert!(!k
            .iter()
            .any(|t| matches!(t, TokenKind::Ident(s) if s == "N")));
    }

    #[test]
    fn lex_define_expression_macro() {
        let k = kinds("#define SZ (N*2)\nSZ");
        assert_eq!(k[0], TokenKind::Punct("("));
        assert_eq!(k[1], TokenKind::Ident("N".into()));
    }

    #[test]
    fn lex_attribute_blob() {
        let k = kinds("int v[4] __attribute__((aligned(16)));");
        assert!(k
            .iter()
            .any(|t| matches!(t, TokenKind::Attribute(s) if s == "aligned(16)")));
    }

    #[test]
    fn lex_char_literals() {
        let k = kinds(r"'a' '\n' '\0'");
        assert_eq!(k[0], TokenKind::CharLit(97));
        assert_eq!(k[1], TokenKind::CharLit(10));
        assert_eq!(k[2], TokenKind::CharLit(0));
    }

    #[test]
    fn lex_error_reports_position() {
        let err = Lexer::new("int a;\n  @").tokenize().unwrap_err();
        assert_eq!(err.line(), 2);
        assert_eq!(err.col(), 3);
    }

    #[test]
    fn span_merge_and_text() {
        let s1 = Span::new(0, 3, 1, 1);
        let s2 = Span::new(4, 7, 1, 5);
        let m = s1.merge(s2);
        assert_eq!((m.start, m.end), (0, 7));
        assert_eq!(m.text("abc def"), "abc def");
    }

    #[test]
    fn lex_include_is_skipped() {
        let k = kinds("#include <stdio.h>\nint x;");
        assert_eq!(k[0], TokenKind::Ident("int".into()));
    }
}
