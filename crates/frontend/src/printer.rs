//! Rendering an AST back to C source text.
//!
//! The printer produces compilable, deterministic output: the dataset
//! generator builds ASTs programmatically and prints them to obtain the
//! source text the embedding generator reads, and the pragma injector uses
//! statement printing for synthesized loops.

use std::fmt::Write as _;

use crate::ast::{
    Declarator, Expr, ExprKind, Function, GlobalVar, Item, Stmt, StmtKind, TranslationUnit,
};

/// Renders a whole translation unit as C source.
pub fn print_translation_unit(tu: &TranslationUnit) -> String {
    let mut out = String::new();
    for item in &tu.items {
        match item {
            Item::Global(g) => print_global(&mut out, g),
            Item::Function(f) => print_function(&mut out, f),
        }
    }
    out
}

/// Renders a single statement with the given starting indentation level.
pub fn print_stmt(stmt: &Stmt, indent: usize) -> String {
    let mut out = String::new();
    write_stmt(&mut out, stmt, indent);
    out
}

/// Renders a single expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0);
    out
}

fn print_global(out: &mut String, g: &GlobalVar) {
    let _ = write!(out, "{} {}", g.ty.c_name(), g.name);
    for d in &g.dims {
        let _ = write!(out, "[{d}]");
    }
    if let Some(a) = g.alignment {
        let _ = write!(out, " __attribute__((aligned({a})))");
    }
    if let Some(init) = &g.init {
        let _ = write!(out, " = {}", print_expr(init));
    }
    out.push_str(";\n");
}

fn print_function(out: &mut String, f: &Function) {
    for a in &f.attributes {
        let _ = writeln!(out, "__attribute__(({a}))");
    }
    let _ = write!(out, "{} {}(", f.return_ty.c_name(), f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let star = if p.is_pointer { " *" } else { " " };
        let _ = write!(out, "{}{}{}", p.ty.c_name(), star, p.name);
    }
    out.push_str(") ");
    write_stmt(out, &f.body, 0);
    out.push('\n');
}

fn indent_str(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("    ");
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, indent: usize) {
    match &stmt.kind {
        StmtKind::Block(stmts) => {
            out.push_str("{\n");
            for s in stmts {
                indent_str(out, indent + 1);
                write_stmt(out, s, indent + 1);
                out.push('\n');
            }
            indent_str(out, indent);
            out.push('}');
        }
        StmtKind::Decl { ty, declarators } => {
            let _ = write!(out, "{} ", ty.c_name());
            for (i, d) in declarators.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_declarator(out, d);
            }
            out.push(';');
        }
        StmtKind::Expr(e) => {
            write_expr(out, e, 0);
            out.push(';');
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
            pragma,
        } => {
            if let Some(p) = pragma {
                let _ = write!(out, "{p}");
                out.push('\n');
                indent_str(out, indent);
            }
            out.push_str("for (");
            match init {
                Some(s) => {
                    // Declarations/expressions already end with `;`.
                    let text = print_stmt(s, 0);
                    out.push_str(text.trim_end_matches(|c| c == '\n'));
                }
                None => out.push(';'),
            }
            out.push(' ');
            if let Some(c) = cond {
                write_expr(out, c, 0);
            }
            out.push_str("; ");
            if let Some(s) = step {
                write_expr(out, s, 0);
            }
            out.push_str(") ");
            write_stmt(out, body, indent);
        }
        StmtKind::While { cond, body, pragma } => {
            if let Some(p) = pragma {
                let _ = write!(out, "{p}");
                out.push('\n');
                indent_str(out, indent);
            }
            out.push_str("while (");
            write_expr(out, cond, 0);
            out.push_str(") ");
            write_stmt(out, body, indent);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push_str("if (");
            write_expr(out, cond, 0);
            out.push_str(") ");
            write_stmt(out, then_branch, indent);
            if let Some(e) = else_branch {
                out.push_str(" else ");
                write_stmt(out, e, indent);
            }
        }
        StmtKind::Return(e) => {
            out.push_str("return");
            if let Some(e) = e {
                out.push(' ');
                write_expr(out, e, 0);
            }
            out.push(';');
        }
        StmtKind::Break => out.push_str("break;"),
        StmtKind::Continue => out.push_str("continue;"),
        StmtKind::Empty => out.push(';'),
    }
}

fn write_declarator(out: &mut String, d: &Declarator) {
    out.push_str(&d.name);
    for dim in &d.dims {
        match dim {
            Some(v) => {
                let _ = write!(out, "[{v}]");
            }
            None => out.push_str("[]"),
        }
    }
    if let Some(init) = &d.init {
        let _ = write!(out, " = {}", print_expr(init));
    }
}

/// Binding power of an expression for parenthesization decisions.
fn prec(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::Assign { .. } => 1,
        ExprKind::Ternary { .. } => 2,
        ExprKind::Binary { op, .. } => {
            use crate::ast::BinaryOp::*;
            match op {
                LogOr => 3,
                LogAnd => 4,
                BitOr => 5,
                BitXor => 6,
                BitAnd => 7,
                Eq | Ne => 8,
                Lt | Le | Gt | Ge => 9,
                Shl | Shr => 10,
                Add | Sub => 11,
                Mul | Div | Rem => 12,
            }
        }
        ExprKind::Cast { .. } | ExprKind::Unary { .. } | ExprKind::IncDec { .. } => 13,
        _ => 14,
    }
}

fn write_child(out: &mut String, child: &Expr, min_prec: u8) {
    if prec(child) < min_prec {
        out.push('(');
        write_expr(out, child, 0);
        out.push(')');
    } else {
        write_expr(out, child, 0);
    }
}

fn write_expr(out: &mut String, e: &Expr, _depth: usize) {
    match &e.kind {
        ExprKind::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::FloatLit(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        ExprKind::Ident(s) => out.push_str(s),
        ExprKind::Index { base, index } => {
            write_child(out, base, 14);
            out.push('[');
            write_expr(out, index, 0);
            out.push(']');
        }
        ExprKind::Call { callee, args } => {
            out.push_str(callee);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
        ExprKind::Unary { op, operand } => {
            out.push_str(op.symbol());
            write_child(out, operand, 13);
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let p = prec(e);
            write_child(out, lhs, p);
            let _ = write!(out, " {} ", op.symbol());
            // Right operand needs strictly higher precedence for
            // left-associative operators.
            write_child(out, rhs, p + 1);
        }
        ExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            write_child(out, cond, 3);
            out.push_str(" ? ");
            write_expr(out, then_expr, 0);
            out.push_str(" : ");
            write_expr(out, else_expr, 0);
        }
        ExprKind::Cast { ty, operand } => {
            let _ = write!(out, "({}) ", ty.c_name());
            write_child(out, operand, 13);
        }
        ExprKind::Assign { op, target, value } => {
            write_child(out, target, 14);
            match op {
                Some(op) => {
                    let _ = write!(out, " {}= ", op.symbol());
                }
                None => out.push_str(" = "),
            }
            write_child(out, value, 1);
        }
        ExprKind::IncDec {
            target,
            delta,
            prefix,
        } => {
            let sym = if *delta > 0 { "++" } else { "--" };
            if *prefix {
                out.push_str(sym);
                write_child(out, target, 14);
            } else {
                write_child(out, target, 14);
                out.push_str(sym);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_translation_unit;

    /// Print → reparse → print must be a fixpoint.
    fn roundtrip(src: &str) {
        let tu1 = parse_translation_unit(src).expect("initial parse");
        let printed1 = print_translation_unit(&tu1);
        let tu2 = parse_translation_unit(&printed1)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{printed1}"));
        let printed2 = print_translation_unit(&tu2);
        assert_eq!(printed1, printed2, "printer not a fixpoint");
    }

    #[test]
    fn roundtrip_dot_product() {
        roundtrip(
            "int vec[512] __attribute__((aligned(16)));\nint f() { int sum = 0; for (int i = 0; i < 512; i++) { sum += vec[i]*vec[i]; } return sum; }",
        );
    }

    #[test]
    fn roundtrip_matmul() {
        roundtrip(
            "float A[64][64]; float B[64][64]; float C[64][64];\nvoid f(int n, float alpha) { for (int i=0;i<n;i++) for (int j=0;j<n;j++) { float s = 0; for (int k=0;k<n;k++) { s += alpha*A[i][k]*B[k][j]; } C[i][j] = s; } }",
        );
    }

    #[test]
    fn roundtrip_predicated_ternary() {
        roundtrip(
            "int a[256]; int b[256];\nvoid f(int n) { for (int i=0;i<n;i++) { int j = a[i]; b[i] = (j > 255 ? 255 : 0); } }",
        );
    }

    #[test]
    fn roundtrip_pragma_survives() {
        let src = "int a[64]; int b[64];\nvoid f(int n) {\n#pragma clang loop vectorize_width(8) interleave_count(2)\nfor (int i=0;i<n;i++) { a[i] = b[i]; } }";
        let tu = parse_translation_unit(src).unwrap();
        let printed = print_translation_unit(&tu);
        assert!(printed.contains("#pragma clang loop vectorize_width(8) interleave_count(2)"));
        roundtrip(src);
    }

    #[test]
    fn parens_preserved_where_needed() {
        let src = "int a[64];\nvoid f(int n, int x) { for (int i=0;i<n;i++) { a[i] = (x + 1) * (x - 1); } }";
        let tu = parse_translation_unit(src).unwrap();
        let printed = print_translation_unit(&tu);
        assert!(printed.contains("(x + 1) * (x - 1)"));
        roundtrip(src);
    }

    #[test]
    fn unary_minus_binding() {
        let src = "void f(int x, int y) { x = -y + 3; x = -(y + 3); }";
        let tu = parse_translation_unit(src).unwrap();
        let printed = print_translation_unit(&tu);
        assert!(printed.contains("-y + 3"));
        assert!(printed.contains("-(y + 3)"));
        roundtrip(src);
    }

    #[test]
    fn while_and_if_else_roundtrip() {
        roundtrip(
            "void f(int n) { int i = 0; while (i < n) { if (i % 2 == 0) { i += 2; } else { i++; } } }",
        );
    }

    #[test]
    fn float_literals_stay_floats() {
        let src = "void f(float x) { x = x * 2.0 + 0.5; }";
        let tu = parse_translation_unit(src).unwrap();
        let printed = print_translation_unit(&tu);
        assert!(printed.contains("2.0"));
        assert!(printed.contains("0.5"));
        roundtrip(src);
    }

    #[test]
    fn casts_roundtrip() {
        roundtrip("short s[64]; int d[64];\nvoid f(int n) { for (int i=0;i<n;i++) { d[i] = (int) s[i]; } }");
    }
}
