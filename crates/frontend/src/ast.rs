//! Abstract syntax tree for the supported C subset.
//!
//! The tree intentionally stays close to surface syntax: the embedding
//! generator ([`nvc-embed`](https://example.com)) consumes AST *paths*
//! (code2vec-style), so the node kinds here define the vocabulary the agent
//! observes. Every node carries a [`Span`] back into the original text.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::lexer::Span;

/// Scalar element types of the subset.
///
/// Sizes follow the LP64 C data model the paper's testbed used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// `void` — function returns only.
    Void,
    /// `char` / `unsigned char`, 1 byte.
    Char {
        /// True for `unsigned char`.
        unsigned: bool,
    },
    /// `short`, 2 bytes.
    Short {
        /// True for `unsigned short`.
        unsigned: bool,
    },
    /// `int`, 4 bytes.
    Int {
        /// True for `unsigned int`.
        unsigned: bool,
    },
    /// `long` / `long long`, 8 bytes.
    Long {
        /// True for `unsigned long`.
        unsigned: bool,
    },
    /// `float`, 4 bytes.
    Float,
    /// `double`, 8 bytes.
    Double,
}

impl Type {
    /// Size of the type in bytes (0 for `void`).
    pub fn size_bytes(self) -> u32 {
        match self {
            Type::Void => 0,
            Type::Char { .. } => 1,
            Type::Short { .. } => 2,
            Type::Int { .. } | Type::Float => 4,
            Type::Long { .. } | Type::Double => 8,
        }
    }

    /// True for `float`/`double`.
    pub fn is_float(self) -> bool {
        matches!(self, Type::Float | Type::Double)
    }

    /// True for any integer type.
    pub fn is_integer(self) -> bool {
        !self.is_float() && self != Type::Void
    }

    /// C name of the type (`unsigned` prefix included).
    pub fn c_name(self) -> &'static str {
        match self {
            Type::Void => "void",
            Type::Char { unsigned: false } => "char",
            Type::Char { unsigned: true } => "unsigned char",
            Type::Short { unsigned: false } => "short",
            Type::Short { unsigned: true } => "unsigned short",
            Type::Int { unsigned: false } => "int",
            Type::Int { unsigned: true } => "unsigned int",
            Type::Long { unsigned: false } => "long",
            Type::Long { unsigned: true } => "unsigned long",
            Type::Float => "float",
            Type::Double => "double",
        }
    }

    /// Usual-arithmetic-conversions result of combining two operand types.
    pub fn unify(self, other: Type) -> Type {
        use Type::*;
        if self == Double || other == Double {
            return Double;
        }
        if self == Float || other == Float {
            return Float;
        }
        // Integer promotion: everything below int promotes to int.
        let rank = |t: Type| match t {
            Long { .. } => 3,
            Int { .. } => 2,
            _ => 2, // char/short promote to int
        };
        let unsigned = |t: Type| match t {
            Char { unsigned } | Short { unsigned } | Int { unsigned } | Long { unsigned } => {
                unsigned
            }
            _ => false,
        };
        let (ra, rb) = (rank(self), rank(other));
        let u = unsigned(self) || unsigned(other);
        if ra.max(rb) == 3 {
            Long { unsigned: u }
        } else {
            Int { unsigned: u }
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_name())
    }
}

/// Binary operators of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
}

impl BinaryOp {
    /// True for `<`, `<=`, `>`, `>=`, `==`, `!=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge | BinaryOp::Eq | BinaryOp::Ne
        )
    }

    /// True for `&&` / `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::LogAnd | BinaryOp::LogOr)
    }

    /// Surface token for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "^",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::LogAnd => "&&",
            BinaryOp::LogOr => "||",
        }
    }
}

/// Unary operators of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
}

impl UnaryOp {
    /// Surface token for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Not => "!",
            UnaryOp::BitNot => "~",
        }
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Floating literal.
    FloatLit(f64),
    /// Variable reference.
    Ident(String),
    /// `base[index]` — chained for multi-dimensional accesses.
    Index {
        /// Array being indexed (an `Ident` or another `Index`).
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Function call, e.g. `sqrtf(x)`.
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `cond ? then : else`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
    },
    /// `(type) expr`.
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Assignment, including compound assignment (`op` is `None` for `=`).
    Assign {
        /// `None` for `=`, `Some(Add)` for `+=`, etc.
        op: Option<BinaryOp>,
        /// Assignment target (identifier or index chain).
        target: Box<Expr>,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// `x++` / `x--` / `++x` / `--x` (all treated as `x += 1` effects).
    IncDec {
        /// Target lvalue.
        target: Box<Expr>,
        /// +1 or -1.
        delta: i64,
        /// True when written prefix (`++x`).
        prefix: bool,
    },
}

impl Expr {
    /// Creates an expression at `span`.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Self { kind, span }
    }

    /// If this expression is a (possibly nested) array index, returns the
    /// root array name and the index expressions from outermost to innermost
    /// dimension.
    pub fn as_array_access(&self) -> Option<(&str, Vec<&Expr>)> {
        let mut indices = Vec::new();
        let mut cur = self;
        loop {
            match &cur.kind {
                ExprKind::Index { base, index } => {
                    indices.push(index.as_ref());
                    cur = base;
                }
                ExprKind::Ident(name) => {
                    indices.reverse();
                    return Some((name, indices));
                }
                _ => return None,
            }
        }
    }

    /// Folds the expression to a constant integer if possible.
    pub fn const_int(&self) -> Option<i64> {
        match &self.kind {
            ExprKind::IntLit(v) => Some(*v),
            ExprKind::Unary {
                op: UnaryOp::Neg,
                operand,
            } => operand.const_int().map(|v| -v),
            ExprKind::Cast { operand, .. } => operand.const_int(),
            ExprKind::Binary { op, lhs, rhs } => {
                let (a, b) = (lhs.const_int()?, rhs.const_int()?);
                Some(match op {
                    BinaryOp::Add => a + b,
                    BinaryOp::Sub => a - b,
                    BinaryOp::Mul => a * b,
                    BinaryOp::Div if b != 0 => a / b,
                    BinaryOp::Rem if b != 0 => a % b,
                    BinaryOp::Shl => a << (b & 63),
                    BinaryOp::Shr => a >> (b & 63),
                    BinaryOp::BitAnd => a & b,
                    BinaryOp::BitOr => a | b,
                    BinaryOp::BitXor => a ^ b,
                    _ => return None,
                })
            }
            _ => None,
        }
    }
}

/// A `#pragma clang loop vectorize_width(V) interleave_count(I)` hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LoopPragma {
    /// Requested VF.
    pub vectorize_width: u32,
    /// Requested IF.
    pub interleave_count: u32,
}

impl fmt::Display for LoopPragma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#pragma clang loop vectorize_width({}) interleave_count({})",
            self.vectorize_width, self.interleave_count
        )
    }
}

/// A statement node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stmt {
    /// What kind of statement.
    pub kind: StmtKind,
    /// Source location (for a loop: from `for` through the closing brace).
    pub span: Span,
}

/// A single declarator in a declaration statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Declarator {
    /// Variable name.
    pub name: String,
    /// Array dimensions (empty for scalars). `None` dims are unsized (`[]`).
    pub dims: Vec<Option<i64>>,
    /// Optional initializer.
    pub init: Option<Expr>,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StmtKind {
    /// Local declaration, e.g. `int i = 0, j;`.
    Decl {
        /// Element type.
        ty: Type,
        /// Declared entities.
        declarators: Vec<Declarator>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `for (init; cond; step) body`.
    For {
        /// Init clause (declaration or expression statement), if any.
        init: Option<Box<Stmt>>,
        /// Loop condition, if any.
        cond: Option<Expr>,
        /// Step expression, if any.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
        /// Vectorization hint attached to this loop.
        pragma: Option<LoopPragma>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
        /// Vectorization hint attached to this loop.
        pragma: Option<LoopPragma>,
    },
    /// `if (cond) then else els`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Else branch, if any.
        else_branch: Option<Box<Stmt>>,
    },
    /// `return expr;`.
    Return(Option<Expr>),
    /// `{ … }`.
    Block(Vec<Stmt>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `;`
    Empty,
}

impl Stmt {
    /// Creates a statement at `span`.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Self { kind, span }
    }

    /// True if this statement is a `for` or `while` loop.
    pub fn is_loop(&self) -> bool {
        matches!(self.kind, StmtKind::For { .. } | StmtKind::While { .. })
    }

    /// Returns the loop body if this statement is a loop.
    pub fn loop_body(&self) -> Option<&Stmt> {
        match &self.kind {
            StmtKind::For { body, .. } | StmtKind::While { body, .. } => Some(body),
            _ => None,
        }
    }

    /// Visits every statement in this subtree, outer-to-inner.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match &self.kind {
            StmtKind::For { init, body, .. } => {
                if let Some(init) = init {
                    init.walk(f);
                }
                body.walk(f);
            }
            StmtKind::While { body, .. } => body.walk(f),
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.walk(f);
                if let Some(e) = else_branch {
                    e.walk(f);
                }
            }
            StmtKind::Block(stmts) => {
                for s in stmts {
                    s.walk(f);
                }
            }
            _ => {}
        }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Element type.
    pub ty: Type,
    /// Name.
    pub name: String,
    /// True when the parameter is a pointer/array (`int *a` or `int a[]`).
    pub is_pointer: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Return type.
    pub return_ty: Type,
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body block.
    pub body: Stmt,
    /// Attributes, e.g. `noinline`.
    pub attributes: Vec<String>,
    /// Full source span of the definition.
    pub span: Span,
}

/// A file-scope variable (typically a statically sized array).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalVar {
    /// Element type.
    pub ty: Type,
    /// Name.
    pub name: String,
    /// Array dimensions (empty for scalars).
    pub dims: Vec<i64>,
    /// Declared alignment in bytes from `__attribute__((aligned(N)))`, if any.
    pub alignment: Option<u32>,
    /// Initializer for scalars.
    pub init: Option<Expr>,
    /// Full source span.
    pub span: Span,
}

impl GlobalVar {
    /// Number of elements across all dimensions.
    pub fn element_count(&self) -> i64 {
        self.dims.iter().product::<i64>().max(1)
    }

    /// Footprint in bytes.
    pub fn size_bytes(&self) -> i64 {
        self.element_count() * i64::from(self.ty.size_bytes())
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Item {
    /// File-scope variable.
    Global(GlobalVar),
    /// Function definition.
    Function(Function),
}

/// A parsed source file.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TranslationUnit {
    /// Items in declaration order.
    pub items: Vec<Item>,
}

impl TranslationUnit {
    /// Creates an empty translation unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterates over the function definitions.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|i| match i {
            Item::Function(f) => Some(f),
            Item::Global(_) => None,
        })
    }

    /// Iterates over file-scope variables.
    pub fn globals(&self) -> impl Iterator<Item = &GlobalVar> {
        self.items.iter().filter_map(|i| match i {
            Item::Global(g) => Some(g),
            Item::Function(_) => None,
        })
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalVar> {
        self.globals().find(|g| g.name == name)
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes_match_lp64() {
        assert_eq!(Type::Char { unsigned: false }.size_bytes(), 1);
        assert_eq!(Type::Short { unsigned: false }.size_bytes(), 2);
        assert_eq!(Type::Int { unsigned: false }.size_bytes(), 4);
        assert_eq!(Type::Long { unsigned: false }.size_bytes(), 8);
        assert_eq!(Type::Float.size_bytes(), 4);
        assert_eq!(Type::Double.size_bytes(), 8);
    }

    #[test]
    fn type_unify_follows_usual_conversions() {
        let int = Type::Int { unsigned: false };
        let short = Type::Short { unsigned: false };
        let uns = Type::Int { unsigned: true };
        assert_eq!(short.unify(short), int); // promotion
        assert_eq!(int.unify(Type::Float), Type::Float);
        assert_eq!(Type::Float.unify(Type::Double), Type::Double);
        assert_eq!(int.unify(uns), Type::Int { unsigned: true });
        assert_eq!(
            int.unify(Type::Long { unsigned: false }),
            Type::Long { unsigned: false }
        );
    }

    #[test]
    fn const_int_folds_arithmetic() {
        let span = Span::synthetic();
        let e = Expr::new(
            ExprKind::Binary {
                op: BinaryOp::Mul,
                lhs: Box::new(Expr::new(ExprKind::IntLit(6), span)),
                rhs: Box::new(Expr::new(
                    ExprKind::Binary {
                        op: BinaryOp::Add,
                        lhs: Box::new(Expr::new(ExprKind::IntLit(3), span)),
                        rhs: Box::new(Expr::new(ExprKind::IntLit(4), span)),
                    },
                    span,
                )),
            },
            span,
        );
        assert_eq!(e.const_int(), Some(42));
    }

    #[test]
    fn const_int_rejects_variables() {
        let span = Span::synthetic();
        let e = Expr::new(ExprKind::Ident("n".into()), span);
        assert_eq!(e.const_int(), None);
    }

    #[test]
    fn as_array_access_handles_multidim() {
        let span = Span::synthetic();
        // A[i][j]
        let e = Expr::new(
            ExprKind::Index {
                base: Box::new(Expr::new(
                    ExprKind::Index {
                        base: Box::new(Expr::new(ExprKind::Ident("A".into()), span)),
                        index: Box::new(Expr::new(ExprKind::Ident("i".into()), span)),
                    },
                    span,
                )),
                index: Box::new(Expr::new(ExprKind::Ident("j".into()), span)),
            },
            span,
        );
        let (name, idx) = e.as_array_access().unwrap();
        assert_eq!(name, "A");
        assert_eq!(idx.len(), 2);
        assert_eq!(idx[0].kind, ExprKind::Ident("i".into()));
        assert_eq!(idx[1].kind, ExprKind::Ident("j".into()));
    }

    #[test]
    fn pragma_display_matches_clang_syntax() {
        let p = LoopPragma {
            vectorize_width: 8,
            interleave_count: 2,
        };
        assert_eq!(
            p.to_string(),
            "#pragma clang loop vectorize_width(8) interleave_count(2)"
        );
    }

    #[test]
    fn global_var_footprint() {
        let g = GlobalVar {
            ty: Type::Float,
            name: "A".into(),
            dims: vec![128, 128],
            alignment: Some(64),
            init: None,
            span: Span::synthetic(),
        };
        assert_eq!(g.element_count(), 128 * 128);
        assert_eq!(g.size_bytes(), 128 * 128 * 4);
    }
}
