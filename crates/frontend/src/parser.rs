//! Recursive-descent parser for the supported C subset.
//!
//! Operator precedence follows C. The grammar covers everything that appears
//! in the paper's dataset examples (§3.2) and the benchmark kernels we
//! generate: global array declarations with attributes, function definitions,
//! `for`/`while`/`if`, ternaries, casts, compound assignment, pre/post
//! increment, and multi-dimensional indexing.

use crate::ast::{
    BinaryOp, Declarator, Expr, ExprKind, Function, GlobalVar, Item, LoopPragma, Param, Stmt,
    StmtKind, TranslationUnit, Type, UnaryOp,
};
use crate::lexer::{Span, Token, TokenKind};
use crate::FrontendError;

/// Parser over a token stream produced by [`crate::Lexer`].
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Creates a parser over `tokens` (must end with [`TokenKind::Eof`]).
    pub fn new(tokens: Vec<Token>) -> Self {
        Self { tokens, pos: 0 }
    }

    /// Parses the whole token stream as a translation unit.
    ///
    /// # Errors
    ///
    /// Returns a [`FrontendError`] pointing at the first token that does not
    /// fit the grammar.
    pub fn parse_translation_unit(mut self) -> Result<TranslationUnit, FrontendError> {
        let mut tu = TranslationUnit::new();
        while !self.at_eof() {
            let item = self.parse_item()?;
            tu.items.push(item);
        }
        Ok(tu)
    }

    /// Parses exactly one statement and requires the input to be fully
    /// consumed afterwards.
    ///
    /// # Errors
    ///
    /// Returns a [`FrontendError`] if the snippet is not a single statement.
    pub fn parse_single_statement(mut self) -> Result<Stmt, FrontendError> {
        let stmt = self.parse_stmt()?;
        if !self.at_eof() {
            return Err(self.error_here("trailing tokens after statement"));
        }
        Ok(stmt)
    }

    // ------------------------------------------------------------------
    // Token helpers
    // ------------------------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, msg: impl Into<String>) -> FrontendError {
        let t = self.peek();
        FrontendError::new(
            format!("{} (found {})", msg.into(), t.kind),
            t.span.line,
            t.span.col,
        )
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<Span, FrontendError> {
        if matches!(&self.peek().kind, TokenKind::Punct(q) if *q == p) {
            Ok(self.bump().span)
        } else {
            Err(self.error_here(format!("expected `{p}`")))
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), FrontendError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                let span = self.bump().span;
                Ok((s, span))
            }
            _ => Err(self.error_here("expected identifier")),
        }
    }

    /// Skips any attribute tokens, collecting their text.
    fn eat_attributes(&mut self) -> Vec<String> {
        let mut attrs = Vec::new();
        while let TokenKind::Attribute(a) = &self.peek().kind {
            attrs.push(a.clone());
            self.bump();
        }
        attrs
    }

    /// Tries to parse a type name at the cursor without consuming on failure.
    fn peek_type(&self) -> Option<(Type, usize)> {
        let mut i = self.pos;
        let mut unsigned = false;
        let ident_at = |j: usize| -> Option<&str> {
            match &self.tokens.get(j)?.kind {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            }
        };
        // `const` is accepted and ignored.
        if ident_at(i) == Some("const") {
            i += 1;
        }
        match ident_at(i)? {
            "unsigned" => {
                unsigned = true;
                i += 1;
            }
            "signed" => {
                i += 1;
            }
            _ => {}
        }
        let ty = match ident_at(i) {
            Some("void") if !unsigned => {
                i += 1;
                Type::Void
            }
            Some("char") => {
                i += 1;
                Type::Char { unsigned }
            }
            Some("short") => {
                i += 1;
                if ident_at(i) == Some("int") {
                    i += 1;
                }
                Type::Short { unsigned }
            }
            Some("int") => {
                i += 1;
                Type::Int { unsigned }
            }
            Some("long") => {
                i += 1;
                if ident_at(i) == Some("long") {
                    i += 1;
                }
                if ident_at(i) == Some("int") {
                    i += 1;
                }
                Type::Long { unsigned }
            }
            Some("float") if !unsigned => {
                i += 1;
                Type::Float
            }
            Some("double") if !unsigned => {
                i += 1;
                Type::Double
            }
            _ if unsigned => Type::Int { unsigned: true },
            _ => return None,
        };
        Some((ty, i - self.pos))
    }

    fn parse_type(&mut self) -> Result<Type, FrontendError> {
        match self.peek_type() {
            Some((ty, n)) => {
                for _ in 0..n {
                    self.bump();
                }
                Ok(ty)
            }
            None => Err(self.error_here("expected type name")),
        }
    }

    // ------------------------------------------------------------------
    // Items
    // ------------------------------------------------------------------

    fn parse_item(&mut self) -> Result<Item, FrontendError> {
        let mut attrs = self.eat_attributes();
        if self.eat_ident("static") || self.eat_ident("extern") || self.eat_ident("inline") {
            // Storage classes carry no semantics for us.
        }
        let start_span = self.peek().span;
        let ty = self.parse_type()?;
        attrs.extend(self.eat_attributes());
        // Pointer return types are not in the subset; reject early.
        if matches!(self.peek().kind, TokenKind::Punct("*")) {
            return Err(self.error_here("pointer-typed globals/returns are not supported"));
        }
        let (name, _) = self.expect_ident()?;
        attrs.extend(self.eat_attributes());

        if matches!(self.peek().kind, TokenKind::Punct("(")) {
            self.parse_function_rest(ty, name, attrs, start_span)
                .map(Item::Function)
        } else {
            self.parse_global_rest(ty, name, start_span)
                .map(Item::Global)
        }
    }

    fn parse_global_rest(
        &mut self,
        ty: Type,
        name: String,
        start_span: Span,
    ) -> Result<GlobalVar, FrontendError> {
        let mut dims = Vec::new();
        while self.eat_punct("[") {
            let e = self.parse_expr()?;
            let v = e
                .const_int()
                .ok_or_else(|| self.error_here("global array dimension must be constant"))?;
            self.expect_punct("]")?;
            dims.push(v);
        }
        let attrs = self.eat_attributes();
        let alignment = attrs.iter().find_map(|a| {
            a.strip_prefix("aligned(")
                .and_then(|s| s.strip_suffix(')'))
                .and_then(|s| s.trim().parse().ok())
        });
        let init = if self.eat_punct("=") {
            if matches!(self.peek().kind, TokenKind::Punct("{")) {
                // Aggregate initializers are skipped (values don't matter to timing).
                self.skip_braced_initializer()?;
                None
            } else {
                Some(self.parse_assignment_expr()?)
            }
        } else {
            None
        };
        let end_span = self.expect_punct(";")?;
        Ok(GlobalVar {
            ty,
            name,
            dims,
            alignment,
            init,
            span: start_span.merge(end_span),
        })
    }

    fn skip_braced_initializer(&mut self) -> Result<(), FrontendError> {
        self.expect_punct("{")?;
        let mut depth = 1;
        while depth > 0 {
            match &self.bump().kind {
                TokenKind::Punct("{") => depth += 1,
                TokenKind::Punct("}") => depth -= 1,
                TokenKind::Eof => return Err(self.error_here("unterminated initializer")),
                _ => {}
            }
        }
        Ok(())
    }

    fn parse_function_rest(
        &mut self,
        return_ty: Type,
        name: String,
        attributes: Vec<String>,
        start_span: Span,
    ) -> Result<Function, FrontendError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                if self.eat_ident("void") && matches!(self.peek().kind, TokenKind::Punct(")")) {
                    self.bump();
                    break;
                }
                let ty = self.parse_type()?;
                let mut is_pointer = false;
                while self.eat_punct("*") {
                    is_pointer = true;
                }
                let (pname, _) = self.expect_ident()?;
                // `int a[]` / `int a[N]` parameters are pointers in C.
                while self.eat_punct("[") {
                    is_pointer = true;
                    if !self.eat_punct("]") {
                        self.parse_expr()?;
                        self.expect_punct("]")?;
                    }
                }
                params.push(Param {
                    ty,
                    name: pname,
                    is_pointer,
                });
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.parse_block()?;
        let span = start_span.merge(body.span);
        Ok(Function {
            return_ty,
            name,
            params,
            body,
            attributes,
            span,
        })
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn parse_block(&mut self) -> Result<Stmt, FrontendError> {
        let open = self.expect_punct("{")?;
        let mut stmts = Vec::new();
        loop {
            if matches!(self.peek().kind, TokenKind::Punct("}")) {
                let close = self.bump().span;
                return Ok(Stmt::new(StmtKind::Block(stmts), open.merge(close)));
            }
            if self.at_eof() {
                return Err(self.error_here("unterminated block"));
            }
            stmts.push(self.parse_stmt()?);
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, FrontendError> {
        // A pragma binds to the next loop statement.
        if let TokenKind::PragmaClangLoop {
            vectorize_width,
            interleave_count,
        } = self.peek().kind
        {
            let pspan = self.bump().span;
            let mut stmt = self.parse_stmt()?;
            match &mut stmt.kind {
                StmtKind::For { pragma, .. } | StmtKind::While { pragma, .. } => {
                    *pragma = Some(LoopPragma {
                        vectorize_width,
                        interleave_count,
                    });
                    // The statement span deliberately starts at the loop
                    // keyword, not the pragma: loop extraction reports
                    // `header_line` for pragma (re)injection and the
                    // embedding text must not include the hint itself.
                    let _ = pspan;
                    return Ok(stmt);
                }
                _ => {
                    return Err(FrontendError::new(
                        "#pragma clang loop must precede a loop",
                        pspan.line,
                        pspan.col,
                    ))
                }
            }
        }

        let tok = self.peek().clone();
        match &tok.kind {
            TokenKind::Punct("{") => self.parse_block(),
            TokenKind::Punct(";") => {
                let span = self.bump().span;
                Ok(Stmt::new(StmtKind::Empty, span))
            }
            TokenKind::Ident(kw) => match kw.as_str() {
                "for" => self.parse_for(),
                "while" => self.parse_while(),
                "if" => self.parse_if(),
                "return" => {
                    let start = self.bump().span;
                    if self.eat_punct(";") {
                        return Ok(Stmt::new(StmtKind::Return(None), start));
                    }
                    let e = self.parse_expr()?;
                    let end = self.expect_punct(";")?;
                    Ok(Stmt::new(StmtKind::Return(Some(e)), start.merge(end)))
                }
                "break" => {
                    let start = self.bump().span;
                    let end = self.expect_punct(";")?;
                    Ok(Stmt::new(StmtKind::Break, start.merge(end)))
                }
                "continue" => {
                    let start = self.bump().span;
                    let end = self.expect_punct(";")?;
                    Ok(Stmt::new(StmtKind::Continue, start.merge(end)))
                }
                _ if self.peek_type().is_some() => self.parse_decl_stmt(),
                _ => self.parse_expr_stmt(),
            },
            _ => self.parse_expr_stmt(),
        }
    }

    fn parse_decl_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.peek().span;
        let ty = self.parse_type()?;
        let mut declarators = Vec::new();
        loop {
            let (name, _) = self.expect_ident()?;
            let mut dims = Vec::new();
            while self.eat_punct("[") {
                if self.eat_punct("]") {
                    dims.push(None);
                    continue;
                }
                let e = self.parse_expr()?;
                dims.push(e.const_int());
                self.expect_punct("]")?;
            }
            let init = if self.eat_punct("=") {
                Some(self.parse_assignment_expr()?)
            } else {
                None
            };
            declarators.push(Declarator { name, dims, init });
            if !self.eat_punct(",") {
                break;
            }
        }
        let end = self.expect_punct(";")?;
        Ok(Stmt::new(
            StmtKind::Decl { ty, declarators },
            start.merge(end),
        ))
    }

    fn parse_expr_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let e = self.parse_expr()?;
        let end = self.expect_punct(";")?;
        let span = e.span.merge(end);
        Ok(Stmt::new(StmtKind::Expr(e), span))
    }

    fn parse_for(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.bump().span; // `for`
        self.expect_punct("(")?;
        let init = if self.eat_punct(";") {
            None
        } else if self.peek_type().is_some() {
            Some(Box::new(self.parse_decl_stmt()?))
        } else {
            let e = self.parse_expr()?;
            self.expect_punct(";")?;
            let span = e.span;
            Some(Box::new(Stmt::new(StmtKind::Expr(e), span)))
        };
        let cond = if matches!(self.peek().kind, TokenKind::Punct(";")) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect_punct(";")?;
        let step = if matches!(self.peek().kind, TokenKind::Punct(")")) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect_punct(")")?;
        let body = Box::new(self.parse_stmt()?);
        let span = start.merge(body.span);
        Ok(Stmt::new(
            StmtKind::For {
                init,
                cond,
                step,
                body,
                pragma: None,
            },
            span,
        ))
    }

    fn parse_while(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.bump().span; // `while`
        self.expect_punct("(")?;
        let cond = self.parse_expr()?;
        self.expect_punct(")")?;
        let body = Box::new(self.parse_stmt()?);
        let span = start.merge(body.span);
        Ok(Stmt::new(
            StmtKind::While {
                cond,
                body,
                pragma: None,
            },
            span,
        ))
    }

    fn parse_if(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.bump().span; // `if`
        self.expect_punct("(")?;
        let cond = self.parse_expr()?;
        self.expect_punct(")")?;
        let then_branch = Box::new(self.parse_stmt()?);
        let (else_branch, end_span) = if self.eat_ident("else") {
            let e = Box::new(self.parse_stmt()?);
            let sp = e.span;
            (Some(e), sp)
        } else {
            (None, then_branch.span)
        };
        Ok(Stmt::new(
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
            start.merge(end_span),
        ))
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    /// Full expression, including assignment.
    pub fn parse_expr(&mut self) -> Result<Expr, FrontendError> {
        self.parse_assignment_expr()
    }

    fn parse_assignment_expr(&mut self) -> Result<Expr, FrontendError> {
        let lhs = self.parse_ternary()?;
        let op = match self.peek().kind {
            TokenKind::Punct("=") => None,
            TokenKind::Punct("+=") => Some(BinaryOp::Add),
            TokenKind::Punct("-=") => Some(BinaryOp::Sub),
            TokenKind::Punct("*=") => Some(BinaryOp::Mul),
            TokenKind::Punct("/=") => Some(BinaryOp::Div),
            TokenKind::Punct("%=") => Some(BinaryOp::Rem),
            TokenKind::Punct("&=") => Some(BinaryOp::BitAnd),
            TokenKind::Punct("|=") => Some(BinaryOp::BitOr),
            TokenKind::Punct("^=") => Some(BinaryOp::BitXor),
            TokenKind::Punct("<<=") => Some(BinaryOp::Shl),
            TokenKind::Punct(">>=") => Some(BinaryOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let value = self.parse_assignment_expr()?;
        let span = lhs.span.merge(value.span);
        Ok(Expr::new(
            ExprKind::Assign {
                op,
                target: Box::new(lhs),
                value: Box::new(value),
            },
            span,
        ))
    }

    fn parse_ternary(&mut self) -> Result<Expr, FrontendError> {
        let cond = self.parse_binary(0)?;
        if !self.eat_punct("?") {
            return Ok(cond);
        }
        let then_expr = self.parse_expr()?;
        self.expect_punct(":")?;
        let else_expr = self.parse_assignment_expr()?;
        let span = cond.span.merge(else_expr.span);
        Ok(Expr::new(
            ExprKind::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
            },
            span,
        ))
    }

    fn binop_at(&self, min_prec: u8) -> Option<(BinaryOp, u8)> {
        let (op, prec) = match self.peek().kind {
            TokenKind::Punct("||") => (BinaryOp::LogOr, 1),
            TokenKind::Punct("&&") => (BinaryOp::LogAnd, 2),
            TokenKind::Punct("|") => (BinaryOp::BitOr, 3),
            TokenKind::Punct("^") => (BinaryOp::BitXor, 4),
            TokenKind::Punct("&") => (BinaryOp::BitAnd, 5),
            TokenKind::Punct("==") => (BinaryOp::Eq, 6),
            TokenKind::Punct("!=") => (BinaryOp::Ne, 6),
            TokenKind::Punct("<") => (BinaryOp::Lt, 7),
            TokenKind::Punct("<=") => (BinaryOp::Le, 7),
            TokenKind::Punct(">") => (BinaryOp::Gt, 7),
            TokenKind::Punct(">=") => (BinaryOp::Ge, 7),
            TokenKind::Punct("<<") => (BinaryOp::Shl, 8),
            TokenKind::Punct(">>") => (BinaryOp::Shr, 8),
            TokenKind::Punct("+") => (BinaryOp::Add, 9),
            TokenKind::Punct("-") => (BinaryOp::Sub, 9),
            TokenKind::Punct("*") => (BinaryOp::Mul, 10),
            TokenKind::Punct("/") => (BinaryOp::Div, 10),
            TokenKind::Punct("%") => (BinaryOp::Rem, 10),
            _ => return None,
        };
        (prec >= min_prec).then_some((op, prec))
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, FrontendError> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = self.binop_at(min_prec) {
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, FrontendError> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Punct("-") => {
                let start = self.bump().span;
                let operand = self.parse_unary()?;
                let span = start.merge(operand.span);
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnaryOp::Neg,
                        operand: Box::new(operand),
                    },
                    span,
                ))
            }
            TokenKind::Punct("+") => {
                self.bump();
                self.parse_unary()
            }
            TokenKind::Punct("!") => {
                let start = self.bump().span;
                let operand = self.parse_unary()?;
                let span = start.merge(operand.span);
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnaryOp::Not,
                        operand: Box::new(operand),
                    },
                    span,
                ))
            }
            TokenKind::Punct("~") => {
                let start = self.bump().span;
                let operand = self.parse_unary()?;
                let span = start.merge(operand.span);
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnaryOp::BitNot,
                        operand: Box::new(operand),
                    },
                    span,
                ))
            }
            TokenKind::Punct("++") | TokenKind::Punct("--") => {
                let delta = if matches!(tok.kind, TokenKind::Punct("++")) {
                    1
                } else {
                    -1
                };
                let start = self.bump().span;
                let target = self.parse_unary()?;
                let span = start.merge(target.span);
                Ok(Expr::new(
                    ExprKind::IncDec {
                        target: Box::new(target),
                        delta,
                        prefix: true,
                    },
                    span,
                ))
            }
            TokenKind::Punct("(") => {
                // Could be a cast `(int) x` or a parenthesized expression.
                let save = self.pos;
                self.bump();
                if let Some((ty, n)) = self.peek_type() {
                    // Only a cast when the type name is immediately followed
                    // by `)`; otherwise (e.g. `(int *) …`) fall back to a
                    // parenthesized expression parse below.
                    let after_ty = self.pos + n;
                    if matches!(
                        self.tokens.get(after_ty).map(|t| &t.kind),
                        Some(TokenKind::Punct(")"))
                    ) {
                        for _ in 0..n {
                            self.bump();
                        }
                        let close = self.expect_punct(")")?;
                        let operand = self.parse_unary()?;
                        let span = tok.span.merge(close).merge(operand.span);
                        return Ok(Expr::new(
                            ExprKind::Cast {
                                ty,
                                operand: Box::new(operand),
                            },
                            span,
                        ));
                    }
                }
                self.pos = save;
                self.parse_postfix()
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, FrontendError> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek().kind {
                TokenKind::Punct("[") => {
                    self.bump();
                    let index = self.parse_expr()?;
                    let close = self.expect_punct("]")?;
                    let span = e.span.merge(close);
                    e = Expr::new(
                        ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(index),
                        },
                        span,
                    );
                }
                TokenKind::Punct("++") | TokenKind::Punct("--") => {
                    let delta = if matches!(self.peek().kind, TokenKind::Punct("++")) {
                        1
                    } else {
                        -1
                    };
                    let end = self.bump().span;
                    let span = e.span.merge(end);
                    e = Expr::new(
                        ExprKind::IncDec {
                            target: Box::new(e),
                            delta,
                            prefix: false,
                        },
                        span,
                    );
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, FrontendError> {
        let tok = self.bump();
        match tok.kind {
            TokenKind::IntLit(v) => Ok(Expr::new(ExprKind::IntLit(v), tok.span)),
            TokenKind::CharLit(v) => Ok(Expr::new(ExprKind::IntLit(v), tok.span)),
            TokenKind::FloatLit(v) => Ok(Expr::new(ExprKind::FloatLit(v), tok.span)),
            TokenKind::Ident(name) => {
                if matches!(self.peek().kind, TokenKind::Punct("(")) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.parse_assignment_expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    let end = self
                        .tokens
                        .get(self.pos.saturating_sub(1))
                        .map(|t| t.span)
                        .unwrap_or(tok.span);
                    Ok(Expr::new(
                        ExprKind::Call { callee: name, args },
                        tok.span.merge(end),
                    ))
                } else {
                    Ok(Expr::new(ExprKind::Ident(name), tok.span))
                }
            }
            TokenKind::Punct("(") => {
                let e = self.parse_expr()?;
                let close = self.expect_punct(")")?;
                Ok(Expr::new(e.kind, tok.span.merge(close)))
            }
            other => Err(FrontendError::new(
                format!("expected expression (found {other})"),
                tok.span.line,
                tok.span.col,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::Lexer;

    fn parse_ok(src: &str) -> TranslationUnit {
        let tokens = Lexer::new(src).tokenize().unwrap();
        Parser::new(tokens).parse_translation_unit().unwrap()
    }

    fn expr_of(src: &str) -> Expr {
        let tokens = Lexer::new(src).tokenize().unwrap();
        let mut p = Parser::new(tokens);
        p.parse_expr().unwrap()
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = expr_of("a + b * c");
        match e.kind {
            ExprKind::Binary {
                op: BinaryOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(
                    rhs.kind,
                    ExprKind::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn precedence_shift_vs_compare() {
        // C: `a << b < c` parses as `(a << b) < c`.
        let e = expr_of("a << b < c");
        assert!(matches!(
            e.kind,
            ExprKind::Binary {
                op: BinaryOp::Lt,
                ..
            }
        ));
    }

    #[test]
    fn assignment_is_right_associative() {
        let e = expr_of("a = b = c");
        match e.kind {
            ExprKind::Assign { value, .. } => {
                assert!(matches!(value.kind, ExprKind::Assign { .. }));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn compound_assignment_carries_op() {
        let e = expr_of("sum += x");
        assert!(matches!(
            e.kind,
            ExprKind::Assign {
                op: Some(BinaryOp::Add),
                ..
            }
        ));
    }

    #[test]
    fn ternary_parses() {
        let e = expr_of("a > 3 ? 1 : 0");
        assert!(matches!(e.kind, ExprKind::Ternary { .. }));
    }

    #[test]
    fn cast_vs_parenthesized() {
        assert!(matches!(expr_of("(int) x").kind, ExprKind::Cast { .. }));
        assert!(matches!(expr_of("(x)").kind, ExprKind::Ident(_)));
        assert!(matches!(
            expr_of("(a + b) * c").kind,
            ExprKind::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn postincrement_parses() {
        let e = expr_of("i++");
        assert!(matches!(
            e.kind,
            ExprKind::IncDec {
                delta: 1,
                prefix: false,
                ..
            }
        ));
    }

    #[test]
    fn multidim_index_parses() {
        let e = expr_of("A[i][j][k]");
        let (name, idx) = e.as_array_access().unwrap();
        assert_eq!(name, "A");
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn call_with_args_parses() {
        let e = expr_of("fmaxf(a, 0.0)");
        match e.kind {
            ExprKind::Call { callee, args } => {
                assert_eq!(callee, "fmaxf");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn for_with_decl_init() {
        let tu = parse_ok("void f(int n) { for (int i = 0; i < n; i++) { } }");
        let f = tu.functions().next().unwrap();
        let mut count = 0;
        f.body.walk(&mut |s| {
            if s.is_loop() {
                count += 1;
            }
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn for_with_empty_clauses() {
        parse_ok("void f() { for (;;) { break; } }");
    }

    #[test]
    fn while_loop_parses() {
        let tu = parse_ok("void f(int n) { int i = 0; while (i < n) { i++; } }");
        let f = tu.functions().next().unwrap();
        let mut found = false;
        f.body.walk(&mut |s| {
            if matches!(s.kind, StmtKind::While { .. }) {
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn if_else_chain() {
        parse_ok("void f(int x) { if (x > 0) { x = 1; } else if (x < 0) { x = 2; } else x = 3; }");
    }

    #[test]
    fn global_with_multidim_and_alignment() {
        let tu = parse_ok("float A[64][32] __attribute__((aligned(64)));");
        let g = tu.global("A").unwrap();
        assert_eq!(g.dims, vec![64, 32]);
        assert_eq!(g.alignment, Some(64));
    }

    #[test]
    fn global_with_aggregate_init_is_accepted() {
        let tu = parse_ok("int lut[4] = {1, 2, 3, 4};");
        assert_eq!(tu.global("lut").unwrap().dims, vec![4]);
    }

    #[test]
    fn function_with_pointer_params() {
        let tu = parse_ok("void f(float *a, float b[], int n) { }");
        let f = tu.functions().next().unwrap();
        assert!(f.params[0].is_pointer);
        assert!(f.params[1].is_pointer);
        assert!(!f.params[2].is_pointer);
    }

    #[test]
    fn unsigned_and_long_types() {
        let tu = parse_ok("unsigned char t[16]; unsigned long big; long long x;");
        assert_eq!(tu.global("t").unwrap().ty, Type::Char { unsigned: true });
        assert_eq!(tu.global("big").unwrap().ty, Type::Long { unsigned: true });
        assert_eq!(tu.global("x").unwrap().ty, Type::Long { unsigned: false });
    }

    #[test]
    fn pragma_binds_to_loop() {
        let tu = parse_ok(
            "void f(int n) {\n#pragma clang loop vectorize_width(16) interleave_count(2)\nfor (int i = 0; i < n; i++) { } }",
        );
        let f = tu.functions().next().unwrap();
        let mut pragma = None;
        f.body.walk(&mut |s| {
            if let StmtKind::For { pragma: p, .. } = &s.kind {
                pragma = *p;
            }
        });
        assert_eq!(
            pragma,
            Some(LoopPragma {
                vectorize_width: 16,
                interleave_count: 2
            })
        );
    }

    #[test]
    fn pragma_without_loop_is_error() {
        let tokens = Lexer::new(
            "void f() {\n#pragma clang loop vectorize_width(4) interleave_count(1)\nint x; }",
        )
        .tokenize()
        .unwrap();
        assert!(Parser::new(tokens).parse_translation_unit().is_err());
    }

    #[test]
    fn error_on_garbage() {
        let tokens = Lexer::new("int f( {").tokenize().unwrap();
        assert!(Parser::new(tokens).parse_translation_unit().is_err());
    }

    #[test]
    fn decl_with_multiple_declarators() {
        let tu = parse_ok("void f() { int i = 0, j, k = 2; }");
        let f = tu.functions().next().unwrap();
        let mut n = 0;
        f.body.walk(&mut |s| {
            if let StmtKind::Decl { declarators, .. } = &s.kind {
                n = declarators.len();
            }
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn nested_loop_depths() {
        let tu = parse_ok(
            "void f(int n) { for (int i=0;i<n;i++) for (int j=0;j<n;j++) for (int k=0;k<n;k++) ; }",
        );
        let f = tu.functions().next().unwrap();
        let mut loops = 0;
        f.body.walk(&mut |s| {
            if s.is_loop() {
                loops += 1;
            }
        });
        assert_eq!(loops, 3);
    }
}
