//! Loop extraction: the first stage of the NeuroVectorizer pipeline.
//!
//! The paper's framework "reads the programs to extract the loops. The loop
//! texts are fed to the code embedding generator" (§3, Figure 3). Two details
//! matter and are reproduced here:
//!
//! * pragmas are injected **on the innermost loop** of a nest (§3), and
//! * the embedding input is **the body of the outermost enclosing loop**,
//!   which the authors found to work better than the innermost body alone
//!   (§3.3).

use serde::{Deserialize, Serialize};

use crate::ast::{Function, LoopPragma, Stmt, StmtKind, TranslationUnit};
use crate::lexer::Span;

/// One loop found in a translation unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractedLoop {
    /// Name of the enclosing function.
    pub function: String,
    /// Index of this loop in source order within the translation unit.
    pub loop_index: usize,
    /// Nesting depth: 0 for a top-level loop in the function.
    pub depth: usize,
    /// True when no other loop is nested inside this one.
    pub is_innermost: bool,
    /// Span of the whole loop statement (header + body).
    pub span: Span,
    /// Span of the outermost loop of the nest containing this loop.
    pub nest_span: Span,
    /// 1-based line of the loop header (`for`/`while` keyword) — where a
    /// pragma line would be inserted.
    pub header_line: u32,
    /// Source text of this loop.
    pub text: String,
    /// Source text of the outermost enclosing loop (the embedding input).
    pub nest_text: String,
    /// Pragma already attached to the loop, if any.
    pub pragma: Option<LoopPragma>,
}

impl ExtractedLoop {
    /// The text the code embedding generator should consume, following the
    /// paper's finding that the outer loop body works best for nests.
    pub fn embedding_text(&self) -> &str {
        &self.nest_text
    }
}

/// Extracts every loop from `tu`, in source order.
///
/// `source` must be the exact text `tu` was parsed from; it is used to slice
/// loop snippets.
pub fn extract_loops(tu: &TranslationUnit, source: &str) -> Vec<ExtractedLoop> {
    let mut out = Vec::new();
    for f in tu.functions() {
        extract_from_stmt(&f.body, f, source, 0, None, &mut out);
    }
    for (i, l) in out.iter_mut().enumerate() {
        l.loop_index = i;
    }
    out
}

/// Extracts loops from a single function.
pub fn extract_loops_in_function(f: &Function, source: &str) -> Vec<ExtractedLoop> {
    let mut out = Vec::new();
    extract_from_stmt(&f.body, f, source, 0, None, &mut out);
    for (i, l) in out.iter_mut().enumerate() {
        l.loop_index = i;
    }
    out
}

fn extract_from_stmt(
    stmt: &Stmt,
    f: &Function,
    source: &str,
    depth: usize,
    nest_root: Option<Span>,
    out: &mut Vec<ExtractedLoop>,
) {
    match &stmt.kind {
        StmtKind::For { body, pragma, .. } | StmtKind::While { body, pragma, .. } => {
            let root = nest_root.unwrap_or(stmt.span);
            let mut has_inner = false;
            body.walk(&mut |s| {
                if !std::ptr::eq(s, body.as_ref()) && s.is_loop() {
                    has_inner = true;
                }
            });
            // `walk` visits the body itself; a loop body that *is* a loop
            // statement still counts as an inner loop, handled above because
            // `body` is never equal to a nested `for` except when the body is
            // directly a loop. Re-check precisely:
            if body.is_loop() {
                has_inner = true;
            }
            out.push(ExtractedLoop {
                function: f.name.clone(),
                loop_index: 0,
                depth,
                is_innermost: !has_inner,
                span: stmt.span,
                nest_span: root,
                header_line: stmt.span.line,
                text: stmt.span.text(source).to_string(),
                nest_text: root.text(source).to_string(),
                pragma: *pragma,
            });
            extract_from_stmt(body, f, source, depth + 1, Some(root), out);
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            // Loops under conditionals start a fresh nest for extraction
            // purposes only if we are not already inside a loop.
            extract_from_stmt(then_branch, f, source, depth, nest_root, out);
            if let Some(e) = else_branch {
                extract_from_stmt(e, f, source, depth, nest_root, out);
            }
        }
        StmtKind::Block(stmts) => {
            for s in stmts {
                extract_from_stmt(s, f, source, depth, nest_root, out);
            }
        }
        _ => {}
    }
}

/// Finds the innermost loops of every nest — the loops the agent vectorizes.
pub fn innermost_loops(tu: &TranslationUnit, source: &str) -> Vec<ExtractedLoop> {
    extract_loops(tu, source)
        .into_iter()
        .filter(|l| l.is_innermost)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_translation_unit;

    const MATMUL: &str = "float A[64][64]; float B[64][64]; float C[64][64];
void mm(int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            float s = 0;
            for (int k = 0; k < n; k++) {
                s += A[i][k] * B[k][j];
            }
            C[i][j] = s;
        }
    }
}";

    #[test]
    fn finds_all_loops_with_depths() {
        let tu = parse_translation_unit(MATMUL).unwrap();
        let loops = extract_loops(&tu, MATMUL);
        assert_eq!(loops.len(), 3);
        assert_eq!(loops[0].depth, 0);
        assert_eq!(loops[1].depth, 1);
        assert_eq!(loops[2].depth, 2);
    }

    #[test]
    fn innermost_flag_is_exact() {
        let tu = parse_translation_unit(MATMUL).unwrap();
        let loops = extract_loops(&tu, MATMUL);
        assert!(!loops[0].is_innermost);
        assert!(!loops[1].is_innermost);
        assert!(loops[2].is_innermost);
        assert_eq!(innermost_loops(&tu, MATMUL).len(), 1);
    }

    #[test]
    fn nest_text_is_outermost_loop() {
        let tu = parse_translation_unit(MATMUL).unwrap();
        let loops = extract_loops(&tu, MATMUL);
        let inner = &loops[2];
        assert!(inner.text.starts_with("for (int k"));
        assert!(inner.nest_text.starts_with("for (int i"));
        assert_eq!(inner.embedding_text(), inner.nest_text);
    }

    #[test]
    fn sibling_loops_are_separate_nests() {
        let src = "int a[64]; int b[64];
void f(int n) {
    for (int i = 0; i < n; i++) { a[i] = 0; }
    for (int j = 0; j < n; j++) { b[j] = 1; }
}";
        let tu = parse_translation_unit(src).unwrap();
        let loops = extract_loops(&tu, src);
        assert_eq!(loops.len(), 2);
        assert!(loops.iter().all(|l| l.is_innermost));
        assert!(loops[0].nest_text.contains("a[i]"));
        assert!(loops[1].nest_text.contains("b[j]"));
        assert_ne!(loops[0].nest_span, loops[1].nest_span);
    }

    #[test]
    fn header_line_points_at_for() {
        let src = "int a[8];\nvoid f() {\n\n    for (int i = 0; i < 8; i++) { a[i] = i; }\n}";
        let tu = parse_translation_unit(src).unwrap();
        let loops = extract_loops(&tu, src);
        assert_eq!(loops[0].header_line, 4);
    }

    #[test]
    fn loop_under_if_is_extracted() {
        let src = "int a[64];\nvoid f(int n, int flag) { if (flag) { for (int i=0;i<n;i++) { a[i] = 0; } } }";
        let tu = parse_translation_unit(src).unwrap();
        let loops = extract_loops(&tu, src);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].is_innermost);
    }

    #[test]
    fn while_loops_are_extracted() {
        let src = "void f(int n) { int i = 0; while (i < n) { i++; } }";
        let tu = parse_translation_unit(src).unwrap();
        let loops = extract_loops(&tu, src);
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn loop_indices_are_sequential_across_functions() {
        let src = "int a[8];\nvoid f() { for (int i=0;i<8;i++) a[i]=0; }\nvoid g() { for (int i=0;i<8;i++) a[i]=1; }";
        let tu = parse_translation_unit(src).unwrap();
        let loops = extract_loops(&tu, src);
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].loop_index, 0);
        assert_eq!(loops[1].loop_index, 1);
        assert_eq!(loops[0].function, "f");
        assert_eq!(loops[1].function, "g");
    }

    #[test]
    fn body_directly_a_loop_counts_as_nested() {
        let src =
            "int a[64];\nvoid f(int n) { for (int i=0;i<n;i++) for (int j=0;j<n;j++) a[j] = i; }";
        let tu = parse_translation_unit(src).unwrap();
        let loops = extract_loops(&tu, src);
        assert_eq!(loops.len(), 2);
        assert!(!loops[0].is_innermost);
        assert!(loops[1].is_innermost);
        assert_eq!(loops[1].nest_text, loops[0].text);
    }

    #[test]
    fn existing_pragma_is_reported() {
        let src = "int a[64]; int b[64];\nvoid f(int n) {\n#pragma clang loop vectorize_width(4) interleave_count(2)\nfor (int i=0;i<n;i++) { a[i] = b[i]; } }";
        let tu = parse_translation_unit(src).unwrap();
        let loops = extract_loops(&tu, src);
        assert_eq!(
            loops[0].pragma,
            Some(LoopPragma {
                vectorize_width: 4,
                interleave_count: 2
            })
        );
    }
}
