//! A from-scratch frontend for the C subset used by the NeuroVectorizer
//! paper's loop kernels.
//!
//! The NeuroVectorizer pipeline (Haj-Ali et al., CGO 2020) consumes *source
//! text*: it extracts loops from C files, feeds the loop text to a code
//! embedding generator, and injects
//! `#pragma clang loop vectorize_width(VF) interleave_count(IF)` hints ahead
//! of the innermost loops. This crate provides everything needed for that
//! round trip:
//!
//! * [`lexer`] / [`parser`] — tokenize and parse the C subset (global array
//!   declarations with attributes, functions, `for`/`while`/`if`, ternaries,
//!   casts, compound assignment, multi-dimensional array indexing, simple
//!   `#define` object macros, and `#pragma clang loop` hints).
//! * [`ast`] — the abstract syntax tree with source spans.
//! * [`extract`] — find every loop nest, its innermost loops, and the source
//!   text the embedding generator should see.
//! * [`pragma`] — splice vectorization pragmas into source text without
//!   disturbing anything else.
//! * [`printer`] — render an AST back to compilable C.
//!
//! # Example
//!
//! ```
//! use nvc_frontend::{parse_translation_unit, extract::extract_loops};
//!
//! # fn main() -> Result<(), nvc_frontend::FrontendError> {
//! let src = r#"
//! int a[1024]; int b[1024];
//! void kernel(int n) {
//!     for (int i = 0; i < n; i++) { a[i] = b[i] * 2; }
//! }
//! "#;
//! let tu = parse_translation_unit(src)?;
//! let loops = extract_loops(&tu, src);
//! assert_eq!(loops.len(), 1);
//! assert!(loops[0].is_innermost);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod extract;
pub mod lexer;
pub mod parser;
pub mod pragma;
pub mod printer;

use std::error::Error;
use std::fmt;

pub use ast::{
    BinaryOp, Expr, ExprKind, Function, GlobalVar, Item, LoopPragma, Stmt, StmtKind,
    TranslationUnit, Type, UnaryOp,
};
pub use extract::{extract_loops, ExtractedLoop};
pub use lexer::{Lexer, Span, Token, TokenKind};
pub use parser::Parser;
pub use pragma::{inject_pragma, inject_pragmas, strip_pragmas};
pub use printer::print_translation_unit;

/// Any error produced while lexing or parsing source text.
///
/// The message is human readable and includes 1-based line/column
/// information pointing at the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    message: String,
    line: u32,
    col: u32,
}

impl FrontendError {
    pub(crate) fn new(message: impl Into<String>, line: u32, col: u32) -> Self {
        Self {
            message: message.into(),
            line,
            col,
        }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based source column of the error.
    pub fn col(&self) -> u32 {
        self.col
    }

    /// The diagnostic text without position information.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for FrontendError {}

/// Parses a complete source file into a [`TranslationUnit`].
///
/// This is the main entry point of the crate. Object-like `#define` macros
/// are expanded, comments are skipped, and `#pragma clang loop` lines are
/// attached to the loop that follows them.
///
/// # Errors
///
/// Returns a [`FrontendError`] when the source does not conform to the
/// supported C subset.
pub fn parse_translation_unit(source: &str) -> Result<TranslationUnit, FrontendError> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser::new(tokens).parse_translation_unit()
}

/// Parses a single statement (typically a loop) from source text.
///
/// Useful for tests and for round-tripping extracted loop snippets.
///
/// # Errors
///
/// Returns a [`FrontendError`] when the snippet is not a valid statement.
pub fn parse_statement(source: &str) -> Result<Stmt, FrontendError> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser::new(tokens).parse_single_statement()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_includes_position() {
        let err = FrontendError::new("unexpected token", 3, 7);
        assert_eq!(err.to_string(), "3:7: unexpected token");
        assert_eq!(err.line(), 3);
        assert_eq!(err.col(), 7);
    }

    #[test]
    fn parse_paper_example1_dataset_loop() {
        // Example #1 from §3.2 of the paper.
        let src = r#"
int assign1[4096]; int assign2[4096]; int assign3[4096];
short short_a[4096]; short short_b[4096]; short short_c[4096];
void example(int N) {
    int i;
    #pragma clang loop vectorize_width(4) interleave_count(2)
    for (i = 0; i < N-1; i+=2) {
        assign1[i] = (int) short_a[i];
        assign1[i+1] = (int) short_a[i+1];
        assign2[i] = (int) short_b[i];
        assign2[i+1] = (int) short_b[i+1];
        assign3[i] = (int) short_c[i];
        assign3[i+1] = (int) short_c[i+1];
    }
}
"#;
        let tu = parse_translation_unit(src).expect("paper example must parse");
        assert_eq!(tu.functions().count(), 1);
        let loops = extract_loops(&tu, src);
        assert_eq!(loops.len(), 1);
        assert_eq!(
            loops[0].pragma,
            Some(LoopPragma {
                vectorize_width: 4,
                interleave_count: 2
            })
        );
    }

    #[test]
    fn parse_paper_example4_matmul() {
        // Example #4 from §3.2: triply nested matmul with a float reduction.
        let src = r#"
float A[128][128]; float B[128][128]; float C[128][128];
void example(int M, int L, int N, float alpha) {
    int i; int j; int k;
    for (i = 0; i < M; i++) {
        for (j = 0; j < L; j++) {
            float sum = 0;
            for (k = 0; k < N; k++) {
                sum += alpha*A[i][k] * B[k][j];
            }
            C[i][j] = sum;
        }
    }
}
"#;
        let tu = parse_translation_unit(src).expect("matmul must parse");
        let loops = extract_loops(&tu, src);
        assert_eq!(loops.len(), 3);
        assert_eq!(loops.iter().filter(|l| l.is_innermost).count(), 1);
        let inner = loops.iter().find(|l| l.is_innermost).unwrap();
        assert_eq!(inner.depth, 2);
    }

    #[test]
    fn parse_paper_example3_predicate() {
        // Example #3 from §3.2: predicated store via ternary with macro bound.
        let src = r#"
#define MAX 255
int a[8192]; int b[8192];
void example(int N) {
    int i;
    for (i=0; i<N*2; i++){
        int j = a[i];
        b[i] = (j > MAX ? MAX : 0);
    }
}
"#;
        let tu = parse_translation_unit(src).expect("predicate example must parse");
        let loops = extract_loops(&tu, src);
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn parse_paper_example5_complex_multiply() {
        // Example #5 from §3.2: strided (2*i) accesses.
        let src = r#"
float a[4096]; float b[8192]; float c[8192]; float d[4096];
void example(int N) {
    int i;
    for (i = 0; i < N/2-1; i++){
        a[i] = b[2*i+1] * c[2*i+1] - b[2*i] * c[2*i];
        d[i] = b[2*i] * c[2*i+1] + b[2*i+1] * c[2*i];
    }
}
"#;
        let tu = parse_translation_unit(src).expect("strided example must parse");
        assert_eq!(extract_loops(&tu, src).len(), 1);
    }

    #[test]
    fn parse_dot_product_motivating_kernel() {
        // The §2.1 motivating kernel, attributes included.
        let src = r#"
int vec[512] __attribute__((aligned(16)));
__attribute__((noinline))
int example1() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i]*vec[i];
    }
    return sum;
}
"#;
        let tu = parse_translation_unit(src).expect("dot product must parse");
        let f = tu.functions().next().unwrap();
        assert_eq!(f.name, "example1");
        let loops = extract_loops(&tu, src);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].is_innermost);
    }
}
