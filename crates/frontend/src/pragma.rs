//! Pragma injection — how the agent communicates its decision to the
//! compiler.
//!
//! Figure 4 of the paper shows the agent automatically inserting
//! `#pragma clang loop vectorize_width(VF) interleave_count(IF)` directly
//! above the targeted (innermost) loop. We reproduce that as a *text splice*:
//! the original file is preserved byte-for-byte except for the inserted
//! pragma line, exactly like the paper's framework edits source files.

use crate::ast::LoopPragma;

/// Injects `pragma` on its own line immediately above `header_line`
/// (1-based), using the indentation of that line.
///
/// Any existing `#pragma clang loop` line directly above the header is
/// replaced, so repeated injection is idempotent rather than accumulating
/// stale hints.
pub fn inject_pragma(source: &str, header_line: u32, pragma: LoopPragma) -> String {
    let lines: Vec<&str> = source.split('\n').collect();
    let idx = (header_line as usize).saturating_sub(1).min(lines.len());
    let indent: String = lines
        .get(idx)
        .map(|l| l.chars().take_while(|c| c.is_whitespace()).collect())
        .unwrap_or_default();

    let mut out = Vec::with_capacity(lines.len() + 1);
    for (i, line) in lines.iter().enumerate() {
        if i == idx {
            // Replace an existing hint directly above the loop.
            if let Some(prev) = out.last() {
                let prev: &String = prev;
                if prev.trim_start().starts_with("#pragma clang loop") {
                    out.pop();
                }
            }
            out.push(format!("{indent}{pragma}"));
        }
        out.push((*line).to_string());
    }
    if idx == lines.len() {
        out.push(format!("{indent}{pragma}"));
    }
    out.join("\n")
}

/// Injects a pragma above each `(header_line, pragma)` site, splicing
/// bottom-up so earlier header lines stay valid while later ones shift.
/// The input order does not matter.
pub fn inject_pragmas(source: &str, sites: &[(u32, LoopPragma)]) -> String {
    let mut ordered: Vec<&(u32, LoopPragma)> = sites.iter().collect();
    ordered.sort_by(|a, b| b.0.cmp(&a.0));
    let mut out = source.to_string();
    for (line, pragma) in ordered {
        out = inject_pragma(&out, *line, *pragma);
    }
    out
}

/// Removes every `#pragma clang loop` line from `source`.
///
/// Used to obtain the baseline variant of a file (the compiler's own cost
/// model decides) from an agent-annotated variant.
pub fn strip_pragmas(source: &str) -> String {
    source
        .split('\n')
        .filter(|l| !l.trim_start().starts_with("#pragma clang loop"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_loops;
    use crate::parse_translation_unit;

    const SRC: &str = "int a[64]; int b[64];
void f(int n) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] * 2;
    }
}";

    fn pragma(vf: u32, ifc: u32) -> LoopPragma {
        LoopPragma {
            vectorize_width: vf,
            interleave_count: ifc,
        }
    }

    #[test]
    fn inject_places_pragma_above_loop_with_indent() {
        let tu = parse_translation_unit(SRC).unwrap();
        let loops = extract_loops(&tu, SRC);
        let out = inject_pragma(SRC, loops[0].header_line, pragma(8, 4));
        let lines: Vec<&str> = out.split('\n').collect();
        assert_eq!(
            lines[2],
            "    #pragma clang loop vectorize_width(8) interleave_count(4)"
        );
        assert!(lines[3].trim_start().starts_with("for (int i"));
    }

    #[test]
    fn injected_source_reparses_with_pragma() {
        let tu = parse_translation_unit(SRC).unwrap();
        let loops = extract_loops(&tu, SRC);
        let out = inject_pragma(SRC, loops[0].header_line, pragma(16, 2));
        let tu2 = parse_translation_unit(&out).unwrap();
        let loops2 = extract_loops(&tu2, &out);
        assert_eq!(loops2[0].pragma, Some(pragma(16, 2)));
    }

    #[test]
    fn reinjection_replaces_existing_pragma() {
        let tu = parse_translation_unit(SRC).unwrap();
        let loops = extract_loops(&tu, SRC);
        let once = inject_pragma(SRC, loops[0].header_line, pragma(4, 1));
        // After the first injection the header moved one line down.
        let tu2 = parse_translation_unit(&once).unwrap();
        let loops2 = extract_loops(&tu2, &once);
        let twice = inject_pragma(&once, loops2[0].header_line, pragma(64, 8));
        assert_eq!(twice.matches("#pragma clang loop").count(), 1);
        assert!(twice.contains("vectorize_width(64)"));
        assert!(!twice.contains("vectorize_width(4)"));
    }

    #[test]
    fn strip_removes_all_loop_pragmas() {
        let tu = parse_translation_unit(SRC).unwrap();
        let loops = extract_loops(&tu, SRC);
        let out = inject_pragma(SRC, loops[0].header_line, pragma(8, 4));
        let stripped = strip_pragmas(&out);
        assert_eq!(stripped, SRC);
    }

    #[test]
    fn inject_at_nested_innermost() {
        let src = "float A[64][64];
void f(int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            A[i][j] = 0;
        }
    }
}";
        let tu = parse_translation_unit(src).unwrap();
        let loops = extract_loops(&tu, src);
        let inner = loops.iter().find(|l| l.is_innermost).unwrap();
        let out = inject_pragma(src, inner.header_line, pragma(8, 2));
        let lines: Vec<&str> = out.split('\n').collect();
        assert!(lines[3].trim_start().starts_with("#pragma clang loop"));
        assert!(lines[4].trim_start().starts_with("for (int j"));
        // Outer loop untouched.
        assert!(lines[2].trim_start().starts_with("for (int i"));
    }

    #[test]
    fn inject_past_end_appends() {
        let out = inject_pragma("int x;", 99, pragma(2, 1));
        assert!(out.ends_with("interleave_count(1)"));
    }

    #[test]
    fn non_loop_pragmas_survive_strip() {
        let src = "#pragma once\nint x;";
        assert_eq!(strip_pragmas(src), src);
    }
}
