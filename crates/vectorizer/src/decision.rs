//! The `(VF, IF)` decision type and the discrete pragma action space.

use std::fmt;

use serde::{Deserialize, Serialize};

use nvc_machine::TargetConfig;

/// A vectorization decision: the two factors the agent chooses (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorDecision {
    /// Vectorization factor (instructions packed together).
    pub vf: u32,
    /// Interleave factor (iterations interleaved / accumulator copies).
    pub if_: u32,
}

impl VectorDecision {
    /// Creates a decision; factors are rounded down to powers of two and
    /// clamped to at least 1 (LLVM only supports power-of-two factors,
    /// §3.3).
    pub fn new(vf: u32, if_: u32) -> Self {
        Self {
            vf: floor_pow2(vf.max(1)),
            if_: floor_pow2(if_.max(1)),
        }
    }

    /// The scalar (non-vectorized, non-interleaved) decision.
    pub fn scalar() -> Self {
        Self { vf: 1, if_: 1 }
    }

    /// Elements processed per vector block.
    pub fn elems_per_block(self) -> u64 {
        u64::from(self.vf) * u64::from(self.if_)
    }
}

impl fmt::Display for VectorDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(VF={}, IF={})", self.vf, self.if_)
    }
}

/// The discrete action space of the RL agent: the cross product of the
/// target's VF and IF candidates (eq. 3 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionSpace {
    /// VF choices, ascending powers of two.
    pub vfs: Vec<u32>,
    /// IF choices, ascending powers of two.
    pub ifs: Vec<u32>,
}

impl ActionSpace {
    /// Builds the action space published by `target`.
    pub fn for_target(target: &TargetConfig) -> Self {
        Self {
            vfs: target.vf_candidates(),
            ifs: target.if_candidates(),
        }
    }

    /// Number of `(VF, IF)` combinations.
    pub fn len(&self) -> usize {
        self.vfs.len() * self.ifs.len()
    }

    /// True when the space is empty (degenerate targets only).
    pub fn is_empty(&self) -> bool {
        self.vfs.is_empty() || self.ifs.is_empty()
    }

    /// Decision for a flat action index (row-major over VF then IF).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn decision(&self, index: usize) -> VectorDecision {
        assert!(index < self.len(), "action index out of range");
        let vf = self.vfs[index / self.ifs.len()];
        let if_ = self.ifs[index % self.ifs.len()];
        VectorDecision { vf, if_ }
    }

    /// Decision from a pair of per-dimension indices.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn decision_from_pair(&self, vf_idx: usize, if_idx: usize) -> VectorDecision {
        VectorDecision {
            vf: self.vfs[vf_idx],
            if_: self.ifs[if_idx],
        }
    }

    /// Flat index of a decision, if it belongs to the space.
    pub fn index_of(&self, d: VectorDecision) -> Option<usize> {
        let vi = self.vfs.iter().position(|&v| v == d.vf)?;
        let ii = self.ifs.iter().position(|&v| v == d.if_)?;
        Some(vi * self.ifs.len() + ii)
    }

    /// Iterates over every decision in the space.
    pub fn iter(&self) -> impl Iterator<Item = VectorDecision> + '_ {
        (0..self.len()).map(|i| self.decision(i))
    }
}

fn floor_pow2(x: u32) -> u32 {
    1 << (31 - x.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rounds_to_pow2() {
        assert_eq!(VectorDecision::new(5, 3), VectorDecision { vf: 4, if_: 2 });
        assert_eq!(VectorDecision::new(0, 0), VectorDecision { vf: 1, if_: 1 });
        assert_eq!(
            VectorDecision::new(64, 16),
            VectorDecision { vf: 64, if_: 16 }
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(VectorDecision::new(8, 2).to_string(), "(VF=8, IF=2)");
    }

    #[test]
    fn action_space_size_and_roundtrip() {
        let t = TargetConfig::i7_8559u();
        let sp = ActionSpace::for_target(&t);
        assert_eq!(sp.len(), 7 * 5);
        for i in 0..sp.len() {
            let d = sp.decision(i);
            assert_eq!(sp.index_of(d), Some(i));
        }
    }

    #[test]
    fn decision_from_pair_matches_flat() {
        let t = TargetConfig::i7_8559u();
        let sp = ActionSpace::for_target(&t);
        let d1 = sp.decision_from_pair(3, 2);
        assert_eq!(d1, VectorDecision { vf: 8, if_: 4 });
        assert_eq!(sp.decision(3 * sp.ifs.len() + 2), d1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let t = TargetConfig::i7_8559u();
        ActionSpace::for_target(&t).decision(9999);
    }

    #[test]
    fn iter_covers_all() {
        let t = TargetConfig::i7_8559u();
        let sp = ActionSpace::for_target(&t);
        assert_eq!(sp.iter().count(), sp.len());
        assert!(sp.iter().any(|d| d.vf == 64 && d.if_ == 16));
    }

    #[test]
    fn elems_per_block() {
        assert_eq!(VectorDecision::new(16, 4).elems_per_block(), 64);
        assert_eq!(VectorDecision::scalar().elems_per_block(), 1);
    }
}
