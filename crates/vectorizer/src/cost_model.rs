//! The baseline: an LLVM-style linear per-instruction cost model.
//!
//! "Compilers are designed today to use fixed-cost models that are based on
//! heuristics to make vectorization decisions on loops. However, these
//! models are unable to capture the data dependency, the computation graph,
//! and/or the organization of instructions" (§Abstract). This module is
//! that cost model, on purpose:
//!
//! * every instruction has a context-free cost from a table;
//! * vector cost = table cost × physical registers needed — *linear* in VF;
//! * no recurrence latency, no cache modelling, no amortization of loop
//!   overhead, pessimistic surcharges for predication and non-unit strides
//!   (as LLVM's TTI is);
//! * VF is chosen to minimize cost **per lane** among `1 … native_lanes`
//!   (LLVM does not consider VFs beyond the register width);
//! * IF comes from a separate small heuristic (reduction loops interleave
//!   ×2, tiny bodies ×2, bounded by trip count), mirroring LLVM's
//!   interleave-count logic.
//!
//! The gap between these decisions and the simulated optimum is exactly the
//! headroom the RL agent exploits (Figures 1–2 of the paper).

use nvc_ir::{AccessKind, Instr, LoopIr, ScalarType, TripCount};
use nvc_machine::TargetConfig;

use crate::decision::VectorDecision;
use crate::table;

/// Expected cost (abstract units) of one loop iteration vectorized at `vf`,
/// per the linear model, divided by `vf` — i.e. cost per source element.
pub fn expected_cost_per_lane(ir: &LoopIr, vf: u32, target: &TargetConfig) -> f64 {
    let mut cost = 0.0;
    for instr in &ir.body {
        cost += instr_cost(instr, ir, vf, target);
    }
    // Loop overhead (increment, compare, branch) charged once per vector
    // iteration — the model knows unrolling amortizes this, linearly.
    cost += 2.0;
    cost / f64::from(vf)
}

/// Widening factor: physical registers for a VF-wide value of `ty`.
fn width_factor(vf: u32, ty: ScalarType, target: &TargetConfig) -> f64 {
    (f64::from(vf) / f64::from(target.native_lanes(ty.size_bytes(), ty.is_float())))
        .ceil()
        .max(1.0)
}

fn instr_cost(instr: &Instr, ir: &LoopIr, vf: u32, target: &TargetConfig) -> f64 {
    match instr {
        Instr::Const { .. } | Instr::Param { .. } | Instr::IndVar { .. } => 0.0,
        Instr::Load { access, ty } => {
            let a = &ir.accesses[*access];
            let w = width_factor(vf, *ty, target);
            match a.kind {
                AccessKind::Unit => {
                    let base = if a.aligned { 1.0 } else { 2.0 };
                    if vf == 1 {
                        1.0
                    } else {
                        base * w
                    }
                }
                AccessKind::Strided(s) => {
                    if vf == 1 {
                        1.0
                    } else if s.unsigned_abs() <= 4 {
                        // Interleaved access: wide loads + shuffles.
                        2.0 * w * s.unsigned_abs() as f64
                    } else {
                        // TTI charges gathers per lane, heavily.
                        6.0 * f64::from(vf)
                    }
                }
                AccessKind::Gather => {
                    if vf == 1 {
                        1.0
                    } else {
                        // TTI scalarization: per lane, a load plus index
                        // extract plus result insert, with no fast-gather
                        // discount.
                        6.0 * f64::from(vf)
                    }
                }
                AccessKind::Invariant => 0.5,
            }
        }
        Instr::Store { access, .. } => {
            let a = &ir.accesses[*access];
            let w = width_factor(vf, a.ty, target);
            let mut c = match a.kind {
                AccessKind::Unit => {
                    if vf == 1 {
                        1.0
                    } else if a.aligned {
                        w
                    } else {
                        1.5 * w
                    }
                }
                AccessKind::Strided(s) if s.unsigned_abs() <= 4 => {
                    if vf == 1 {
                        1.0
                    } else {
                        2.0 * w * s.unsigned_abs() as f64
                    }
                }
                _ => {
                    if vf == 1 {
                        1.0
                    } else {
                        8.0 * f64::from(vf) // scatter: fully scalarized
                    }
                }
            };
            if a.predicated && vf > 1 {
                // TTI is pessimistic about masked stores (and
                // `baseline_decision` refuses them outright).
                c *= 3.0;
            }
            c
        }
        Instr::Bin { op, ty, .. } => {
            let p = table::bin_profile(*op, *ty);
            let w = width_factor(vf, *ty, target);
            table::scalar_throughput_cost(p) * w
        }
        Instr::Un { ty, .. } => width_factor(vf, *ty, target),
        Instr::Cmp { ty, .. } => width_factor(vf, *ty, target),
        Instr::Select { ty, .. } => width_factor(vf, *ty, target),
        Instr::Cast { from, to, .. } => {
            let p = table::cast_profile(*from, *to);
            let wide = if from.size_bytes() >= to.size_bytes() {
                *from
            } else {
                *to
            };
            let w = width_factor(vf, wide, target);
            let repack = if vf > 1 && from.size_bytes() != to.size_bytes() {
                w
            } else {
                0.0
            };
            table::scalar_throughput_cost(p) * w + repack
        }
        Instr::Call {
            name, vectorizable, ..
        } => {
            let p = table::call_profile(name);
            if *vectorizable {
                table::scalar_throughput_cost(p) * width_factor(vf, ScalarType::F32, target)
            } else {
                p.uops * f64::from(vf)
            }
        }
        Instr::ReduceUpdate { red, ty, .. } => {
            // The linear model prices the combining op like any ALU op —
            // it cannot see the serial dependence this creates.
            let kind = ir.reductions[*red].kind;
            let lat_blind_cost = match kind {
                nvc_ir::ReductionKind::Product if !ty.is_float() => 2.0,
                _ => 1.0,
            };
            lat_blind_cost * width_factor(vf, *ty, target)
        }
    }
}

/// LLVM-style interleave-count heuristic.
pub fn interleave_heuristic(ir: &LoopIr, vf: u32, target: &TargetConfig) -> u32 {
    if ir.not_vectorizable {
        return 1;
    }
    let mut ic: u32 = 1;
    if !ir.reductions.is_empty() {
        // Hide the dependence: LLVM interleaves reduction loops ×2.
        ic = 2;
    } else if ir.work_instrs() <= 4 {
        // Tiny bodies: interleave to amortize overhead.
        ic = 2;
    }
    // Never interleave past the point where a known-small trip count cannot
    // fill the blocks.
    if let TripCount::Constant(tc) = ir.trip {
        while ic > 1 && u64::from(vf) * u64::from(ic) * 2 > tc {
            ic /= 2;
        }
    }
    ic.min(target.max_if).max(1)
}

/// The baseline cost model's full decision: the `-O3` default the paper
/// normalizes everything against.
pub fn baseline_decision(ir: &LoopIr, target: &TargetConfig) -> VectorDecision {
    if ir.not_vectorizable {
        return VectorDecision::scalar();
    }
    let legal = nvc_ir::legal_max_vf(ir);
    if legal == 1 {
        // Legality analysis failed outright: LLVM bails without even
        // interleaving.
        return VectorDecision::scalar();
    }
    // Pre-AVX-512 LLVM's if-conversion was extremely conservative about
    // masked stores (fault semantics + cost); guarded stores left the loop
    // scalar. Pragmas *can* override this — masked stores are
    // architecturally available — which is precisely the headroom the RL
    // agent exploits on the paper's predicated benchmarks.
    if ir.accesses.iter().any(|a| a.is_store && a.predicated) {
        return VectorDecision::scalar();
    }
    // LLVM derives its VF ceiling from the widest register any value type
    // in the body can fill; it never considers VFs beyond one register.
    let max_lanes = ir
        .body
        .iter()
        .filter_map(|i| i.result_ty())
        .filter(|t| *t != ScalarType::I1)
        .map(|t| target.native_lanes(t.size_bytes(), t.is_float()))
        .max()
        .unwrap_or(4);
    let cap = max_lanes.min(legal).min(target.max_vf);

    let mut best_vf = 1;
    let mut best_cost = expected_cost_per_lane(ir, 1, target);
    let mut vf = 2;
    while vf <= cap {
        let c = expected_cost_per_lane(ir, vf, target);
        // Strict improvement required, matching LLVM's preference for the
        // smallest VF among equals.
        if c < best_cost - 1e-9 {
            best_cost = c;
            best_vf = vf;
        }
        vf *= 2;
    }
    let ic = interleave_heuristic(ir, best_vf, target);
    VectorDecision::new(best_vf, ic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_frontend::parse_translation_unit;
    use nvc_ir::{lower_innermost_loops, ParamEnv};

    fn lower(src: &str, env: &ParamEnv) -> LoopIr {
        let tu = parse_translation_unit(src).unwrap();
        lower_innermost_loops(&tu, src, env).unwrap()[0].ir.clone()
    }

    fn target() -> TargetConfig {
        TargetConfig::i7_8559u()
    }

    #[test]
    fn baseline_vectorizes_simple_copy() {
        let src = "float a[4096] __attribute__((aligned(64))); float b[4096] __attribute__((aligned(64)));\nvoid f() { for (int i = 0; i < 4096; i++) { a[i] = b[i]; } }";
        let ir = lower(src, &ParamEnv::new());
        let d = baseline_decision(&ir, &target());
        assert!(d.vf >= 4, "copy should vectorize, got {d}");
    }

    #[test]
    fn baseline_never_exceeds_register_width() {
        let src = "float a[4096]; float b[4096];\nvoid f() { for (int i = 0; i < 4096; i++) { a[i] = b[i] * 2.0; } }";
        let ir = lower(src, &ParamEnv::new());
        let d = baseline_decision(&ir, &target());
        assert!(d.vf <= 8, "f32 on 256-bit caps at 8 lanes, got {d}");
    }

    #[test]
    fn baseline_respects_dependences() {
        let src =
            "int a[4096];\nvoid f(int n) { for (int i = 0; i < n-1; i++) { a[i+1] = a[i]; } }";
        let ir = lower(src, &ParamEnv::new().with("n", 4096));
        assert_eq!(baseline_decision(&ir, &target()), VectorDecision::scalar());
    }

    #[test]
    fn baseline_interleaves_reductions() {
        let src = "int vec[512];\nint f() { int s = 0; for (int i = 0; i < 512; i++) { s += vec[i]*vec[i]; } return s; }";
        let ir = lower(src, &ParamEnv::new());
        let d = baseline_decision(&ir, &target());
        assert_eq!(d.if_, 2, "reduction loops interleave ×2, got {d}");
        assert!(d.vf >= 4 && d.vf <= 8);
    }

    #[test]
    fn baseline_refuses_masked_stores() {
        // The era's TTI prices masked stores as per-lane scalarization, so
        // the baseline leaves if-guarded stores scalar — headroom the RL
        // agent exploits (Figure 7's predicate benchmarks).
        let src = "float a[4096]; float b[4096];\nvoid f(int n) { for (int i=0;i<n;i++) { if (b[i] > 0.0) { a[i] = b[i] * 3.0; } } }";
        let ir = lower(src, &ParamEnv::new().with("n", 4096));
        let d = baseline_decision(&ir, &target());
        assert_eq!(d.vf, 1, "got {d}");
    }

    #[test]
    fn baseline_vectorizes_strided_loads_with_interleaved_lowering() {
        let src = "float a[2048]; float b[4096];\nvoid f(int n) { for (int i=0;i<n;i++) { a[i] = b[2*i]; } }";
        let ir = lower(src, &ParamEnv::new().with("n", 2048));
        let d = baseline_decision(&ir, &target());
        assert!(d.vf > 1, "stride-2 loads vectorize in this era: {d}");
    }

    #[test]
    fn baseline_avoids_gathers() {
        let src = "int a[65536]; int idx[4096]; int out[4096];\nvoid f(int n) { for (int i=0;i<n;i++) { out[i] = a[idx[i]]; } }";
        let ir = lower(src, &ParamEnv::new().with("n", 4096));
        let d = baseline_decision(&ir, &target());
        assert_eq!(d.vf, 1, "gather cost should keep the baseline scalar");
    }

    #[test]
    fn interleave_heuristic_caps_by_trip() {
        let src = "int s0[64]; int f() { int s = 0; for (int i = 0; i < 8; i++) { s += s0[i]; } return s; }";
        let ir = lower(src, &ParamEnv::new());
        // With trip 8 and VF 8, interleaving would starve the vector body.
        assert_eq!(interleave_heuristic(&ir, 8, &target()), 1);
    }

    #[test]
    fn cost_per_lane_decreases_with_vf_for_clean_code() {
        let src = "float a[4096] __attribute__((aligned(64))); float b[4096] __attribute__((aligned(64)));\nvoid f() { for (int i = 0; i < 4096; i++) { a[i] = b[i] + 1.0; } }";
        let ir = lower(src, &ParamEnv::new());
        let t = target();
        let c1 = expected_cost_per_lane(&ir, 1, &t);
        let c8 = expected_cost_per_lane(&ir, 8, &t);
        assert!(c8 < c1);
    }

    #[test]
    fn not_vectorizable_loops_stay_scalar() {
        let src = "int a[128];\nvoid f(int n) { for (int i=0;i<n;i++) { a[i] = helper(i); } }";
        let ir = lower(src, &ParamEnv::new().with("n", 128));
        assert_eq!(baseline_decision(&ir, &target()), VectorDecision::scalar());
    }

    #[test]
    fn short_to_int_kernel_uses_wider_vf_cap() {
        // i16 fills a 128-bit integer register with 8 lanes.
        let src = "short s[4096] __attribute__((aligned(64))); int d[4096] __attribute__((aligned(64)));\nvoid f() { for (int i = 0; i < 4096; i++) { d[i] = (int) s[i]; } }";
        let ir = lower(src, &ParamEnv::new());
        let d = baseline_decision(&ir, &target());
        assert!(d.vf <= 8);
        assert!(d.vf >= 4);
    }

    #[test]
    fn int_dot_product_baseline_is_paper_choice() {
        // §2.1: "The best VF and IF corresponding to the baseline cost
        // model are (VF = 4, IF = 2)."
        let src = "int vec[512] __attribute__((aligned(64)));\nint f() { int s = 0; for (int i = 0; i < 512; i++) { s += vec[i]*vec[i]; } return s; }";
        let ir = lower(src, &ParamEnv::new());
        let d = baseline_decision(&ir, &target());
        assert_eq!(d, VectorDecision::new(4, 2));
    }
}
