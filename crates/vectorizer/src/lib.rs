//! The loop vectorizer and the baseline cost model.
//!
//! This crate plays the role of LLVM's `LoopVectorize` pass in the paper's
//! pipeline:
//!
//! * [`decision`] — the `(VF, IF)` decision type and the pragma action
//!   space (`VF ∈ {1,2,…,MAX_VF}`, `IF ∈ {1,2,…,MAX_IF}`, §3.3 eq. 3);
//! * [`plan`] — the *transform*: given a [`nvc_ir::LoopIr`] and a decision,
//!   emit the widened/interleaved loop as a [`nvc_machine::LoopShape`]
//!   (physical uops, memory streams, recurrences, remainder) after clamping
//!   the request to what dependence analysis allows — "if the agent
//!   accidentally injected bad pragmas, the compiler will ignore it" (§3);
//! * [`cost_model`] — the **baseline**: a faithful linear, per-instruction
//!   cost model in the style of LLVM's TTI tables. It cannot see recurrence
//!   latency, cache residency or amortization of loop overhead — exactly
//!   the blind spots the paper attributes to fixed cost models (§1, §6) —
//!   and so it systematically picks conservative factors;
//! * [`compile_time`] — the compile-time model used for the paper's
//!   10×-compile-time timeout and its −9 reward penalty (§3.4).
//!
//! # Example
//!
//! ```
//! use nvc_frontend::parse_translation_unit;
//! use nvc_ir::{lower_innermost_loops, ParamEnv};
//! use nvc_machine::TargetConfig;
//! use nvc_vectorizer::{VectorDecision, Vectorizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "int a[4096]; int b[4096];
//! void f(int n) { for (int i = 0; i < n; i++) { a[i] = b[i] * 3; } }";
//! let tu = parse_translation_unit(src)?;
//! let env = ParamEnv::new().with("n", 4096);
//! let loops = lower_innermost_loops(&tu, src, &env)?;
//!
//! let vec = Vectorizer::new(TargetConfig::i7_8559u());
//! let baseline = vec.baseline_decision(&loops[0].ir);
//! let compiled = vec.compile(&loops[0].ir, VectorDecision::new(16, 2));
//! assert!(compiled.decision.vf >= 1);
//! # Ok(())
//! # }
//! ```

pub mod compile_time;
pub mod cost_model;
pub mod decision;
pub mod plan;
pub mod table;

use serde::{Deserialize, Serialize};

use nvc_ir::LoopIr;
use nvc_machine::{simulate_loop, LoopShape, LoopTiming, TargetConfig};

pub use compile_time::{compile_time_ms, CompileOutcome};
pub use cost_model::{baseline_decision, expected_cost_per_lane, interleave_heuristic};
pub use decision::{ActionSpace, VectorDecision};
pub use plan::{build_shape, clamp_decision, emitted_uops};

/// A fully "compiled" loop: the clamped decision, the emitted shape, its
/// simulated timing, and the modelled compile time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledLoop {
    /// Decision after legality clamping (what actually ran).
    pub decision: VectorDecision,
    /// The emitted loop shape.
    pub shape: LoopShape,
    /// Simulated execution timing of one innermost-loop execution.
    pub timing: LoopTiming,
    /// Modelled compile time in milliseconds.
    pub compile_ms: f64,
}

impl CompiledLoop {
    /// Total cycles for the whole nest (innermost execution × outer trips).
    pub fn nest_cycles(&self, ir: &LoopIr) -> f64 {
        self.timing.cycles * ir.outer_executions() as f64
    }
}

/// The vectorizer service: owns a target description and compiles loops
/// under explicit or baseline-model decisions.
#[derive(Debug, Clone)]
pub struct Vectorizer {
    target: TargetConfig,
}

impl Vectorizer {
    /// Creates a vectorizer for `target`.
    pub fn new(target: TargetConfig) -> Self {
        Self { target }
    }

    /// The target description in use.
    pub fn target(&self) -> &TargetConfig {
        &self.target
    }

    /// The baseline cost model's decision for `ir` (what `-O3` would do).
    pub fn baseline_decision(&self, ir: &LoopIr) -> VectorDecision {
        baseline_decision(ir, &self.target)
    }

    /// Compiles `ir` under `requested`, clamping to legality, and simulates
    /// its execution.
    pub fn compile(&self, ir: &LoopIr, requested: VectorDecision) -> CompiledLoop {
        let decision = clamp_decision(ir, requested, &self.target);
        let shape = build_shape(ir, decision, &self.target);
        let timing = simulate_loop(&shape, &self.target);
        let compile_ms = compile_time_ms(&shape, ir);
        CompiledLoop {
            decision,
            shape,
            timing,
            compile_ms,
        }
    }

    /// Compiles `ir` with the baseline cost model's own decision.
    pub fn compile_baseline(&self, ir: &LoopIr) -> CompiledLoop {
        let d = self.baseline_decision(ir);
        self.compile(ir, d)
    }

    /// Builds only the shape (for tests and ablations).
    pub fn shape(&self, ir: &LoopIr, requested: VectorDecision) -> LoopShape {
        let decision = clamp_decision(ir, requested, &self.target);
        build_shape(ir, decision, &self.target)
    }
}

impl Default for Vectorizer {
    fn default() -> Self {
        Self::new(TargetConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_frontend::parse_translation_unit;
    use nvc_ir::{lower_innermost_loops, ParamEnv};

    fn lower(src: &str, env: &ParamEnv) -> LoopIr {
        let tu = parse_translation_unit(src).unwrap();
        lower_innermost_loops(&tu, src, env).unwrap()[0].ir.clone()
    }

    /// The §2.1 motivating experiment: many VF/IF configurations beat the
    /// baseline's choice on the dot-product kernel, and the best one
    /// combines a wide VF with substantial interleaving.
    #[test]
    fn dot_product_landscape_matches_figure1() {
        let src = "int vec[512] __attribute__((aligned(64)));\nint f() { int sum = 0; for (int i = 0; i < 512; i++) { sum += vec[i]*vec[i]; } return sum; }";
        let ir = lower(src, &ParamEnv::new());
        let vz = Vectorizer::default();

        let baseline = vz.compile_baseline(&ir);
        let scalar = vz.compile(&ir, VectorDecision::new(1, 1));
        // The baseline vectorizes, and beats scalar by a wide margin. (The
        // paper reports 2.6× at *kernel* level, which includes per-call
        // harness overhead; the pure-loop ratio here is naturally larger.)
        let baseline_speedup = scalar.timing.cycles / baseline.timing.cycles;
        assert!(
            baseline_speedup > 1.8 && baseline_speedup < 10.0,
            "baseline vs scalar = {baseline_speedup}"
        );

        // Grid sweep: count configurations beating the baseline and find
        // the best.
        let t = vz.target().clone();
        let mut better = 0;
        let mut best = (VectorDecision::new(1, 1), f64::INFINITY);
        let mut total = 0;
        for vf in t.vf_candidates() {
            for ifc in t.if_candidates() {
                if ifc > 8 {
                    continue; // Figure 1 sweeps IF up to 8 (35 configs)
                }
                total += 1;
                let c = vz.compile(&ir, VectorDecision::new(vf, ifc));
                if c.timing.cycles < baseline.timing.cycles {
                    better += 1;
                }
                if c.timing.cycles < best.1 {
                    best = (VectorDecision::new(vf, ifc), c.timing.cycles);
                }
            }
        }
        assert_eq!(total, 28);
        // Paper: 26 of 35 configurations improved on the baseline choice.
        // Shape requirement: a clear majority beats it here too.
        assert!(better >= total / 2, "only {better}/{total} beat baseline");
        // The optimum lies in the strongly vectorized+interleaved region
        // (paper: VF=64, IF=8 — here the model ties equal VF×IF products,
        // so we assert on the product).
        assert!(
            best.0.elems_per_block() >= 16,
            "best block too small: {}",
            best.0
        );
        // And the improvement is noticeable but bounded (paper: ~20%).
        let gain = baseline.timing.cycles / best.1;
        assert!(gain > 1.05 && gain < 2.5, "best vs baseline = {gain}");
        // The most extreme corner (VF=64, IF=16 — a block larger than the
        // whole trip count) collapses, as over-vectorization does in
        // reality.
        let extreme = vz.compile(&ir, VectorDecision::new(64, 16));
        assert!(extreme.timing.cycles > baseline.timing.cycles * 2.0);
    }

    #[test]
    fn illegal_request_is_clamped_not_miscompiled() {
        // Serial recurrence: a[i+1] = a[i] — cannot vectorize at all.
        let src =
            "int a[4096];\nvoid f(int n) { for (int i = 0; i < n-1; i++) { a[i+1] = a[i]; } }";
        let ir = lower(src, &ParamEnv::new().with("n", 4096));
        let vz = Vectorizer::default();
        let c = vz.compile(&ir, VectorDecision::new(64, 8));
        assert_eq!(c.decision.vf, 1, "pragma must be ignored when unsafe");
    }

    #[test]
    fn over_vectorizing_tiny_loops_backfires() {
        // trip = 40: VF×IF = 512 leaves everything in the scalar remainder.
        let src = "float a[64]; float b[64];\nvoid f(int n) { for (int i = 0; i < n; i++) { a[i] = b[i] * 2.0; } }";
        let ir = lower(src, &ParamEnv::new().with("n", 40));
        let vz = Vectorizer::default();
        let sane = vz.compile(&ir, VectorDecision::new(8, 1));
        let absurd = vz.compile(&ir, VectorDecision::new(64, 16));
        assert!(
            absurd.timing.cycles > sane.timing.cycles,
            "over-vectorization should lose: absurd={} sane={}",
            absurd.timing.cycles,
            sane.timing.cycles
        );
    }
}
