//! Per-operation execution characteristics shared by the plan builder and
//! the baseline cost model.
//!
//! The *plan builder* uses these as physical uop classes and latencies for
//! the machine model. The *baseline cost model* uses only the throughput
//! cost column — a deliberately linear view, as LLVM's TTI tables are.

use nvc_ir::{BinOpIr, ScalarType};
use nvc_machine::ResourceClass;

/// Execution profile of one scalar operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpProfile {
    /// Resource the uop executes on.
    pub class: ResourceClass,
    /// Result latency in cycles.
    pub latency: f64,
    /// Micro-ops per native vector of results (usually 1; 2 for half-rate
    /// operations like 32-bit vector multiply).
    pub uops: f64,
}

impl OpProfile {
    const fn new(class: ResourceClass, latency: f64, uops: f64) -> Self {
        Self {
            class,
            latency,
            uops,
        }
    }
}

/// Profile of a binary arithmetic operation on `ty` in *vector* context.
///
/// Scalar context differs for a few ops (e.g. scalar `imul` is a single
/// 3-cycle uop while `vpmulld` is 2 uops at 10 cycles); use
/// [`bin_profile_for`] when the context is known.
pub fn bin_profile(op: BinOpIr, ty: ScalarType) -> OpProfile {
    use BinOpIr::*;
    use ResourceClass::*;
    let float = ty.is_float();
    match op {
        Add | Sub => {
            if float {
                OpProfile::new(VAlu, 4.0, 1.0)
            } else {
                OpProfile::new(VAlu, 1.0, 1.0)
            }
        }
        Mul => {
            if float {
                OpProfile::new(VMul, 4.0, 1.0)
            } else {
                // vpmulld is a 2-uop, 10-cycle operation on this
                // microarchitecture class.
                OpProfile::new(VMul, 10.0, 2.0)
            }
        }
        Div | Rem => {
            if ty == ScalarType::F32 {
                OpProfile::new(VDiv, 11.0, 1.0)
            } else if ty == ScalarType::F64 {
                OpProfile::new(VDiv, 14.0, 1.0)
            } else {
                // Integer division vectorizes poorly; scalarized sequences.
                OpProfile::new(VDiv, 22.0, 2.0)
            }
        }
        Shl | Shr => OpProfile::new(VAlu, 1.0, 1.0),
        And | Or | Xor => OpProfile::new(VAlu, 1.0, 1.0),
    }
}

/// Profile of a binary operation, accounting for scalar vs vector context.
pub fn bin_profile_for(op: BinOpIr, ty: ScalarType, vectorized: bool) -> OpProfile {
    if !vectorized && !ty.is_float() {
        match op {
            BinOpIr::Mul => return OpProfile::new(ResourceClass::VMul, 3.0, 1.0),
            BinOpIr::Div | BinOpIr::Rem => return OpProfile::new(ResourceClass::VDiv, 26.0, 1.0),
            _ => {}
        }
    }
    bin_profile(op, ty)
}

/// Profile of a comparison on `ty`.
pub fn cmp_profile(ty: ScalarType) -> OpProfile {
    if ty.is_float() {
        OpProfile::new(ResourceClass::VAlu, 4.0, 1.0)
    } else {
        OpProfile::new(ResourceClass::VAlu, 1.0, 1.0)
    }
}

/// Profile of a select/blend.
pub fn select_profile() -> OpProfile {
    OpProfile::new(ResourceClass::VAlu, 1.0, 1.0)
}

/// Profile of a scalar conversion between `from` and `to`.
///
/// Width-changing vector casts also need lane re-packing; the extra uops
/// are charged in the plan builder because they depend on VF.
pub fn cast_profile(from: ScalarType, to: ScalarType) -> OpProfile {
    let int_to_float = !from.is_float() && to.is_float();
    let float_to_int = from.is_float() && !to.is_float();
    if int_to_float || float_to_int {
        OpProfile::new(ResourceClass::VAlu, 5.0, 1.0)
    } else {
        OpProfile::new(ResourceClass::VAlu, 1.0, 1.0)
    }
}

/// Profile of a vectorizable math call, if we model it.
pub fn call_profile(name: &str) -> OpProfile {
    match name {
        "sqrtf" => OpProfile::new(ResourceClass::VDiv, 12.0, 1.0),
        "sqrt" => OpProfile::new(ResourceClass::VDiv, 16.0, 1.0),
        "fabsf" | "fabs" | "abs" => OpProfile::new(ResourceClass::VAlu, 1.0, 1.0),
        "fmaxf" | "fminf" | "fmax" | "fmin" | "max" | "min" => {
            OpProfile::new(ResourceClass::VAlu, 4.0, 1.0)
        }
        "floorf" | "ceilf" | "floor" | "ceil" => OpProfile::new(ResourceClass::VAlu, 6.0, 1.0),
        // Polynomial expansions: several multiply-adds deep.
        "expf" | "logf" | "sinf" | "cosf" | "exp" | "log" | "sin" | "cos" => {
            OpProfile::new(ResourceClass::VMul, 20.0, 8.0)
        }
        _ => OpProfile::new(ResourceClass::Scalar, 20.0, 10.0),
    }
}

/// Latency of the combining operation of a reduction (drives `RecMII`).
pub fn reduction_latency(kind: nvc_ir::ReductionKind, ty: ScalarType) -> f64 {
    use nvc_ir::ReductionKind::*;
    match kind {
        Sum => {
            if ty.is_float() {
                4.0
            } else {
                1.0
            }
        }
        Product => {
            if ty.is_float() {
                4.0
            } else {
                10.0
            }
        }
        Min | Max => {
            if ty.is_float() {
                4.0
            } else {
                1.0
            }
        }
        And | Or | Xor => 1.0,
    }
}

/// The baseline cost model's *throughput cost* of one scalar operation, in
/// abstract units (≈ reciprocal throughput). Linear by construction.
pub fn scalar_throughput_cost(profile: OpProfile) -> f64 {
    match profile.class {
        ResourceClass::VDiv => profile.latency / 2.0,
        _ => profile.uops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_add_slower_than_int_add() {
        let f = bin_profile(BinOpIr::Add, ScalarType::F32);
        let i = bin_profile(BinOpIr::Add, ScalarType::I32);
        assert!(f.latency > i.latency);
    }

    #[test]
    fn int_mul_is_half_rate() {
        let p = bin_profile(BinOpIr::Mul, ScalarType::I32);
        assert_eq!(p.uops, 2.0);
        assert_eq!(p.class, ResourceClass::VMul);
    }

    #[test]
    fn divide_goes_to_divider() {
        for ty in [ScalarType::F32, ScalarType::F64, ScalarType::I32] {
            assert_eq!(bin_profile(BinOpIr::Div, ty).class, ResourceClass::VDiv);
        }
    }

    #[test]
    fn reduction_latencies() {
        use nvc_ir::ReductionKind::*;
        assert_eq!(reduction_latency(Sum, ScalarType::F32), 4.0);
        assert_eq!(reduction_latency(Sum, ScalarType::I32), 1.0);
        assert_eq!(reduction_latency(Product, ScalarType::I32), 10.0);
        assert_eq!(reduction_latency(Xor, ScalarType::I64), 1.0);
    }

    #[test]
    fn unknown_call_is_scalar_and_heavy() {
        let p = call_profile("qsort_helper");
        assert_eq!(p.class, ResourceClass::Scalar);
        assert!(p.uops >= 10.0);
    }

    #[test]
    fn throughput_cost_of_divides_reflects_occupancy() {
        let div = scalar_throughput_cost(bin_profile(BinOpIr::Div, ScalarType::F32));
        let add = scalar_throughput_cost(bin_profile(BinOpIr::Add, ScalarType::F32));
        assert!(div > 4.0 * add);
    }
}
