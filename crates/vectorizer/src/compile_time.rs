//! Compile-time model and the paper's timeout rule.
//!
//! §3.4: "we limited the compilation time to ten times the time it takes to
//! compile a program with the baseline cost model. If the program took
//! longer than that to compile, we gave a penalty reward of −9."
//!
//! Compile time here is dominated by the vectorizer and the register
//! allocator working over the widened body. Register allocation and
//! scheduling are super-linear in the instruction count, which is what
//! makes extreme `VF × IF` requests on large bodies blow through the 10×
//! budget while a dot product never does.

use serde::{Deserialize, Serialize};

use nvc_ir::LoopIr;
use nvc_machine::LoopShape;

use crate::plan::emitted_uops;

/// Fixed per-loop front-end / mid-end cost in milliseconds.
const BASE_MS: f64 = 18.0;
/// Linear codegen cost per emitted uop.
const PER_UOP_MS: f64 = 0.012;
/// Super-linear (register allocation / scheduling) component.
const QUADRATIC_MS: f64 = 9.0e-6;

/// Modelled wall-clock compile time for a loop compiled into `shape`.
pub fn compile_time_ms(shape: &LoopShape, _ir: &LoopIr) -> f64 {
    let uops = emitted_uops(shape);
    BASE_MS + PER_UOP_MS * uops + QUADRATIC_MS * uops * uops
}

/// Result of compiling against the 10× budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CompileOutcome {
    /// Compilation finished within the budget.
    Ok {
        /// Compile time in milliseconds.
        ms: f64,
    },
    /// Compilation exceeded ten times the baseline compile time; the paper
    /// rewards this with −9.
    TimedOut {
        /// The modelled time it *would* have taken.
        ms: f64,
        /// The budget that was exceeded.
        budget_ms: f64,
    },
}

impl CompileOutcome {
    /// Applies the paper's 10× rule.
    pub fn from_times(ms: f64, baseline_ms: f64) -> Self {
        let budget_ms = baseline_ms * 10.0;
        if ms > budget_ms {
            CompileOutcome::TimedOut { ms, budget_ms }
        } else {
            CompileOutcome::Ok { ms }
        }
    }

    /// True when compilation timed out.
    pub fn timed_out(&self) -> bool {
        matches!(self, CompileOutcome::TimedOut { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::VectorDecision;
    use crate::plan::build_shape;
    use nvc_frontend::parse_translation_unit;
    use nvc_ir::{lower_innermost_loops, ParamEnv};
    use nvc_machine::TargetConfig;

    fn lower(src: &str) -> LoopIr {
        let tu = parse_translation_unit(src).unwrap();
        lower_innermost_loops(&tu, src, &ParamEnv::new()).unwrap()[0]
            .ir
            .clone()
    }

    /// A deliberately fat loop body (many statements).
    fn big_body_src() -> String {
        let mut body = String::new();
        for k in 0..24 {
            body.push_str(&format!("a{k}[i] = b{k}[i] * c{k}[i] + a{k}[i];\n"));
        }
        let mut decls = String::new();
        for k in 0..24 {
            decls.push_str(&format!(
                "float a{k}[4096]; float b{k}[4096]; float c{k}[4096];\n"
            ));
        }
        format!("{decls}\nvoid f() {{ for (int i = 0; i < 4096; i++) {{ {body} }} }}")
    }

    #[test]
    fn compile_time_grows_with_factors() {
        let ir = lower(
            "float a[4096]; float b[4096];\nvoid f() { for (int i=0;i<4096;i++) { a[i] = b[i]; } }",
        );
        let t = TargetConfig::i7_8559u();
        let small = compile_time_ms(&build_shape(&ir, VectorDecision::new(4, 1), &t), &ir);
        let big = compile_time_ms(&build_shape(&ir, VectorDecision::new(64, 16), &t), &ir);
        assert!(big > small);
    }

    #[test]
    fn dot_product_never_times_out() {
        let ir = lower("int v[512];\nint f() { int s = 0; for (int i=0;i<512;i++) { s += v[i]*v[i]; } return s; }");
        let t = TargetConfig::i7_8559u();
        let baseline = compile_time_ms(&build_shape(&ir, VectorDecision::new(4, 2), &t), &ir);
        for vf in t.vf_candidates() {
            for ifc in t.if_candidates() {
                let ms = compile_time_ms(&build_shape(&ir, VectorDecision::new(vf, ifc), &t), &ir);
                assert!(
                    !CompileOutcome::from_times(ms, baseline).timed_out(),
                    "dot product timed out at VF={vf} IF={ifc}"
                );
            }
        }
    }

    #[test]
    fn huge_body_with_extreme_factors_times_out() {
        let src = big_body_src();
        let tu = parse_translation_unit(&src).unwrap();
        let ir = lower_innermost_loops(&tu, &src, &ParamEnv::new()).unwrap()[0]
            .ir
            .clone();
        let t = TargetConfig::i7_8559u();
        let baseline_d = crate::cost_model::baseline_decision(&ir, &t);
        let baseline = compile_time_ms(&build_shape(&ir, baseline_d, &t), &ir);
        let extreme = compile_time_ms(&build_shape(&ir, VectorDecision::new(64, 16), &t), &ir);
        assert!(
            CompileOutcome::from_times(extreme, baseline).timed_out(),
            "expected timeout: extreme={extreme}ms baseline={baseline}ms budget={}ms",
            baseline * 10.0
        );
    }

    #[test]
    fn outcome_boundary() {
        assert!(!CompileOutcome::from_times(100.0, 10.0).timed_out());
        assert!(CompileOutcome::from_times(101.0, 10.0).timed_out());
    }
}
