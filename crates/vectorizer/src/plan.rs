//! The vectorization transform: `LoopIr × (VF, IF) → LoopShape`.
//!
//! This is the codegen step of the pipeline. Given the scalar IR of an
//! innermost loop and a (clamped) decision, it computes exactly what a loop
//! vectorizer would emit on the target:
//!
//! * each scalar instruction widens into `ceil(VF / native_lanes) × IF`
//!   physical vector uops;
//! * unit-stride accesses become wide loads/stores (with a misalignment
//!   surcharge when alignment is unknown);
//! * small-stride accesses become wide-load + shuffle sequences
//!   (LLVM's interleaved-access lowering), large strides and indirect
//!   addressing become per-lane gathers / scalarized stores;
//! * predicated stores become masked stores, selects blend;
//! * width-changing casts pay lane re-packing uops;
//! * reductions allocate `IF × ceil(VF/native)` accumulator registers,
//!   carry a recurrence for `RecMII`, and pay a horizontal tail per loop
//!   execution;
//! * the iteration space splits into whole blocks plus a scalar remainder,
//!   with runtime guards when the trip count is unknown at compile time.

use nvc_ir::{AccessKind, Instr, LoopIr, ScalarType, TripCount};
use nvc_machine::{
    LoopShape, MemStream, Recurrence, ResourceClass, StreamPattern, TargetConfig, UopBundle,
};

use crate::decision::VectorDecision;
use crate::table;

/// Clamps a requested decision to what legality analysis allows on `ir`.
///
/// Mirrors the paper's §3: pragmas are hints; "predicates and memory
/// dependency can hinder reaching high VF and IF", and infeasible requests
/// are ignored rather than honored unsafely.
pub fn clamp_decision(
    ir: &LoopIr,
    requested: VectorDecision,
    target: &TargetConfig,
) -> VectorDecision {
    let legal = nvc_ir::legal_max_vf(ir);
    let vf = requested.vf.min(legal).min(target.max_vf).max(1);
    let if_ = requested.if_.min(target.max_if).max(1);
    VectorDecision::new(vf, if_)
}

/// Number of physical registers one logical VF-wide value of type `ty`
/// occupies.
fn regs_per_value(vf: u32, ty: ScalarType, target: &TargetConfig) -> f64 {
    let lanes = target.native_lanes(ty.size_bytes(), ty.is_float());
    (f64::from(vf) / f64::from(lanes)).ceil().max(1.0)
}

/// Builds the emitted-loop shape for a clamped decision.
pub fn build_shape(ir: &LoopIr, decision: VectorDecision, target: &TargetConfig) -> LoopShape {
    let vf = decision.vf;
    let if_ = decision.if_;
    let block = decision.elems_per_block();
    let trip = ir.trip.count();
    let vectorized = vf > 1;

    let mut uops: Vec<UopBundle> = Vec::new();
    let mut recurrences: Vec<Recurrence> = Vec::new();
    let mut streams: Vec<MemStream> = Vec::new();
    let mut live_regs = 2.0; // IV vector + mask scratch
    let mut per_exec_uops = 1.0;
    let mut scalar_uops = 2.0; // scalar-iteration bookkeeping

    // Footprint keys: one per distinct array.
    let mut array_keys: Vec<String> = Vec::new();
    let key_of = |name: &str, keys: &mut Vec<String>| -> u32 {
        match keys.iter().position(|k| k == name) {
            Some(i) => i as u32,
            None => {
                keys.push(name.to_string());
                (keys.len() - 1) as u32
            }
        }
    };

    // ---- instructions ------------------------------------------------
    for instr in &ir.body {
        match instr {
            Instr::Const { .. } | Instr::Param { .. } => {
                // Hoisted or folded; broadcast once outside the loop.
            }
            Instr::IndVar { .. } => {
                // Vector IV maintained with one add per block.
                uops.push(UopBundle::new(ResourceClass::VAlu, f64::from(if_), 1.0));
                scalar_uops += 0.0;
            }
            Instr::Load { access, ty } => {
                let a = &ir.accesses[*access];
                let r = regs_per_value(vf, *ty, target);
                let n = r * f64::from(if_);
                let elem = u64::from(ty.size_bytes());
                let key = key_of(&a.array, &mut array_keys);
                let footprint = effective_footprint(a, ir);
                scalar_uops += 1.0;
                match a.kind {
                    AccessKind::Unit => {
                        let count = if a.aligned { n } else { n * 1.5 };
                        uops.push(UopBundle::new(ResourceClass::VLoad, count, 5.0));
                        if a.predicated && vectorized {
                            uops.push(UopBundle::new(ResourceClass::VAlu, n, 1.0));
                        }
                        let bytes = (block * elem) as f64;
                        streams.push(
                            MemStream::new(bytes, footprint, StreamPattern::Contiguous, false)
                                .with_footprint_key(key),
                        );
                    }
                    AccessKind::Strided(s) => {
                        let sa = s.unsigned_abs();
                        if !vectorized {
                            uops.push(UopBundle::new(ResourceClass::VLoad, n, 5.0));
                        } else if sa <= 4 {
                            // Interleaved-access lowering: load the whole
                            // stripe, shuffle lanes out.
                            let wide = n * sa as f64;
                            uops.push(UopBundle::new(ResourceClass::VLoad, wide, 5.0));
                            uops.push(UopBundle::new(ResourceClass::VAlu, wide, 1.0));
                        } else {
                            // Per-lane gather.
                            let lanes = block as f64;
                            uops.push(UopBundle::new(ResourceClass::VLoad, lanes * 0.75, 8.0));
                            uops.push(UopBundle::new(ResourceClass::VAlu, n, 1.0));
                        }
                        let mut stream = MemStream::new(
                            a.bytes_touched(block) as f64,
                            footprint,
                            StreamPattern::Strided,
                            false,
                        )
                        .with_footprint_key(key);
                        if vectorized && sa > 4 {
                            stream.pattern = StreamPattern::Gather;
                            stream.gather_lanes_per_block = block as f64;
                        }
                        streams.push(stream);
                    }
                    AccessKind::Gather => {
                        let lanes = block as f64;
                        if vectorized {
                            uops.push(UopBundle::new(ResourceClass::VLoad, lanes * 0.75, 8.0));
                        } else {
                            uops.push(UopBundle::new(ResourceClass::VLoad, f64::from(if_), 5.0));
                        }
                        let mut stream = MemStream::new(
                            a.bytes_touched(block) as f64,
                            footprint,
                            StreamPattern::Gather,
                            false,
                        )
                        .with_footprint_key(key);
                        stream.gather_lanes_per_block = if vectorized { lanes } else { 0.0 };
                        streams.push(stream);
                    }
                    AccessKind::Invariant => {
                        // One broadcast load, hoisted.
                        per_exec_uops += 1.0;
                    }
                }
                // Loaded values are short-lived; the allocator reuses the
                // same temp across unroll copies.
                live_regs += 0.5;
            }
            Instr::Store { access, .. } => {
                let a = &ir.accesses[*access];
                let ty = a.ty;
                let r = regs_per_value(vf, ty, target);
                let n = r * f64::from(if_);
                let elem = u64::from(ty.size_bytes());
                let key = key_of(&a.array, &mut array_keys);
                let footprint = effective_footprint(a, ir);
                scalar_uops += 1.0;
                match a.kind {
                    AccessKind::Unit => {
                        let mut count = if a.aligned { n } else { n * 1.3 };
                        if a.predicated && vectorized {
                            // Masked store (e.g. vpmaskmovd): slower and
                            // needs the mask in a register.
                            count *= 2.0;
                            uops.push(UopBundle::new(ResourceClass::VAlu, n * 0.5, 1.0));
                        }
                        uops.push(UopBundle::new(ResourceClass::VStore, count, 1.0));
                        streams.push(
                            MemStream::new(
                                (block * elem) as f64,
                                footprint,
                                StreamPattern::Contiguous,
                                true,
                            )
                            .with_footprint_key(key),
                        );
                    }
                    AccessKind::Strided(s) => {
                        let sa = s.unsigned_abs();
                        if !vectorized {
                            uops.push(UopBundle::new(ResourceClass::VStore, n, 1.0));
                        } else if sa <= 4 {
                            let wide = n * sa as f64;
                            uops.push(UopBundle::new(ResourceClass::VAlu, wide, 1.0));
                            uops.push(UopBundle::new(ResourceClass::VStore, wide, 1.0));
                        } else {
                            // Scatter: scalarized stores, one per lane.
                            let lanes = block as f64;
                            uops.push(UopBundle::new(ResourceClass::VStore, lanes, 1.0));
                            uops.push(UopBundle::new(ResourceClass::VAlu, lanes * 0.5, 1.0));
                        }
                        streams.push(
                            MemStream::new(
                                a.bytes_touched(block) as f64,
                                footprint,
                                StreamPattern::Strided,
                                true,
                            )
                            .with_footprint_key(key),
                        );
                    }
                    AccessKind::Gather => {
                        // Scatter store.
                        let lanes = block as f64;
                        uops.push(UopBundle::new(ResourceClass::VStore, lanes, 1.0));
                        streams.push(
                            MemStream::new(
                                a.bytes_touched(block) as f64,
                                footprint,
                                StreamPattern::Gather,
                                true,
                            )
                            .with_footprint_key(key),
                        );
                    }
                    AccessKind::Invariant => {
                        // Blocked during lowering; defensive scalar store.
                        uops.push(UopBundle::new(ResourceClass::VStore, block as f64, 1.0));
                    }
                }
            }
            Instr::Bin { op, ty, .. } => {
                let p = table::bin_profile_for(*op, *ty, vectorized);
                let n = regs_per_value(vf, *ty, target) * f64::from(if_) * p.uops;
                uops.push(UopBundle::new(p.class, n, p.latency));
                scalar_uops += p.uops;
                live_regs += 0.3;
            }
            Instr::Un { ty, .. } => {
                let n = regs_per_value(vf, *ty, target) * f64::from(if_);
                uops.push(UopBundle::new(ResourceClass::VAlu, n, 1.0));
                scalar_uops += 1.0;
            }
            Instr::Cmp { ty, .. } => {
                let p = table::cmp_profile(*ty);
                let n = regs_per_value(vf, *ty, target) * f64::from(if_) * p.uops;
                uops.push(UopBundle::new(p.class, n, p.latency));
                scalar_uops += 1.0;
            }
            Instr::Select { ty, .. } => {
                let p = table::select_profile();
                let n = regs_per_value(vf, *ty, target) * f64::from(if_);
                uops.push(UopBundle::new(p.class, n, p.latency));
                scalar_uops += 1.0;
            }
            Instr::Cast { from, to, .. } => {
                let p = table::cast_profile(*from, *to);
                let wide = regs_per_value(vf, widest(*from, *to), target) * f64::from(if_);
                uops.push(UopBundle::new(p.class, wide * p.uops, p.latency));
                if vectorized && from.size_bytes() != to.size_bytes() {
                    // Lane re-packing between element widths.
                    uops.push(UopBundle::new(ResourceClass::VAlu, wide, 3.0));
                }
                scalar_uops += 1.0;
            }
            Instr::Call {
                name, vectorizable, ..
            } => {
                let p = table::call_profile(name);
                let n = if *vectorizable {
                    regs_per_value(vf, ScalarType::F32, target) * f64::from(if_) * p.uops
                } else {
                    block as f64 * p.uops // scalarized call per lane
                };
                uops.push(UopBundle::new(p.class, n, p.latency));
                scalar_uops += p.uops;
            }
            Instr::ReduceUpdate { red, ty, .. } => {
                let r = &ir.reductions[*red];
                let lat = table::reduction_latency(r.kind, *ty);
                let n = regs_per_value(vf, *ty, target) * f64::from(if_);
                let class = if r.kind == nvc_ir::ReductionKind::Product && ty.is_float() {
                    ResourceClass::VMul
                } else if r.kind == nvc_ir::ReductionKind::Product {
                    ResourceClass::VMul
                } else {
                    ResourceClass::VAlu
                };
                uops.push(UopBundle::new(class, n, lat));
                recurrences.push(Recurrence { op_latency: lat });
                // Accumulator registers live across the whole loop.
                live_regs += n;
                // Horizontal tail: combine IF×R partial vectors, then
                // reduce lanes within a register.
                let lanes = f64::from(target.native_lanes(ty.size_bytes(), ty.is_float()));
                per_exec_uops += (n - 1.0).max(0.0) + 2.0 * lanes.log2().ceil();
                scalar_uops += 1.0;
            }
        }
    }

    // Loop bookkeeping: induction increment + compare&branch per block.
    uops.push(UopBundle::new(ResourceClass::Scalar, 2.0, 1.0));

    // Loops that failed vectorization legality (scalar recurrences, early
    // exits, unknown calls, uncounted loops) execute a serial dependence
    // chain through every iteration: interleaving/unrolling cannot shorten
    // it. Model the chain as a recurrence whose per-block latency scales
    // with the iterations per block.
    if ir.not_vectorizable {
        let chain: f64 = ir
            .body
            .iter()
            .map(|i| match i {
                Instr::Load { .. } => 4.0,
                Instr::Bin { op, ty, .. } => table::bin_profile_for(*op, *ty, false).latency,
                Instr::Call { name, .. } => table::call_profile(name).latency,
                Instr::Cast { .. } | Instr::Select { .. } => 1.0,
                _ => 0.5,
            })
            .sum::<f64>()
            * 0.5; // roughly half the body sits on the carried chain
        recurrences.push(Recurrence {
            op_latency: chain.max(1.0) * block as f64,
        });
    }

    // ---- iteration split ----------------------------------------------
    let (blocks, remainder) = if block <= 1 {
        (trip, 0)
    } else {
        (trip / block, trip % block)
    };
    // A vector loop whose trip never reaches one block runs fully scalar.
    let (blocks, remainder) = if blocks == 0 && block > 1 {
        (0, trip)
    } else {
        (blocks, remainder)
    };

    let runtime_trip_check = !ir.trip.is_compile_time_known() && vectorized;
    if let TripCount::Runtime(_) = ir.trip {
        per_exec_uops += 2.0;
    }

    LoopShape {
        blocks,
        elems_per_block: block,
        uops,
        recurrences,
        streams,
        remainder_elems: remainder,
        scalar_uops_per_iter: scalar_uops,
        per_execution_overhead_uops: per_exec_uops,
        live_vector_regs: live_regs.round() as u32,
        runtime_trip_check,
    }
}

/// Steady-state working set of one access: unique bytes per innermost pass,
/// streamed over the outer iterations that move its base, capped by the
/// array size.
fn effective_footprint(a: &nvc_ir::MemAccess, ir: &LoopIr) -> u64 {
    let per_pass = a.bytes_touched(ir.trip.count());
    let streamed = per_pass.saturating_mul(a.reuse_trips.max(1));
    if a.array_bytes > 0 {
        streamed.min(a.array_bytes.max(per_pass.min(a.array_bytes)))
    } else {
        streamed
    }
}

fn widest(a: ScalarType, b: ScalarType) -> ScalarType {
    if a.size_bytes() >= b.size_bytes() {
        a
    } else {
        b
    }
}

/// Total physical uops the compiler must emit for this shape (steady body +
/// one scalar remainder body). Drives the compile-time model.
pub fn emitted_uops(shape: &LoopShape) -> f64 {
    let body: f64 = shape.uops.iter().map(|u| u.count).sum();
    body + shape.scalar_uops_per_iter + shape.per_execution_overhead_uops
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_frontend::parse_translation_unit;
    use nvc_ir::{lower_innermost_loops, ParamEnv};

    fn lower(src: &str, env: &ParamEnv) -> LoopIr {
        let tu = parse_translation_unit(src).unwrap();
        lower_innermost_loops(&tu, src, env).unwrap()[0].ir.clone()
    }

    fn target() -> TargetConfig {
        TargetConfig::i7_8559u()
    }

    const COPY: &str = "float a[4096] __attribute__((aligned(64))); float b[4096] __attribute__((aligned(64)));\nvoid f() { for (int i = 0; i < 4096; i++) { a[i] = b[i]; } }";

    #[test]
    fn block_split_exact() {
        let ir = lower(COPY, &ParamEnv::new());
        let shape = build_shape(&ir, VectorDecision::new(8, 2), &target());
        assert_eq!(shape.elems_per_block, 16);
        assert_eq!(shape.blocks, 256);
        assert_eq!(shape.remainder_elems, 0);
        assert!(!shape.runtime_trip_check);
    }

    #[test]
    fn remainder_when_trip_not_divisible() {
        let src = "float a[4096]; float b[4096];\nvoid f() { for (int i = 0; i < 1000; i++) { a[i] = b[i]; } }";
        let ir = lower(src, &ParamEnv::new());
        let shape = build_shape(&ir, VectorDecision::new(16, 4), &target());
        assert_eq!(shape.blocks, 15);
        assert_eq!(shape.remainder_elems, 1000 - 15 * 64);
    }

    #[test]
    fn tiny_trip_runs_fully_scalar() {
        let src =
            "float a[64]; float b[64];\nvoid f() { for (int i = 0; i < 30; i++) { a[i] = b[i]; } }";
        let ir = lower(src, &ParamEnv::new());
        let shape = build_shape(&ir, VectorDecision::new(64, 8), &target());
        assert_eq!(shape.blocks, 0);
        assert_eq!(shape.remainder_elems, 30);
    }

    #[test]
    fn runtime_trip_needs_guard() {
        let src = "float a[4096]; float b[4096];\nvoid f(int n) { for (int i = 0; i < n; i++) { a[i] = b[i]; } }";
        let ir = lower(src, &ParamEnv::new().with("n", 4096));
        let shape = build_shape(&ir, VectorDecision::new(8, 1), &target());
        assert!(shape.runtime_trip_check);
        let scalar = build_shape(&ir, VectorDecision::new(1, 1), &target());
        assert!(!scalar.runtime_trip_check);
    }

    #[test]
    fn wide_vf_multiplies_uops() {
        let ir = lower(COPY, &ParamEnv::new());
        let t = target();
        let narrow = build_shape(&ir, VectorDecision::new(8, 1), &t);
        let wide = build_shape(&ir, VectorDecision::new(64, 1), &t);
        let n_loads = |s: &LoopShape| {
            s.uops
                .iter()
                .filter(|u| u.class == ResourceClass::VLoad)
                .map(|u| u.count)
                .sum::<f64>()
        };
        // VF 64 on f32 = 8 physical registers per value.
        assert!((n_loads(&wide) / n_loads(&narrow) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_creates_recurrence_and_accumulators() {
        let src = "float x[4096];\nfloat f() { float s = 0.0; for (int i = 0; i < 4096; i++) { s += x[i]; } return s; }";
        let ir = lower(src, &ParamEnv::new());
        let t = target();
        let shape = build_shape(&ir, VectorDecision::new(8, 4), &t);
        assert_eq!(shape.recurrences.len(), 1);
        assert_eq!(shape.recurrences[0].op_latency, 4.0);
        // 4 interleaved accumulators of 1 register each + temps.
        assert!(shape.live_vector_regs >= 4);
        let huge = build_shape(&ir, VectorDecision::new(64, 16), &t);
        // 8 regs × 16 copies = 128 accumulators: way past the register file.
        assert!(huge.live_vector_regs > t.num_vector_regs);
    }

    #[test]
    fn masked_store_costs_more() {
        let plain = lower(COPY, &ParamEnv::new());
        let src = "float a[4096]; float b[4096];\nvoid f() { for (int i = 0; i < 4096; i++) { if (b[i] > 0.0) { a[i] = b[i]; } } }";
        let masked = lower(src, &ParamEnv::new());
        let t = target();
        let d = VectorDecision::new(8, 1);
        let store_uops = |ir: &LoopIr| {
            build_shape(ir, d, &t)
                .uops
                .iter()
                .filter(|u| u.class == ResourceClass::VStore)
                .map(|u| u.count)
                .sum::<f64>()
        };
        assert!(store_uops(&masked) > store_uops(&plain) * 1.5);
    }

    #[test]
    fn gather_scalarizes_lanes() {
        let src = "int a[65536]; int idx[4096]; int out[4096];\nvoid f() { for (int i = 0; i < 4096; i++) { out[i] = a[idx[i]]; } }";
        let ir = lower(src, &ParamEnv::new());
        let shape = build_shape(&ir, VectorDecision::new(8, 1), &target());
        let gathers: f64 = shape
            .streams
            .iter()
            .filter(|s| matches!(s.pattern, StreamPattern::Gather))
            .map(|s| s.gather_lanes_per_block)
            .sum();
        assert_eq!(gathers, 8.0);
    }

    #[test]
    fn small_stride_uses_interleaved_lowering() {
        let src = "float a[2048]; float b[4096];\nvoid f() { for (int i = 0; i < 2048; i++) { a[i] = b[2*i]; } }";
        let ir = lower(src, &ParamEnv::new());
        let shape = build_shape(&ir, VectorDecision::new(8, 1), &target());
        // No gather streams: stride 2 lowers to wide loads + shuffles.
        assert!(shape
            .streams
            .iter()
            .all(|s| !matches!(s.pattern, StreamPattern::Gather)));
        // But it loads 2× the data.
        let bytes: f64 = shape
            .streams
            .iter()
            .filter(|s| !s.is_store)
            .map(|s| s.bytes_per_block)
            .sum();
        assert!(bytes >= 8.0 * 4.0 * 2.0 * 0.9);
    }

    #[test]
    fn misaligned_loads_cost_extra() {
        let aligned = lower(COPY, &ParamEnv::new());
        let src = "float a[4096]; float b[4097];\nvoid f() { for (int i = 0; i < 4096; i++) { a[i] = b[i+1]; } }";
        let misaligned = lower(src, &ParamEnv::new());
        let t = target();
        let d = VectorDecision::new(8, 1);
        let load_uops = |ir: &LoopIr| {
            build_shape(ir, d, &t)
                .uops
                .iter()
                .filter(|u| u.class == ResourceClass::VLoad)
                .map(|u| u.count)
                .sum::<f64>()
        };
        assert!(load_uops(&misaligned) > load_uops(&aligned));
    }

    #[test]
    fn clamp_respects_dependences_and_target() {
        let src =
            "int a[4096];\nvoid f(int n) { for (int i = 0; i < n-4; i++) { a[i+4] = a[i]; } }";
        let ir = lower(src, &ParamEnv::new().with("n", 4096));
        let t = target();
        assert_eq!(
            clamp_decision(&ir, VectorDecision::new(64, 8), &t),
            VectorDecision::new(4, 8)
        );
        // IF clamps to the target maximum.
        assert_eq!(
            clamp_decision(&ir, VectorDecision::new(2, 512), &t).if_,
            t.max_if
        );
    }

    #[test]
    fn emitted_uops_grow_with_factors() {
        let ir = lower(COPY, &ParamEnv::new());
        let t = target();
        let small = emitted_uops(&build_shape(&ir, VectorDecision::new(4, 1), &t));
        let big = emitted_uops(&build_shape(&ir, VectorDecision::new(64, 16), &t));
        assert!(big > small * 20.0);
    }

    #[test]
    fn footprints_capped_by_array_size() {
        // Matmul B: strided access streamed over outer trips would exceed
        // the array; the cap keeps it at the array size.
        let src = "float A[64][64]; float B[64][64]; float C[64][64];
void mm() { for (int i=0;i<64;i++) for (int j=0;j<64;j++) { float s=0.0; for (int k=0;k<64;k++) { s += A[i][k]*B[k][j]; } C[i][j]=s; } }";
        let ir = lower(src, &ParamEnv::new());
        let shape = build_shape(&ir, VectorDecision::new(8, 1), &target());
        for s in &shape.streams {
            assert!(s.footprint_bytes <= 64 * 64 * 4);
        }
    }
}
