//! Shared AST-level analyses for the Polly-lite transforms.
//!
//! These are deliberately syntactic: a transformation is legal only when
//! the involved subscripts are simple affine expressions the checks can
//! fully understand — anything else makes the pass bail, as Polly does
//! when a region is not representable polyhedrally.

use std::collections::HashMap;

use nvc_frontend::ast::{BinaryOp, Expr, ExprKind, Stmt, StmtKind, TranslationUnit};

/// A canonical constant-bound loop header: `for (int iv = start; iv <
/// bound; iv += step)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstHeader {
    /// Induction variable name.
    pub iv: String,
    /// Constant start.
    pub start: i64,
    /// Constant exclusive bound.
    pub bound: i64,
    /// Constant positive step.
    pub step: i64,
}

impl ConstHeader {
    /// Trip count.
    pub fn trip(&self) -> i64 {
        ((self.bound - self.start).max(0) + self.step - 1) / self.step
    }
}

/// Recognizes a canonical header with constant bounds.
pub fn const_header(stmt: &Stmt) -> Option<ConstHeader> {
    let StmtKind::For {
        init, cond, step, ..
    } = &stmt.kind
    else {
        return None;
    };
    let (iv, start) = match init.as_deref().map(|s| &s.kind) {
        Some(StmtKind::Decl { declarators, .. }) if declarators.len() == 1 => {
            let d = &declarators[0];
            (d.name.clone(), d.init.as_ref()?.const_int()?)
        }
        Some(StmtKind::Expr(Expr {
            kind:
                ExprKind::Assign {
                    op: None,
                    target,
                    value,
                },
            ..
        })) => match &target.kind {
            ExprKind::Ident(n) => (n.clone(), value.const_int()?),
            _ => return None,
        },
        _ => return None,
    };
    let bound = match cond.as_ref().map(|c| &c.kind) {
        Some(ExprKind::Binary {
            op: BinaryOp::Lt,
            lhs,
            rhs,
        }) => match &lhs.kind {
            ExprKind::Ident(n) if *n == iv => rhs.const_int()?,
            _ => return None,
        },
        _ => return None,
    };
    let step_val = match step.as_ref().map(|e| &e.kind) {
        Some(ExprKind::IncDec {
            target, delta: 1, ..
        }) => match &target.kind {
            ExprKind::Ident(n) if *n == iv => 1,
            _ => return None,
        },
        Some(ExprKind::Assign {
            op: Some(BinaryOp::Add),
            target,
            value,
        }) => match &target.kind {
            ExprKind::Ident(n) if *n == iv => value.const_int()?,
            _ => return None,
        },
        _ => return None,
    };
    (step_val > 0).then_some(ConstHeader {
        iv,
        start,
        bound,
        step: step_val,
    })
}

/// The loop body with single-statement blocks unwrapped.
pub fn unwrap_body(body: &Stmt) -> &Stmt {
    match &body.kind {
        StmtKind::Block(stmts) if stmts.len() == 1 => unwrap_body(&stmts[0]),
        _ => body,
    }
}

/// One array access found in a body.
#[derive(Debug, Clone)]
pub struct AstAccess {
    /// Array name.
    pub array: String,
    /// Per-dimension index expressions (cloned).
    pub indices: Vec<Expr>,
    /// Store vs load.
    pub is_store: bool,
    /// Store via an associative compound assignment (`+=`, `*=`, `&=`,
    /// `|=`, `^=`), which commutes across iteration reordering.
    pub is_assoc_update: bool,
}

/// Collects every array access in a statement subtree.
pub fn collect_accesses(stmt: &Stmt) -> Vec<AstAccess> {
    let mut out = Vec::new();
    walk_stmt(stmt, &mut out);
    out
}

fn walk_stmt(stmt: &Stmt, out: &mut Vec<AstAccess>) {
    match &stmt.kind {
        StmtKind::Block(stmts) => {
            for s in stmts {
                walk_stmt(s, out);
            }
        }
        StmtKind::Decl { declarators, .. } => {
            for d in declarators {
                if let Some(init) = &d.init {
                    walk_expr(init, false, false, out);
                }
            }
        }
        StmtKind::Expr(e) => walk_expr(e, false, false, out),
        StmtKind::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(i) = init {
                walk_stmt(i, out);
            }
            if let Some(c) = cond {
                walk_expr(c, false, false, out);
            }
            if let Some(s) = step {
                walk_expr(s, false, false, out);
            }
            walk_stmt(body, out);
        }
        StmtKind::While { cond, body, .. } => {
            walk_expr(cond, false, false, out);
            walk_stmt(body, out);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            walk_expr(cond, false, false, out);
            walk_stmt(then_branch, out);
            if let Some(e) = else_branch {
                walk_stmt(e, out);
            }
        }
        StmtKind::Return(Some(e)) => walk_expr(e, false, false, out),
        _ => {}
    }
}

fn walk_expr(e: &Expr, as_store: bool, assoc: bool, out: &mut Vec<AstAccess>) {
    match &e.kind {
        ExprKind::Assign { op, target, value } => {
            let is_assoc = matches!(
                op,
                Some(BinaryOp::Add)
                    | Some(BinaryOp::Mul)
                    | Some(BinaryOp::BitAnd)
                    | Some(BinaryOp::BitOr)
                    | Some(BinaryOp::BitXor)
            );
            walk_expr(target, true, is_assoc, out);
            walk_expr(value, false, false, out);
        }
        ExprKind::IncDec { target, .. } => walk_expr(target, true, true, out),
        ExprKind::Index { .. } => {
            if let Some((name, idx)) = e.as_array_access() {
                out.push(AstAccess {
                    array: name.to_string(),
                    indices: idx.into_iter().cloned().collect(),
                    is_store: as_store,
                    is_assoc_update: as_store && assoc,
                });
                // Index expressions may contain further accesses (a[b[i]]).
                if let Some((_, idx2)) = e.as_array_access() {
                    for i in idx2 {
                        walk_expr(i, false, false, out);
                    }
                }
            }
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, false, false, out);
            walk_expr(rhs, false, false, out);
        }
        ExprKind::Unary { operand, .. } | ExprKind::Cast { operand, .. } => {
            walk_expr(operand, false, false, out)
        }
        ExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            walk_expr(cond, false, false, out);
            walk_expr(then_expr, false, false, out);
            walk_expr(else_expr, false, false, out);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                walk_expr(a, false, false, out);
            }
        }
        _ => {}
    }
}

/// Coefficient of `iv` in an affine index expression, or `None` when the
/// expression is not affine in the loop IVs.
pub fn affine_coeff(e: &Expr, iv: &str) -> Option<i64> {
    match &e.kind {
        ExprKind::IntLit(_) => Some(0),
        ExprKind::Ident(n) => Some(if n == iv { 1 } else { 0 }),
        ExprKind::Binary { op, lhs, rhs } => {
            let a = affine_coeff(lhs, iv)?;
            let b = affine_coeff(rhs, iv)?;
            match op {
                BinaryOp::Add => Some(a + b),
                BinaryOp::Sub => Some(a - b),
                BinaryOp::Mul => {
                    // Only const × affine is affine.
                    if let Some(c) = lhs.const_int() {
                        Some(c * b)
                    } else if let Some(c) = rhs.const_int() {
                        Some(a * c)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        ExprKind::Unary {
            op: nvc_frontend::ast::UnaryOp::Neg,
            operand,
        } => affine_coeff(operand, iv).map(|c| -c),
        ExprKind::Cast { operand, .. } => affine_coeff(operand, iv),
        _ => None,
    }
}

/// Element stride of an access in `iv`, after linearizing with the global
/// array dimensions. `None` when the access is not affine.
pub fn linearized_stride(
    access: &AstAccess,
    dims: &HashMap<String, Vec<i64>>,
    iv: &str,
) -> Option<i64> {
    let d = dims.get(&access.array)?;
    if d.len() != access.indices.len() {
        return None;
    }
    let mut stride = 0i64;
    for (k, idx) in access.indices.iter().enumerate() {
        let c = affine_coeff(idx, iv)?;
        let weight: i64 = d[k + 1..].iter().product();
        stride += c * weight;
    }
    Some(stride)
}

/// Global array dimensions of a unit.
pub fn array_dims(tu: &TranslationUnit) -> HashMap<String, Vec<i64>> {
    tu.globals()
        .filter(|g| !g.dims.is_empty())
        .map(|g| (g.name.clone(), g.dims.clone()))
        .collect()
}

/// Conservative legality for iteration reordering (interchange/tiling):
/// every *stored* array must either be updated only through associative
/// compound assignments, or have all of its accesses within the nest use
/// syntactically identical subscripts (same cell touched only by the same
/// iteration).
pub fn reorder_safe(accesses: &[AstAccess]) -> bool {
    let stored: Vec<&AstAccess> = accesses.iter().filter(|a| a.is_store).collect();
    for s in &stored {
        if s.is_assoc_update {
            continue;
        }
        let same_array: Vec<&AstAccess> = accesses.iter().filter(|a| a.array == s.array).collect();
        let all_identical = same_array.iter().all(|a| {
            a.indices.len() == s.indices.len()
                && a.indices
                    .iter()
                    .zip(s.indices.iter())
                    .all(|(x, y)| exprs_equal(x, y))
        });
        if !all_identical {
            return false;
        }
        // The subscripts must also be affine, or we understand nothing.
        if s.indices.iter().any(|i| affine_coeff(i, "\0").is_none()) {
            return false;
        }
    }
    true
}

/// Structural equality of expressions (delegates to `nvc-ir`'s helper).
pub fn exprs_equal(a: &Expr, b: &Expr) -> bool {
    nvc_ir::lower::exprs_equal_pub(a, b)
}

/// Renames every occurrence of identifier `from` to `to` in a subtree.
pub fn rename_ident_stmt(stmt: &mut Stmt, from: &str, to: &str) {
    match &mut stmt.kind {
        StmtKind::Block(stmts) => {
            for s in stmts {
                rename_ident_stmt(s, from, to);
            }
        }
        StmtKind::Decl { declarators, .. } => {
            for d in declarators {
                if d.name == from {
                    d.name = to.to_string();
                }
                if let Some(init) = &mut d.init {
                    rename_ident_expr(init, from, to);
                }
            }
        }
        StmtKind::Expr(e) => rename_ident_expr(e, from, to),
        StmtKind::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(i) = init {
                rename_ident_stmt(i, from, to);
            }
            if let Some(c) = cond {
                rename_ident_expr(c, from, to);
            }
            if let Some(s) = step {
                rename_ident_expr(s, from, to);
            }
            rename_ident_stmt(body, from, to);
        }
        StmtKind::While { cond, body, .. } => {
            rename_ident_expr(cond, from, to);
            rename_ident_stmt(body, from, to);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            rename_ident_expr(cond, from, to);
            rename_ident_stmt(then_branch, from, to);
            if let Some(e) = else_branch {
                rename_ident_stmt(e, from, to);
            }
        }
        StmtKind::Return(Some(e)) => rename_ident_expr(e, from, to),
        _ => {}
    }
}

fn rename_ident_expr(e: &mut Expr, from: &str, to: &str) {
    match &mut e.kind {
        ExprKind::Ident(n) => {
            if n == from {
                *n = to.to_string();
            }
        }
        ExprKind::Index { base, index } => {
            rename_ident_expr(base, from, to);
            rename_ident_expr(index, from, to);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                rename_ident_expr(a, from, to);
            }
        }
        ExprKind::Unary { operand, .. } | ExprKind::Cast { operand, .. } => {
            rename_ident_expr(operand, from, to)
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            rename_ident_expr(lhs, from, to);
            rename_ident_expr(rhs, from, to);
        }
        ExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            rename_ident_expr(cond, from, to);
            rename_ident_expr(then_expr, from, to);
            rename_ident_expr(else_expr, from, to);
        }
        ExprKind::Assign { target, value, .. } => {
            rename_ident_expr(target, from, to);
            rename_ident_expr(value, from, to);
        }
        ExprKind::IncDec { target, .. } => rename_ident_expr(target, from, to),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_frontend::{parse_statement, parse_translation_unit};

    #[test]
    fn const_header_recognition() {
        let s = parse_statement("for (int i = 0; i < 100; i++) { }").unwrap();
        let h = const_header(&s).unwrap();
        assert_eq!(h.iv, "i");
        assert_eq!(h.trip(), 100);
        let s2 = parse_statement("for (int i = 10; i < 100; i += 3) { }").unwrap();
        assert_eq!(const_header(&s2).unwrap().trip(), 30);
        // Runtime bounds are not canonical-constant.
        let s3 = parse_statement("for (int i = 0; i < n; i++) { }").unwrap();
        assert!(const_header(&s3).is_none());
    }

    #[test]
    fn affine_coeff_extraction() {
        let e = parse_statement("x = 2*i + 3*j - 1;").unwrap();
        let nvc_frontend::ast::StmtKind::Expr(Expr {
            kind: ExprKind::Assign { value, .. },
            ..
        }) = &e.kind
        else {
            panic!()
        };
        assert_eq!(affine_coeff(value, "i"), Some(2));
        assert_eq!(affine_coeff(value, "j"), Some(3));
        assert_eq!(affine_coeff(value, "k"), Some(0));
    }

    #[test]
    fn collect_accesses_in_gemm_body() {
        let s = parse_statement("C[i][j] += A[i][k] * B[k][j];").unwrap();
        let acc = collect_accesses(&s);
        assert_eq!(acc.len(), 3);
        let c = acc.iter().find(|a| a.array == "C").unwrap();
        assert!(c.is_store);
        assert!(c.is_assoc_update);
        assert!(acc.iter().filter(|a| !a.is_store).count() == 2);
    }

    #[test]
    fn linearized_strides_in_gemm() {
        let tu = parse_translation_unit("float A[256][256]; float B[256][256];").unwrap();
        let dims = array_dims(&tu);
        let s = parse_statement("x = A[i][k] + B[k][j];").unwrap();
        let acc = collect_accesses(&s);
        let a = acc.iter().find(|x| x.array == "A").unwrap();
        let b = acc.iter().find(|x| x.array == "B").unwrap();
        assert_eq!(linearized_stride(a, &dims, "k"), Some(1));
        assert_eq!(linearized_stride(a, &dims, "i"), Some(256));
        assert_eq!(linearized_stride(b, &dims, "k"), Some(256));
        assert_eq!(linearized_stride(b, &dims, "j"), Some(1));
    }

    #[test]
    fn reorder_safety() {
        // Associative update: safe.
        let s = parse_statement("C[i][j] += A[i][k];").unwrap();
        assert!(reorder_safe(&collect_accesses(&s)));
        // Identical subscripts: safe.
        let s2 = parse_statement("a[i][j] = a[i][j] * 2 + b[i][j];").unwrap();
        assert!(reorder_safe(&collect_accesses(&s2)));
        // Shifted subscript on a stored array: unsafe.
        let s3 = parse_statement("a[i][j] = a[i][j-1] + 1;").unwrap();
        assert!(!reorder_safe(&collect_accesses(&s3)));
    }

    #[test]
    fn rename_ident_everywhere() {
        let mut s = parse_statement("for (int q = 0; q < 8; q++) { a[q] = q * 2; }").unwrap();
        rename_ident_stmt(&mut s, "q", "z");
        let printed = nvc_frontend::printer::print_stmt(&s, 0);
        assert!(!printed.contains('q'), "{printed}");
        assert!(printed.contains("a[z] = z * 2"));
    }
}
