//! Polyhedral-lite loop optimizer — the reproduction's stand-in for Polly.
//!
//! §2.2 of the paper: "Polly uses an abstract mathematical representation
//! based on integer polyhedra to analyze and optimize the memory access
//! pattern of a program. Polly performs classical loop transformations,
//! especially **tiling and loop fusion** to improve data-locality."
//!
//! This crate implements the same three transformations as conservative
//! source-to-source rewrites over the [`nvc_frontend`] AST:
//!
//! * [`interchange`] — swaps a perfectly nested loop pair when that turns
//!   the innermost dominant access stride into unit stride (the classic
//!   `ijk → ikj` matmul win);
//! * [`tiling`] — rectangular tiling of 2- and 3-deep nests with large
//!   constant trip counts, shrinking per-tile working sets into cache;
//! * [`fusion`] — merges adjacent loops with identical headers when no
//!   producer/consumer distance exists, removing redundant streaming
//!   passes.
//!
//! Transformed sources re-enter the standard pipeline (parse → lower →
//! vectorize → simulate), so Polly and the RL agent compose exactly as the
//! paper's "combining Polly and deep RL" experiment does (§4.1).
//!
//! The legality checks are deliberately conservative: a transformation is
//! applied only when every affected access is affine and provably
//! dependence-free in the relevant direction, matching how Polly bails on
//! anything it cannot model polyhedrally.

pub mod analysis;
pub mod fusion;
pub mod interchange;
pub mod tiling;

use serde::{Deserialize, Serialize};

use nvc_frontend::{parse_translation_unit, print_translation_unit, FrontendError};

/// What the optimizer did to a unit.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PollyReport {
    /// Loop pairs interchanged.
    pub interchanged: usize,
    /// Nests tiled.
    pub tiled: usize,
    /// Loop pairs fused.
    pub fused: usize,
}

impl PollyReport {
    /// True when no transformation applied.
    pub fn is_noop(&self) -> bool {
        self.interchanged == 0 && self.tiled == 0 && self.fused == 0
    }
}

/// Options controlling the optimizer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PollyConfig {
    /// Tile edge length (Polly's default is 32).
    pub tile_size: i64,
    /// Minimum constant trip count before tiling pays for itself.
    pub min_trip_for_tiling: i64,
    /// Enable interchange.
    pub interchange: bool,
    /// Enable tiling.
    pub tiling: bool,
    /// Enable fusion.
    pub fusion: bool,
}

impl Default for PollyConfig {
    fn default() -> Self {
        PollyConfig {
            tile_size: 32,
            min_trip_for_tiling: 128,
            interchange: true,
            tiling: true,
            fusion: true,
        }
    }
}

/// Runs the full Polly-lite pipeline on C source, returning the optimized
/// source and a report.
///
/// # Errors
///
/// Returns a [`FrontendError`] if the source does not parse. The output is
/// guaranteed to re-parse (it is produced by the AST printer).
pub fn optimize_source(
    source: &str,
    cfg: &PollyConfig,
) -> Result<(String, PollyReport), FrontendError> {
    let mut tu = parse_translation_unit(source)?;
    let mut report = PollyReport::default();
    // Interchange first: fusing adjacent nests would hide perfect nests
    // from the interchange legality check (mvt's second nest, for
    // example).
    if cfg.interchange {
        report.interchanged += interchange::interchange_in_unit(&mut tu);
    }
    if cfg.tiling {
        report.tiled += tiling::tile_in_unit(&mut tu, cfg.tile_size, cfg.min_trip_for_tiling);
    }
    if cfg.fusion {
        report.fused += fusion::fuse_in_unit(&mut tu);
    }
    let printed = print_translation_unit(&tu);
    debug_assert!(
        parse_translation_unit(&printed).is_ok(),
        "polly output must re-parse"
    );
    Ok((printed, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GEMM: &str = "float A[256][256]; float B[256][256]; float C[256][256];
void gemm() {
    for (int i = 0; i < 256; i++) {
        for (int j = 0; j < 256; j++) {
            for (int k = 0; k < 256; k++) {
                C[i][j] += A[i][k] * B[k][j];
            }
        }
    }
}";

    #[test]
    fn gemm_is_transformed_and_reparses() {
        let (out, report) = optimize_source(GEMM, &PollyConfig::default()).unwrap();
        assert!(!report.is_noop(), "gemm should be optimized: {report:?}");
        // Output must be valid C in our subset.
        parse_translation_unit(&out).expect("optimized source re-parses");
    }

    #[test]
    fn gemm_interchange_makes_inner_stride_unit() {
        let cfg = PollyConfig {
            tiling: false,
            fusion: false,
            ..PollyConfig::default()
        };
        let (out, report) = optimize_source(GEMM, &cfg).unwrap();
        assert_eq!(report.interchanged, 1);
        // After j↔k interchange the innermost loop is j: B[k][j] and
        // C[i][j] are unit stride.
        let pos_j = out.find("for (int j").expect("j loop");
        let pos_k = out.find("for (int k").expect("k loop");
        assert!(pos_k < pos_j, "k should now be outside j:\n{out}");
    }

    #[test]
    fn small_trip_counts_are_not_tiled() {
        let src = "float a[64][64];\nvoid f() { for (int i = 0; i < 64; i++) { for (int j = 0; j < 64; j++) { a[i][j] = 0.0; } } }";
        let (_, report) = optimize_source(src, &PollyConfig::default()).unwrap();
        assert_eq!(report.tiled, 0);
    }

    #[test]
    fn scalar_code_is_untouched() {
        let src = "int x;\nvoid f(int n) { x = n * 2; }";
        let (out, report) = optimize_source(src, &PollyConfig::default()).unwrap();
        assert!(report.is_noop());
        assert!(out.contains("x = n * 2"));
    }

    #[test]
    fn disabled_passes_do_nothing() {
        let cfg = PollyConfig {
            interchange: false,
            tiling: false,
            fusion: false,
            ..PollyConfig::default()
        };
        let (_, report) = optimize_source(GEMM, &cfg).unwrap();
        assert!(report.is_noop());
    }
}
