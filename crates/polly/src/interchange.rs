//! Loop interchange: moves the loop with the best spatial locality
//! innermost.
//!
//! The canonical win is `ijk` matrix multiply, where interchanging `j` and
//! `k` turns the column-major walk of `B[k][j]` (stride = row length) into
//! a unit-stride walk — simultaneously making the loop vectorizable with
//! contiguous loads. This is the transformation behind Polly "performing
//! better on benchmarks with larger number of loop iterations" (§4.1).

use std::collections::HashMap;

use nvc_frontend::ast::{Item, Stmt, StmtKind, TranslationUnit};

use crate::analysis::{
    array_dims, collect_accesses, const_header, linearized_stride, reorder_safe, unwrap_body,
};

/// Applies interchange throughout a unit. Returns how many pairs were
/// swapped.
pub fn interchange_in_unit(tu: &mut TranslationUnit) -> usize {
    let dims = array_dims(tu);
    let mut count = 0;
    for item in &mut tu.items {
        if let Item::Function(f) = item {
            count += interchange_stmt(&mut f.body, &dims);
        }
    }
    count
}

fn interchange_stmt(stmt: &mut Stmt, dims: &HashMap<String, Vec<i64>>) -> usize {
    let mut count = 0;
    // Recurse first so innermost pairs are considered bottom-up.
    match &mut stmt.kind {
        StmtKind::Block(stmts) => {
            for s in stmts {
                count += interchange_stmt(s, dims);
            }
        }
        StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
            count += interchange_stmt(body, dims);
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            count += interchange_stmt(then_branch, dims);
            if let Some(e) = else_branch {
                count += interchange_stmt(e, dims);
            }
        }
        _ => {}
    }
    if try_interchange(stmt, dims) {
        count += 1;
    }
    count
}

/// Attempts to interchange `outer` with its directly nested loop.
fn try_interchange(outer: &mut Stmt, dims: &HashMap<String, Vec<i64>>) -> bool {
    if !outer.is_loop() {
        return false;
    }
    let Some(outer_header) = const_header(outer) else {
        return false;
    };
    // The body must be exactly one inner loop (perfect nest).
    let StmtKind::For { body, .. } = &outer.kind else {
        return false;
    };
    let inner = unwrap_body(body);
    let Some(inner_header) = const_header(inner) else {
        return false;
    };
    let StmtKind::For {
        body: inner_body, ..
    } = &inner.kind
    else {
        return false;
    };
    // The inner loop must be innermost (no loops inside).
    let mut has_loop = false;
    inner_body.walk(&mut |s| {
        if s.is_loop() {
            has_loop = true;
        }
    });
    if has_loop {
        return false;
    }

    // Profitability: total |stride| of the innermost walk should shrink.
    let accesses = collect_accesses(inner_body);
    if accesses.is_empty() {
        return false;
    }
    let score = |iv: &str| -> Option<i64> {
        let mut total = 0;
        for a in &accesses {
            let s = linearized_stride(a, dims, iv)?;
            total += s.unsigned_abs().min(64) as i64;
        }
        Some(total)
    };
    let (Some(inner_score), Some(outer_score)) = (score(&inner_header.iv), score(&outer_header.iv))
    else {
        return false;
    };
    if outer_score >= inner_score {
        return false; // current order is already at least as good
    }

    // Legality: the reordering must be safe.
    if !reorder_safe(&accesses) {
        return false;
    }

    // Swap the two headers in place.
    swap_headers(outer);
    true
}

/// Swaps the `(init, cond, step)` clauses of a loop and its directly
/// nested loop.
fn swap_headers(outer: &mut Stmt) {
    let StmtKind::For {
        init: oi,
        cond: oc,
        step: os,
        body,
        ..
    } = &mut outer.kind
    else {
        return;
    };
    // Find the inner `for` through single-statement blocks.
    fn inner_for(s: &mut Stmt) -> Option<&mut Stmt> {
        if matches!(s.kind, StmtKind::For { .. }) {
            return Some(s);
        }
        match &mut s.kind {
            StmtKind::Block(stmts) if stmts.len() == 1 => inner_for(&mut stmts[0]),
            _ => None,
        }
    }
    let Some(inner) = inner_for(body) else {
        return;
    };
    let StmtKind::For {
        init: ii,
        cond: ic,
        step: is_,
        ..
    } = &mut inner.kind
    else {
        return;
    };
    std::mem::swap(oi, ii);
    std::mem::swap(oc, ic);
    std::mem::swap(os, is_);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_frontend::{parse_translation_unit, print_translation_unit};

    fn run(src: &str) -> (String, usize) {
        let mut tu = parse_translation_unit(src).unwrap();
        let n = interchange_in_unit(&mut tu);
        (print_translation_unit(&tu), n)
    }

    #[test]
    fn transpose_copy_interchanges() {
        // b[j][i] walks columns when j is inner; interchange fixes it.
        let src = "float a[128][128]; float b[128][128];
void f() { for (int i = 0; i < 128; i++) { for (int j = 0; j < 128; j++) { a[j][i] = b[j][i]; } } }";
        let (out, n) = run(src);
        assert_eq!(n, 1);
        let pi = out.find("for (int i").unwrap();
        let pj = out.find("for (int j").unwrap();
        assert!(pj < pi, "j should be outer after interchange:\n{out}");
    }

    #[test]
    fn unit_stride_nest_is_left_alone() {
        let src = "float a[128][128];
void f() { for (int i = 0; i < 128; i++) { for (int j = 0; j < 128; j++) { a[i][j] = 0.0; } } }";
        let (_, n) = run(src);
        assert_eq!(n, 0);
    }

    #[test]
    fn gemm_jk_interchange() {
        let src = "float A[128][128]; float B[128][128]; float C[128][128];
void f() { for (int i = 0; i < 128; i++) { for (int j = 0; j < 128; j++) { for (int k = 0; k < 128; k++) { C[i][j] += A[i][k] * B[k][j]; } } } }";
        let (out, n) = run(src);
        assert_eq!(n, 1);
        // Innermost must now be j (unit stride for B and C).
        let pk = out.find("for (int k").unwrap();
        let pj = out.find("for (int j").unwrap();
        assert!(pk < pj, "k should be outer after interchange:\n{out}");
    }

    #[test]
    fn unsafe_stencil_is_not_interchanged() {
        // a[j][i] = a[j-1][i] carries a dependence along j; swapping j
        // inward would be illegal — reorder_safe must reject it.
        let src = "float a[128][128];
void f() { for (int i = 0; i < 128; i++) { for (int j = 1; j < 128; j++) { a[j][i] = a[j-1][i] + 1.0; } } }";
        let (_, n) = run(src);
        assert_eq!(n, 0);
    }

    #[test]
    fn imperfect_nest_is_not_interchanged() {
        let src = "float a[128][128]; float r[128];
void f() { for (int i = 0; i < 128; i++) { r[i] = 0.0; for (int j = 0; j < 128; j++) { a[j][i] = 1.0; } } }";
        let (_, n) = run(src);
        assert_eq!(n, 0);
    }

    #[test]
    fn runtime_bounds_are_not_interchanged() {
        let src = "float a[128][128];
void f(int n) { for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { a[j][i] = 0.0; } } }";
        let (_, n) = run(src);
        assert_eq!(n, 0);
    }
}
