//! Loop fusion: merges adjacent loops with identical iteration spaces.
//!
//! Fusing `for i { a[i] = … }` with `for i { b[i] = f(a[i]) }` removes a
//! full streaming pass over `a` — the producer's value is still in cache
//! (or a register) when the consumer runs. Legality is conservative: for
//! any array written in the first loop and touched in the second, all
//! subscripts must be identical, so values flow only within the same
//! iteration.

use nvc_frontend::ast::{Item, Stmt, StmtKind, TranslationUnit};

use crate::analysis::{collect_accesses, const_header, exprs_equal, rename_ident_stmt};

/// Fuses adjacent eligible loops throughout the unit. Returns the number
/// of loop pairs merged.
pub fn fuse_in_unit(tu: &mut TranslationUnit) -> usize {
    let mut count = 0;
    for item in &mut tu.items {
        if let Item::Function(f) = item {
            count += fuse_stmt(&mut f.body);
        }
    }
    count
}

fn fuse_stmt(stmt: &mut Stmt) -> usize {
    let mut count = 0;
    match &mut stmt.kind {
        StmtKind::Block(stmts) => {
            // Try fusing each adjacent pair, repeatedly (a fused loop may
            // fuse again with its next sibling).
            let mut i = 0;
            while i + 1 < stmts.len() {
                if let Some(fused) = try_fuse(&stmts[i], &stmts[i + 1]) {
                    stmts[i] = fused;
                    stmts.remove(i + 1);
                    count += 1;
                } else {
                    i += 1;
                }
            }
            for s in stmts {
                count += fuse_stmt(s);
            }
        }
        StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
            count += fuse_stmt(body);
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            count += fuse_stmt(then_branch);
            if let Some(e) = else_branch {
                count += fuse_stmt(e);
            }
        }
        _ => {}
    }
    count
}

fn try_fuse(first: &Stmt, second: &Stmt) -> Option<Stmt> {
    let h1 = const_header(first)?;
    let h2 = const_header(second)?;
    if (h1.start, h1.bound, h1.step) != (h2.start, h2.bound, h2.step) {
        return None;
    }
    let StmtKind::For {
        init,
        cond,
        step,
        body: body1,
        pragma,
    } = &first.kind
    else {
        return None;
    };
    let StmtKind::For { body: body2, .. } = &second.kind else {
        return None;
    };

    // Rename the second IV onto the first.
    let mut body2 = (**body2).clone();
    if h1.iv != h2.iv {
        rename_ident_stmt(&mut body2, &h2.iv, &h1.iv);
    }

    // Dependence check: arrays written in loop 1 and touched in loop 2
    // must use identical subscripts everywhere (same-iteration flow only).
    let acc1 = collect_accesses(body1);
    let acc2 = collect_accesses(&body2);
    for w in acc1.iter().filter(|a| a.is_store) {
        for r in acc2.iter().filter(|a| a.array == w.array) {
            let same = r.indices.len() == w.indices.len()
                && r.indices
                    .iter()
                    .zip(w.indices.iter())
                    .all(|(x, y)| exprs_equal(x, y));
            if !same {
                return None;
            }
        }
    }
    // And symmetrically: loop 2's writes must not disturb loop 1's reads
    // at other iterations (write-after-read across the fusion).
    for w in acc2.iter().filter(|a| a.is_store) {
        for r in acc1.iter().filter(|a| a.array == w.array) {
            let same = r.indices.len() == w.indices.len()
                && r.indices
                    .iter()
                    .zip(w.indices.iter())
                    .all(|(x, y)| exprs_equal(x, y));
            if !same {
                return None;
            }
        }
    }

    // Merge the bodies into one block.
    let span = first.span.merge(second.span);
    let merged = Stmt::new(StmtKind::Block(vec![(**body1).clone(), body2]), span);
    Some(Stmt::new(
        StmtKind::For {
            init: init.clone(),
            cond: cond.clone(),
            step: step.clone(),
            body: Box::new(merged),
            pragma: *pragma,
        },
        span,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_frontend::{parse_translation_unit, print_translation_unit};

    fn run(src: &str) -> (String, usize) {
        let mut tu = parse_translation_unit(src).unwrap();
        let n = fuse_in_unit(&mut tu);
        let out = print_translation_unit(&tu);
        parse_translation_unit(&out).expect("fused output re-parses");
        (out, n)
    }

    #[test]
    fn producer_consumer_same_index_fuses() {
        let src = "float a[1024]; float b[1024]; float c[1024];
void f() {
    for (int i = 0; i < 1024; i++) { a[i] = b[i] * 2.0; }
    for (int i = 0; i < 1024; i++) { c[i] = a[i] + 1.0; }
}";
        let (out, n) = run(src);
        assert_eq!(n, 1);
        assert_eq!(out.matches("for (").count(), 1);
        assert!(out.contains("a[i] = b[i] * 2.0"));
        assert!(out.contains("c[i] = a[i] + 1.0"));
    }

    #[test]
    fn different_ivs_are_renamed_and_fused() {
        let src = "float a[512]; float b[512];
void f() {
    for (int i = 0; i < 512; i++) { a[i] = 1.0; }
    for (int j = 0; j < 512; j++) { b[j] = a[j]; }
}";
        let (out, n) = run(src);
        assert_eq!(n, 1);
        assert!(out.contains("b[i] = a[i]"));
    }

    #[test]
    fn shifted_consumer_does_not_fuse() {
        // Second loop reads a[i-1]: fusing would read an unwritten value.
        let src = "float a[512]; float b[512];
void f() {
    for (int i = 1; i < 512; i++) { a[i] = 1.0; }
    for (int i = 1; i < 512; i++) { b[i] = a[i-1]; }
}";
        let (_, n) = run(src);
        assert_eq!(n, 0);
    }

    #[test]
    fn mismatched_bounds_do_not_fuse() {
        let src = "float a[512]; float b[512];
void f() {
    for (int i = 0; i < 512; i++) { a[i] = 1.0; }
    for (int i = 0; i < 256; i++) { b[i] = 2.0; }
}";
        let (_, n) = run(src);
        assert_eq!(n, 0);
    }

    #[test]
    fn chain_of_three_fuses_twice() {
        let src = "float a[512]; float b[512]; float c[512];
void f() {
    for (int i = 0; i < 512; i++) { a[i] = 1.0; }
    for (int i = 0; i < 512; i++) { b[i] = a[i]; }
    for (int i = 0; i < 512; i++) { c[i] = b[i]; }
}";
        let (out, n) = run(src);
        assert_eq!(n, 2);
        assert_eq!(out.matches("for (").count(), 1);
    }

    #[test]
    fn write_after_read_hazard_blocks_fusion() {
        // Loop 2 writes b[i+1] which loop 1 reads as b[i] at later
        // iterations.
        let src = "float a[512]; float b[520];
void f() {
    for (int i = 0; i < 512; i++) { a[i] = b[i]; }
    for (int i = 0; i < 512; i++) { b[i+1] = 0.0; }
}";
        let (_, n) = run(src);
        assert_eq!(n, 0);
    }
}
