//! Rectangular loop tiling.
//!
//! Tiling strip-mines each loop of a nest and sinks the point loops inside
//! the tile loops, so a tile's working set fits in cache before the nest
//! moves on. This is Polly's main locality weapon on PolyBench (§4.1); it
//! pays off on large iteration spaces and *costs* a little loop overhead,
//! which is exactly why the paper sees Polly lose to the RL agent on
//! small trip counts.

use std::collections::HashMap;

use nvc_frontend::ast::{
    BinaryOp, Declarator, Expr, ExprKind, Item, Stmt, StmtKind, TranslationUnit, Type,
};
use nvc_frontend::Span;

use crate::analysis::{collect_accesses, const_header, reorder_safe, unwrap_body, ConstHeader};

/// Working-set threshold below which tiling's loop overhead outweighs the
/// locality gain (roughly the L2 capacity of the modelled target).
const MIN_WORKING_SET_BYTES: i64 = 384 * 1024;
/// Minimum size of a *re-streamed* array (one whose subscripts ignore some
/// nest IV, so the whole array is touched once per iteration of that loop)
/// for tiling to pay.
const MIN_REUSED_ARRAY_BYTES: i64 = 192 * 1024;

/// Tiles every eligible nest in the unit. Returns the number of nests
/// tiled.
pub fn tile_in_unit(tu: &mut TranslationUnit, tile: i64, min_trip: i64) -> usize {
    // Array byte sizes for the profitability gate.
    let sizes: HashMap<String, i64> = tu
        .globals()
        .filter(|g| !g.dims.is_empty())
        .map(|g| (g.name.clone(), g.size_bytes()))
        .collect();
    let mut count = 0;
    for item in &mut tu.items {
        if let Item::Function(f) = item {
            count += tile_stmt(&mut f.body, tile, min_trip, &sizes);
        }
    }
    count
}

fn tile_stmt(stmt: &mut Stmt, tile: i64, min_trip: i64, sizes: &HashMap<String, i64>) -> usize {
    let mut count = 0;
    match &mut stmt.kind {
        StmtKind::Block(stmts) => {
            for s in stmts {
                count += tile_stmt(s, tile, min_trip, sizes);
            }
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            count += tile_stmt(then_branch, tile, min_trip, sizes);
            if let Some(e) = else_branch {
                count += tile_stmt(e, tile, min_trip, sizes);
            }
        }
        StmtKind::For { .. } => {
            if try_tile(stmt, tile, min_trip, sizes) {
                return 1;
            }
            // Not tileable at this level: descend.
            if let StmtKind::For { body, .. } = &mut stmt.kind {
                count += tile_stmt(body, tile, min_trip, sizes);
            }
        }
        StmtKind::While { body, .. } => {
            count += tile_stmt(body, tile, min_trip, sizes);
        }
        _ => {}
    }
    count
}

/// Collects the perfect nest rooted at `stmt`: headers outermost-first and
/// the innermost body.
fn perfect_nest(stmt: &Stmt) -> (Vec<ConstHeader>, &Stmt) {
    let mut headers = Vec::new();
    let mut cur = stmt;
    loop {
        let Some(h) = const_header(cur) else { break };
        let StmtKind::For { body, .. } = &cur.kind else {
            break;
        };
        headers.push(h);
        let inner = unwrap_body(body);
        if inner.is_loop() && matches!(inner.kind, StmtKind::For { .. }) {
            cur = inner;
        } else {
            return (headers, inner);
        }
    }
    (headers, stmt)
}

fn try_tile(stmt: &mut Stmt, tile: i64, min_trip: i64, sizes: &HashMap<String, i64>) -> bool {
    let (headers, innermost_body) = perfect_nest(stmt);
    if headers.len() < 2 || headers.len() > 3 {
        return false;
    }
    // Every loop: starts at 0, step 1, trip large and divisible by the
    // tile size (keeping the generated bounds exact, with no min()).
    for h in &headers {
        if h.start != 0 || h.step != 1 {
            return false;
        }
        if h.bound < min_trip || h.bound % tile != 0 {
            return false;
        }
    }
    // The innermost body must contain no further loops and be reorder
    // safe (tiling permutes iteration order across tiles).
    let mut has_loop = false;
    innermost_body.walk(&mut |s| {
        if s.is_loop() {
            has_loop = true;
        }
    });
    if has_loop {
        return false;
    }
    let accesses = collect_accesses(innermost_body);
    if accesses.is_empty() || !reorder_safe(&accesses) {
        return false;
    }
    // Profitability, part 1: the nest's distinct arrays must overflow the
    // outer cache levels (Polly's heuristics skip cache-resident nests).
    let mut seen = std::collections::HashSet::new();
    let mut working_set = 0i64;
    for a in &accesses {
        if seen.insert(a.array.clone()) {
            working_set += sizes.get(&a.array).copied().unwrap_or(0);
        }
    }
    if working_set < MIN_WORKING_SET_BYTES {
        return false;
    }
    // Profitability, part 2: some large array must actually be
    // *re-streamed* — its subscripts ignore at least one nest IV, so every
    // iteration of that loop walks the array again. Without such reuse
    // (e.g. matrix-vector products reading the matrix exactly once),
    // tiling only adds loop overhead.
    let has_reuse = accesses.iter().any(|a| {
        let big = sizes.get(&a.array).copied().unwrap_or(0) >= MIN_REUSED_ARRAY_BYTES;
        big && headers.iter().any(|h| {
            a.indices
                .iter()
                .all(|idx| crate::analysis::affine_coeff(idx, &h.iv) == Some(0))
        })
    });
    if !has_reuse {
        return false;
    }

    // Build the tiled nest: tile loops outermost (original order), then
    // point loops (original order), then the body.
    let headers = headers.clone();
    let body = innermost_body.clone();
    let mut new_stmt = body;
    // Point loops, innermost last → iterate headers in reverse.
    for h in headers.iter().rev() {
        let tvar = format!("{}__t", h.iv);
        new_stmt = make_for(
            &h.iv,
            ident(&tvar),
            bin(
                BinaryOp::Add,
                ident(&tvar),
                Expr::new(ExprKind::IntLit(tile), Span::synthetic()),
            ),
            1,
            new_stmt,
        );
    }
    for h in headers.iter().rev() {
        let tvar = format!("{}__t", h.iv);
        new_stmt = make_for(
            &tvar,
            Expr::new(ExprKind::IntLit(0), Span::synthetic()),
            Expr::new(ExprKind::IntLit(h.bound), Span::synthetic()),
            tile,
            new_stmt,
        );
    }
    *stmt = new_stmt;
    true
}

fn ident(name: &str) -> Expr {
    Expr::new(ExprKind::Ident(name.to_string()), Span::synthetic())
}

fn bin(op: BinaryOp, a: Expr, b: Expr) -> Expr {
    Expr::new(
        ExprKind::Binary {
            op,
            lhs: Box::new(a),
            rhs: Box::new(b),
        },
        Span::synthetic(),
    )
}

/// `for (int iv = start; iv < bound; iv += step) body`
fn make_for(iv: &str, start: Expr, bound: Expr, step: i64, body: Stmt) -> Stmt {
    let span = Span::synthetic();
    let init = Stmt::new(
        StmtKind::Decl {
            ty: Type::Int { unsigned: false },
            declarators: vec![Declarator {
                name: iv.to_string(),
                dims: vec![],
                init: Some(start),
            }],
        },
        span,
    );
    let cond = bin(BinaryOp::Lt, ident(iv), bound);
    let step_expr = if step == 1 {
        Expr::new(
            ExprKind::IncDec {
                target: Box::new(ident(iv)),
                delta: 1,
                prefix: false,
            },
            span,
        )
    } else {
        Expr::new(
            ExprKind::Assign {
                op: Some(BinaryOp::Add),
                target: Box::new(ident(iv)),
                value: Box::new(Expr::new(ExprKind::IntLit(step), span)),
            },
            span,
        )
    };
    let body = Stmt::new(StmtKind::Block(vec![body]), span);
    Stmt::new(
        StmtKind::For {
            init: Some(Box::new(init)),
            cond: Some(cond),
            step: Some(step_expr),
            body: Box::new(body),
            pragma: None,
        },
        span,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_frontend::{parse_translation_unit, print_translation_unit};

    fn run(src: &str, tile: i64, min_trip: i64) -> (String, usize) {
        let mut tu = parse_translation_unit(src).unwrap();
        let n = tile_in_unit(&mut tu, tile, min_trip);
        let out = print_translation_unit(&tu);
        // Whatever we emit must re-parse.
        parse_translation_unit(&out).expect("tiled output re-parses");
        (out, n)
    }

    #[test]
    fn restreamed_matrix_3d_is_tiled() {
        // B[k][j] ignores i: the whole matrix is re-streamed every i
        // iteration — the textbook tiling target.
        let src = "float A[256][256]; float B[256][256]; float C[256][256];
void f() { for (int i = 0; i < 256; i++) { for (int j = 0; j < 256; j++) { for (int k = 0; k < 256; k++) { C[i][j] += A[i][k] * B[k][j]; } } } }";
        let (out, n) = run(src, 32, 128);
        assert_eq!(n, 1);
        assert!(out.contains("i__t"));
        assert!(out.contains("j__t"));
        assert!(out.contains("k__t"));
        assert!(out.contains("i__t + 32"));
        // 6 loops now: three tile, three point.
        assert_eq!(out.matches("for (").count(), 6);
    }

    #[test]
    fn single_pass_nest_is_not_tiled() {
        // Every array is touched exactly once (subscripts use all IVs):
        // no reuse, so tiling would only add overhead.
        let src = "double a[512][512];
void f() { for (int i = 0; i < 512; i++) { for (int j = 0; j < 512; j++) { a[i][j] = 0.0; } } }";
        let (_, n) = run(src, 32, 128);
        assert_eq!(n, 0);
    }

    #[test]
    fn cache_resident_nest_is_not_tiled() {
        // 256 KB working set fits L2: tiling would only add overhead.
        let src = "float a[256][256];
void f() { for (int i = 0; i < 256; i++) { for (int j = 0; j < 256; j++) { a[i][j] = 0.0; } } }";
        let (_, n) = run(src, 32, 128);
        assert_eq!(n, 0);
    }

    #[test]
    fn gemm_3d_is_tiled() {
        let src = "float A[256][256]; float B[256][256]; float C[256][256];
void f() { for (int i = 0; i < 256; i++) { for (int j = 0; j < 256; j++) { for (int k = 0; k < 256; k++) { C[i][j] += A[i][k] * B[k][j]; } } } }";
        let (out, n) = run(src, 32, 128);
        assert_eq!(n, 1);
        assert_eq!(out.matches("for (").count(), 6);
    }

    #[test]
    fn small_nest_not_tiled() {
        let src = "float a[64][64];
void f() { for (int i = 0; i < 64; i++) { for (int j = 0; j < 64; j++) { a[i][j] = 0.0; } } }";
        let (_, n) = run(src, 32, 128);
        assert_eq!(n, 0);
    }

    #[test]
    fn indivisible_bounds_not_tiled() {
        let src = "float a[200][200];
void f() { for (int i = 0; i < 200; i++) { for (int j = 0; j < 200; j++) { a[i][j] = 0.0; } } }";
        let (_, n) = run(src, 32, 128);
        assert_eq!(n, 0);
    }

    #[test]
    fn single_loop_not_tiled() {
        let src = "float a[4096];\nvoid f() { for (int i = 0; i < 4096; i++) { a[i] = 0.0; } }";
        let (_, n) = run(src, 32, 128);
        assert_eq!(n, 0);
    }

    #[test]
    fn stencil_with_shifted_store_not_tiled() {
        let src = "float a[256][256];
void f() { for (int i = 1; i < 256; i++) { for (int j = 0; j < 256; j++) { a[i][j] = a[i-1][j]; } } }";
        let (_, n) = run(src, 32, 128);
        assert_eq!(n, 0);
    }

    #[test]
    fn tiled_loop_lowers_with_constant_inner_trips() {
        // End-to-end: the tiled source flows through the IR pipeline and
        // the point loops have compile-time trip 32.
        let src = "float A[256][256]; float B[256][256]; float C[256][256];
void f() { for (int i = 0; i < 256; i++) { for (int j = 0; j < 256; j++) { for (int k = 0; k < 256; k++) { C[i][j] += A[i][k] * B[k][j]; } } } }";
        let (out, n) = run(src, 32, 128);
        assert_eq!(n, 1);
        let tu = parse_translation_unit(&out).unwrap();
        let loops = nvc_ir::lower_innermost_loops(&tu, &out, &nvc_ir::ParamEnv::new()).unwrap();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].ir.trip.count(), 32);
        assert_eq!(loops[0].ir.outer.len(), 5);
        assert_eq!(loops[0].ir.total_iterations(), 256 * 256 * 256);
    }
}
