//! The fully-connected policy/value network.
//!
//! §4 of the paper: "We use a 64 × 64 fully connected neural network" with
//! discrete actions picking "two integer numbers that index into the arrays
//! of possible VFs and IFs". The network also carries a value head (PPO's
//! baseline) and, for the continuous variants of Figure 6, Gaussian heads
//! with a learned log standard deviation.

use serde::{Deserialize, Serialize};

use nvc_nn::{Graph, NodeId, ParamId, ParamStore, Tensor};

use crate::spaces::{ActionDims, ActionSpaceKind};

/// Architecture description for [`PolicyNet`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Observation width (the code-vector dimension).
    pub input_dim: usize,
    /// Hidden layer widths (the paper sweeps 64×64, 128×128, 256×256).
    pub hidden: Vec<usize>,
    /// Discrete action dimensions.
    pub dims: ActionDims,
    /// Action parameterization.
    pub kind: ActionSpaceKind,
}

/// Forward-pass outputs.
#[derive(Debug, Clone, Copy)]
pub struct PolicyOut {
    /// Discrete VF-head logits (`batch × n_vf`).
    pub logits_vf: Option<NodeId>,
    /// Discrete IF-head logits (`batch × n_if`).
    pub logits_if: Option<NodeId>,
    /// Continuous mean(s) (`batch × 1` or `batch × 2`).
    pub mu: Option<NodeId>,
    /// State-value estimates (`batch × 1`).
    pub value: NodeId,
}

/// The policy/value network. Parameters live in a shared
/// [`ParamStore`] so the embedding trains jointly.
#[derive(Debug, Clone)]
pub struct PolicyNet {
    cfg: PolicyConfig,
    layers: Vec<(ParamId, ParamId)>,
    head_vf: (ParamId, ParamId),
    head_if: Option<(ParamId, ParamId)>,
    value_head: (ParamId, ParamId),
    log_std: Option<ParamId>,
}

impl PolicyNet {
    /// Registers all network parameters in `store`.
    pub fn new(store: &mut ParamStore, cfg: &PolicyConfig) -> Self {
        let mut layers = Vec::new();
        let mut width = cfg.input_dim;
        for (i, &h) in cfg.hidden.iter().enumerate() {
            let w = store.param_xavier(format!("policy.l{i}.w"), width, h);
            let b = store.param(format!("policy.l{i}.b"), Tensor::zeros(1, h));
            layers.push((w, b));
            width = h;
        }
        let (head_vf, head_if, log_std) = match cfg.kind {
            ActionSpaceKind::Discrete => {
                let wv = store.param_xavier("policy.vf.w", width, cfg.dims.n_vf);
                let bv = store.param("policy.vf.b", Tensor::zeros(1, cfg.dims.n_vf));
                let wi = store.param_xavier("policy.if.w", width, cfg.dims.n_if);
                let bi = store.param("policy.if.b", Tensor::zeros(1, cfg.dims.n_if));
                ((wv, bv), Some((wi, bi)), None)
            }
            ActionSpaceKind::Continuous1D => {
                let w = store.param_xavier("policy.mu.w", width, 1);
                // Start exploration at the center of the flat index range
                // with a std wide enough to reach both ends.
                let center = cfg.dims.total() as f32 / 2.0;
                let b = store.param("policy.mu.b", Tensor::from_vec(1, 1, vec![center]));
                let ls = store.param(
                    "policy.log_std",
                    Tensor::from_vec(1, 1, vec![(cfg.dims.total() as f32 / 4.0).ln()]),
                );
                ((w, b), None, Some(ls))
            }
            ActionSpaceKind::Continuous2D => {
                let w = store.param_xavier("policy.mu.w", width, 2);
                let b = store.param(
                    "policy.mu.b",
                    Tensor::from_vec(
                        1,
                        2,
                        vec![cfg.dims.n_vf as f32 / 2.0, cfg.dims.n_if as f32 / 2.0],
                    ),
                );
                let ls = store.param(
                    "policy.log_std",
                    Tensor::from_vec(
                        1,
                        2,
                        vec![
                            (cfg.dims.n_vf as f32 / 3.0).ln(),
                            (cfg.dims.n_if as f32 / 3.0).ln(),
                        ],
                    ),
                );
                ((w, b), None, Some(ls))
            }
        };
        let wv = store.param_xavier("policy.value.w", width, 1);
        let bv = store.param("policy.value.b", Tensor::zeros(1, 1));
        PolicyNet {
            cfg: cfg.clone(),
            layers,
            head_vf,
            head_if,
            value_head: (wv, bv),
            log_std,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &PolicyConfig {
        &self.cfg
    }

    /// The learned log-std handle for continuous spaces.
    pub fn log_std(&self) -> Option<ParamId> {
        self.log_std
    }

    /// Runs the network on a `batch × input_dim` observation node.
    ///
    /// Every affine stage is the fused [`Graph::linear`] op — one tape
    /// node and one output allocation per layer instead of the
    /// matmul + broadcast pair, with bitwise-identical results.
    pub fn forward(&self, g: &mut Graph<'_>, obs: NodeId) -> PolicyOut {
        let mut h = obs;
        for (w, b) in &self.layers {
            let (wn, bn) = (g.param(*w), g.param(*b));
            let lin = g.linear(h, wn, bn);
            h = g.tanh(lin);
        }
        let (vw, vb) = self.value_head;
        let (vwn, vbn) = (g.param(vw), g.param(vb));
        let value = g.linear(h, vwn, vbn);

        match self.cfg.kind {
            ActionSpaceKind::Discrete => {
                let (w, b) = self.head_vf;
                let (wn, bn) = (g.param(w), g.param(b));
                let lv = g.linear(h, wn, bn);
                let (w2, b2) = self.head_if.expect("discrete policy has an IF head");
                let (wn2, bn2) = (g.param(w2), g.param(b2));
                let li = g.linear(h, wn2, bn2);
                PolicyOut {
                    logits_vf: Some(lv),
                    logits_if: Some(li),
                    mu: None,
                    value,
                }
            }
            ActionSpaceKind::Continuous1D | ActionSpaceKind::Continuous2D => {
                let (w, b) = self.head_vf;
                let (wn, bn) = (g.param(w), g.param(b));
                let mu = g.linear(h, wn, bn);
                PolicyOut {
                    logits_vf: None,
                    logits_if: None,
                    mu: Some(mu),
                    value,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kind: ActionSpaceKind) -> PolicyConfig {
        PolicyConfig {
            input_dim: 8,
            hidden: vec![16, 16],
            dims: ActionDims { n_vf: 7, n_if: 5 },
            kind,
        }
    }

    #[test]
    fn discrete_forward_shapes() {
        let mut store = ParamStore::new(1);
        let net = PolicyNet::new(&mut store, &cfg(ActionSpaceKind::Discrete));
        let mut g = Graph::new(&store);
        let obs = g.input(Tensor::zeros(3, 8));
        let out = net.forward(&mut g, obs);
        assert_eq!(g.value(out.logits_vf.unwrap()).shape(), (3, 7));
        assert_eq!(g.value(out.logits_if.unwrap()).shape(), (3, 5));
        assert_eq!(g.value(out.value).shape(), (3, 1));
        assert!(out.mu.is_none());
    }

    #[test]
    fn continuous_forward_shapes() {
        for (kind, w) in [
            (ActionSpaceKind::Continuous1D, 1),
            (ActionSpaceKind::Continuous2D, 2),
        ] {
            let mut store = ParamStore::new(1);
            let net = PolicyNet::new(&mut store, &cfg(kind));
            let mut g = Graph::new(&store);
            let obs = g.input(Tensor::zeros(4, 8));
            let out = net.forward(&mut g, obs);
            assert_eq!(g.value(out.mu.unwrap()).shape(), (4, w));
            assert!(net.log_std().is_some());
        }
    }

    #[test]
    fn continuous_mu_initialized_at_range_center() {
        let mut store = ParamStore::new(1);
        let net = PolicyNet::new(&mut store, &cfg(ActionSpaceKind::Continuous1D));
        let mut g = Graph::new(&store);
        let obs = g.input(Tensor::zeros(1, 8));
        let out = net.forward(&mut g, obs);
        // Zero observation → bias only → center of the 35-wide range.
        let mu = g.value(out.mu.unwrap()).data()[0];
        assert!((mu - 17.5).abs() < 3.0, "mu init off-center: {mu}");
    }

    #[test]
    fn deeper_architectures_register_more_params() {
        let mut s1 = ParamStore::new(1);
        let mut c = cfg(ActionSpaceKind::Discrete);
        PolicyNet::new(&mut s1, &c);
        let small = s1.num_scalars();
        let mut s2 = ParamStore::new(1);
        c.hidden = vec![64, 64];
        PolicyNet::new(&mut s2, &c);
        assert!(s2.num_scalars() > small);
    }
}
