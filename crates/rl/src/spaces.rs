//! Action-space parameterizations (Figure 6 of the paper).

use serde::{Deserialize, Serialize};

/// Sizes of the two discrete action dimensions: indices into the arrays of
/// possible VFs and IFs (§3.3 eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionDims {
    /// Number of VF choices (7 for `MAX_VF = 64`).
    pub n_vf: usize,
    /// Number of IF choices (5 for `MAX_IF = 16`).
    pub n_if: usize,
}

impl ActionDims {
    /// Total `(VF, IF)` combinations.
    pub fn total(&self) -> usize {
        self.n_vf * self.n_if
    }

    /// Flattens a pair of indices.
    pub fn flatten(&self, a: (usize, usize)) -> usize {
        a.0 * self.n_if + a.1
    }

    /// Unflattens an index produced by [`ActionDims::flatten`].
    pub fn unflatten(&self, idx: usize) -> (usize, usize) {
        (idx / self.n_if, idx % self.n_if)
    }

    /// Clamps-and-rounds one continuous coordinate onto the flat index
    /// space (the paper's continuous-1D decoding: "the numbers … are
    /// rounded to the closest integers").
    pub fn decode_1d(&self, x: f32) -> (usize, usize) {
        let idx = x.round().clamp(0.0, (self.total() - 1) as f32) as usize;
        self.unflatten(idx)
    }

    /// Clamps-and-rounds two continuous coordinates onto the index pair.
    pub fn decode_2d(&self, x: f32, y: f32) -> (usize, usize) {
        let v = x.round().clamp(0.0, (self.n_vf - 1) as f32) as usize;
        let i = y.round().clamp(0.0, (self.n_if - 1) as f32) as usize;
        (v, i)
    }
}

/// The three action-space definitions compared in §4 / Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionSpaceKind {
    /// Two categorical heads picking indices into the VF and IF arrays.
    /// "The results show that the discrete action space performs the
    /// best."
    Discrete,
    /// One Gaussian output encoding both factors jointly.
    Continuous1D,
    /// Two Gaussian outputs, one per factor.
    Continuous2D,
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIMS: ActionDims = ActionDims { n_vf: 7, n_if: 5 };

    #[test]
    fn paper_action_space_has_35_combinations() {
        assert_eq!(DIMS.total(), 35);
    }

    #[test]
    fn flatten_roundtrip() {
        for v in 0..7 {
            for i in 0..5 {
                assert_eq!(DIMS.unflatten(DIMS.flatten((v, i))), (v, i));
            }
        }
    }

    #[test]
    fn decode_1d_clamps_and_rounds() {
        assert_eq!(DIMS.decode_1d(-3.0), (0, 0));
        assert_eq!(DIMS.decode_1d(0.4), (0, 0));
        assert_eq!(DIMS.decode_1d(7.6), (1, 3));
        assert_eq!(DIMS.decode_1d(34.2), (6, 4));
        assert_eq!(DIMS.decode_1d(99.0), (6, 4));
    }

    #[test]
    fn decode_2d_clamps_each_axis() {
        assert_eq!(DIMS.decode_2d(-1.0, 2.2), (0, 2));
        assert_eq!(DIMS.decode_2d(6.7, 9.0), (6, 4));
        assert_eq!(DIMS.decode_2d(3.4, 0.5), (3, 1));
    }
}
