//! Replay environment over journaled serve traffic.
//!
//! The online-learning loop (hub `report` verb → learning journal) yields
//! `(sample, action, measured_reward)` triples instead of a live reward
//! oracle. [`ReplayEnv`] turns that corpus into a [`BanditEnv`] the
//! existing [`PpoTrainer`](crate::PpoTrainer) can fine-tune on: contexts
//! are the deduplicated samples, and the reward of `(context, action)` is
//! the *mean* of the observed rewards for that pair. Actions never seen in
//! the corpus return a configurable default (0.0 — reward-neutral, i.e.
//! "no better or worse than baseline" under the paper's §3.3 reward) so
//! the policy is pulled toward observed winners without fabricating
//! gradients for unobserved arms.

use std::collections::HashMap;

use nvc_embed::PathSample;

use crate::ppo::BanditEnv;
use crate::spaces::ActionDims;

/// Accumulated reward statistics for one `(context, action)` cell.
#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    n: u64,
    sum: f64,
}

/// A [`BanditEnv`] backed by journaled `(sample, action, reward)`
/// observations.
#[derive(Debug)]
pub struct ReplayEnv {
    dims: ActionDims,
    default_reward: f64,
    contexts: Vec<PathSample>,
    index: HashMap<PathSample, usize>,
    rewards: HashMap<(usize, usize, usize), Cell>,
    observations: u64,
}

impl ReplayEnv {
    /// An empty corpus over `dims`-shaped actions. Unobserved actions
    /// reward `default_reward` (0.0 = baseline parity is the sensible
    /// choice for the paper's normalized-improvement reward).
    pub fn new(dims: ActionDims, default_reward: f64) -> ReplayEnv {
        ReplayEnv {
            dims,
            default_reward,
            contexts: Vec::new(),
            index: HashMap::new(),
            rewards: HashMap::new(),
            observations: 0,
        }
    }

    /// Records one observation. Samples are deduplicated: repeated
    /// observations of the same loop accumulate into the same context, and
    /// repeated `(context, action)` pairs average their rewards.
    /// Out-of-range actions and non-finite rewards are ignored (the
    /// journal may span older action-table generations).
    pub fn record(&mut self, sample: &PathSample, action: (usize, usize), reward: f64) {
        if action.0 >= self.dims.n_vf || action.1 >= self.dims.n_if || !reward.is_finite() {
            return;
        }
        let idx = match self.index.get(sample) {
            Some(&i) => i,
            None => {
                let i = self.contexts.len();
                self.contexts.push(sample.clone());
                self.index.insert(sample.clone(), i);
                i
            }
        };
        let cell = self.rewards.entry((idx, action.0, action.1)).or_default();
        cell.n += 1;
        cell.sum += reward;
        self.observations += 1;
    }

    /// Number of distinct contexts (deduplicated samples).
    pub fn is_empty(&self) -> bool {
        self.contexts.is_empty()
    }

    /// Total observations recorded (before dedup).
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

impl BanditEnv for ReplayEnv {
    fn num_contexts(&self) -> usize {
        self.contexts.len()
    }

    fn context(&self, idx: usize) -> &PathSample {
        &self.contexts[idx]
    }

    fn action_dims(&self) -> ActionDims {
        self.dims
    }

    fn reward(&mut self, idx: usize, action: (usize, usize)) -> f64 {
        match self.rewards.get(&(idx, action.0, action.1)) {
            Some(cell) if cell.n > 0 => cell.sum / cell.n as f64,
            _ => self.default_reward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(base: usize) -> PathSample {
        PathSample {
            starts: vec![base, base + 1],
            paths: vec![base * 2, base * 2 + 1],
            ends: vec![base + 3, base + 4],
        }
    }

    fn dims() -> ActionDims {
        ActionDims { n_vf: 7, n_if: 5 }
    }

    #[test]
    fn records_dedup_and_average() {
        let mut env = ReplayEnv::new(dims(), 0.0);
        assert!(env.is_empty());
        let s = sample(0);
        env.record(&s, (2, 1), 0.4);
        env.record(&s, (2, 1), 0.8);
        env.record(&sample(10), (0, 0), -0.5);
        assert_eq!(env.num_contexts(), 2);
        assert_eq!(env.observations(), 3);
        let mean = env.reward(0, (2, 1)); // mean of 0.4, 0.8
        assert!((mean - 0.6).abs() < 1e-12, "mean={mean}");
        assert_eq!(env.reward(1, (0, 0)), -0.5);
        // Unobserved action falls back to the default.
        assert_eq!(env.reward(0, (3, 3)), 0.0);
    }

    #[test]
    fn rejects_out_of_range_and_non_finite() {
        let mut env = ReplayEnv::new(dims(), 0.0);
        env.record(&sample(0), (7, 0), 1.0); // vf out of range
        env.record(&sample(0), (0, 5), 1.0); // if out of range
        env.record(&sample(0), (0, 0), f64::NAN);
        assert!(env.is_empty());
        assert_eq!(env.observations(), 0);
    }

    #[test]
    fn ppo_fine_tunes_on_a_replay_corpus() {
        use crate::{PpoConfig, PpoTrainer};
        use nvc_embed::EmbedConfig;
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;

        // Corpus: two loops, each with one clearly best observed action.
        let mut env = ReplayEnv::new(ActionDims { n_vf: 4, n_if: 4 }, 0.0);
        let (a, b) = (sample(0), sample(12));
        for _ in 0..3 {
            env.record(&a, (1, 2), 1.0);
            env.record(&a, (0, 0), -0.6);
            env.record(&b, (3, 0), 1.0);
            env.record(&b, (2, 2), -0.6);
        }
        let cfg = PpoConfig {
            lr: 5e-3,
            train_batch: 64,
            minibatch: 32,
            epochs: 4,
            hidden: vec![32, 32],
            action_dims: ActionDims { n_vf: 4, n_if: 4 },
            ..PpoConfig::default()
        };
        let mut trainer = PpoTrainer::new(&cfg, &EmbedConfig::fast(), 7);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let stats = trainer.train(&mut env, 60, &mut rng);
        let last = stats.last().unwrap().reward_mean;
        assert!(last > 0.5, "replay fine-tune did not converge: {last}");
        assert_eq!(trainer.predict(&a), (1, 2));
        assert_eq!(trainer.predict(&b), (3, 0));
    }
}
