//! PPO training loop for the contextual bandit.
//!
//! One training *iteration* collects `train_batch` single-step episodes
//! (the paper's batch-size axis in Figure 5 sweeps 500/1000/4000), computes
//! advantages against the value baseline, and runs several epochs of
//! clipped-surrogate minibatch updates. Gradients flow through the policy
//! *and* the code2vec encoder — the end-to-end property the paper
//! emphasizes.

use std::collections::HashMap;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use nvc_embed::{CodeEmbedder, EmbedConfig, PathSample};
use nvc_nn::{Adam, Graph, NodeId, ParamStore, Tensor, TensorArena};

use crate::policy::{PolicyConfig, PolicyNet};
use crate::spaces::{ActionDims, ActionSpaceKind};

/// The environment interface: a pool of loop contexts and a reward oracle.
///
/// Rewards follow §3.3: `(t_baseline − t_agent) / t_baseline`, with −9 for
/// compile timeouts — but the trainer is agnostic to the exact definition.
pub trait BanditEnv {
    /// Number of available contexts (loops).
    fn num_contexts(&self) -> usize;

    /// The path-context sample of loop `idx`.
    fn context(&self, idx: usize) -> &PathSample;

    /// The discrete action dimensions.
    fn action_dims(&self) -> ActionDims;

    /// Executes action `(vf_idx, if_idx)` on loop `idx` and returns the
    /// reward.
    fn reward(&mut self, idx: usize, action: (usize, usize)) -> f64;
}

/// PPO hyperparameters (defaults follow §4 of the paper and RLlib's PPO).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Adam learning rate (paper default 5e-5; swept in Figure 5).
    pub lr: f32,
    /// Episodes collected per iteration (paper default 4000).
    pub train_batch: usize,
    /// SGD minibatch size.
    pub minibatch: usize,
    /// SGD epochs per iteration.
    pub epochs: usize,
    /// PPO clip parameter.
    pub clip: f32,
    /// Value-loss coefficient.
    pub vf_coef: f32,
    /// Entropy-bonus coefficient.
    pub ent_coef: f32,
    /// Hidden widths of the FCNN (paper default 64×64).
    pub hidden: Vec<usize>,
    /// Action parameterization (Figure 6).
    pub action_space: ActionSpaceKind,
    /// Discrete action dimensions.
    pub action_dims: ActionDims,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
    /// Worker threads for the stacked rollout forward in
    /// [`PpoTrainer::collect`] (`0` or `1` = single-threaded, the
    /// default). Sharding splits the batch into contiguous chunks, one
    /// segmented encoder + policy forward per chunk, all drawing from the
    /// shared [`TensorArena`]; every output row is a function of its own
    /// input row only, so transitions stay bitwise-identical to the
    /// single-threaded (and per-sample) paths at any thread count.
    ///
    /// Composes with the kernel-level `NvConfig::matmul_threads` knob one
    /// layer down (`nvc_nn::kernels`): each collect shard's stacked
    /// projection and policy matmuls may further row-shard inside the
    /// kernel, and both layers preserve bitwise parity independently, so
    /// any `{collect_threads, matmul_threads}` combination produces the
    /// same transitions.
    pub collect_threads: usize,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            lr: 5e-5,
            train_batch: 4000,
            minibatch: 128,
            epochs: 8,
            clip: 0.2,
            vf_coef: 0.5,
            ent_coef: 0.01,
            hidden: vec![64, 64],
            action_space: ActionSpaceKind::Discrete,
            action_dims: ActionDims { n_vf: 7, n_if: 5 },
            max_grad_norm: 0.5,
            collect_threads: 0,
        }
    }
}

/// Statistics of one training iteration (the curves plotted in Figures
/// 5–6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterStats {
    /// Environment steps taken so far (cumulative).
    pub steps: u64,
    /// Mean reward of the iteration's batch.
    pub reward_mean: f64,
    /// Total PPO loss (last epoch average).
    pub loss: f64,
    /// Policy (surrogate) component.
    pub policy_loss: f64,
    /// Value component.
    pub value_loss: f64,
    /// Entropy of the policy.
    pub entropy: f64,
    /// Wall-clock of the rollout-collection phase, microseconds.
    pub collect_us: u64,
    /// Wall-clock of the advantage + epoch-update phase, microseconds.
    pub update_us: u64,
}

/// One collected single-step episode (public so benches and parity tests
/// can compare the batched and per-sample collection paths field by
/// field).
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Environment context index the episode observed.
    pub ctx: usize,
    /// The `(vf_idx, if_idx)` action taken.
    pub action: (usize, usize),
    /// Raw continuous sample (unused for discrete).
    pub raw: [f32; 2],
    /// Log-probability of the action under the behavior policy.
    pub logp_old: f32,
    /// Environment reward.
    pub reward: f64,
    /// Value-baseline estimate at collection time.
    pub value: f32,
    /// Normalized advantage (filled in by the update, 0 after collect).
    pub advantage: f32,
}

/// The PPO trainer: embedder + policy sharing one parameter store.
#[derive(Debug)]
pub struct PpoTrainer {
    cfg: PpoConfig,
    store: ParamStore,
    embedder: CodeEmbedder,
    policy: PolicyNet,
    adam: Adam,
    /// Recycled tensor buffers shared by every graph the trainer builds
    /// (collection, minibatch updates, and concurrent inference all draw
    /// from the same pool).
    arena: TensorArena,
    steps: u64,
    /// Iterations completed (the journal's `iter` field).
    iters: u64,
    /// Optional training-telemetry sink: one JSON line per iteration
    /// (reward, losses, entropy, per-phase wall-clock). `None` (the
    /// default) writes nothing and costs nothing.
    journal: Option<nvc_obs::Journal>,
}

impl PpoTrainer {
    /// Builds a trainer with a fresh embedder and policy.
    pub fn new(cfg: &PpoConfig, embed_cfg: &EmbedConfig, seed: u64) -> Self {
        let mut store = ParamStore::new(seed);
        let embedder = CodeEmbedder::new(&mut store, embed_cfg);
        let policy = PolicyNet::new(
            &mut store,
            &PolicyConfig {
                input_dim: embed_cfg.code_dim,
                hidden: cfg.hidden.clone(),
                dims: cfg.action_dims,
                kind: cfg.action_space,
            },
        );
        PpoTrainer {
            cfg: cfg.clone(),
            adam: Adam::new(cfg.lr),
            store,
            embedder,
            policy,
            arena: TensorArena::new(),
            steps: 0,
            iters: 0,
            journal: None,
        }
    }

    /// Attaches a training-telemetry journal: every subsequent
    /// [`PpoTrainer::train_iteration`] appends one JSON line with the
    /// iteration's [`IterStats`] (including per-phase timings). Pass the
    /// result of [`nvc_obs::Journal::create`] to journal to a file.
    pub fn set_journal(&mut self, journal: Option<nvc_obs::Journal>) {
        self.journal = journal;
    }

    /// The shared parameter store (for checkpointing).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable store access (for checkpoint loading).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// The trained encoder (NNS and decision trees reuse it, §3.5).
    pub fn embedder(&self) -> &CodeEmbedder {
        &self.embedder
    }

    /// Cumulative environment steps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs `iterations` training iterations, returning per-iteration
    /// statistics.
    pub fn train(
        &mut self,
        env: &mut impl BanditEnv,
        iterations: usize,
        rng: &mut impl Rng,
    ) -> Vec<IterStats> {
        (0..iterations)
            .map(|_| self.train_iteration(env, rng))
            .collect()
    }

    /// One collect + update cycle.
    pub fn train_iteration(&mut self, env: &mut impl BanditEnv, rng: &mut impl Rng) -> IterStats {
        let t_collect = std::time::Instant::now();
        let mut batch = self.collect(env, rng);
        let collect_us = t_collect.elapsed().as_micros() as u64;
        let t_update = std::time::Instant::now();
        self.steps += batch.len() as u64;
        // An empty batch (train_batch 0, or a replay corpus drained
        // between cycles) must skip the update with defined stats, not
        // divide by zero into NaN rewards and a poisoned policy.
        if batch.is_empty() {
            self.iters += 1;
            let stats = IterStats {
                steps: self.steps,
                reward_mean: 0.0,
                loss: 0.0,
                policy_loss: 0.0,
                value_loss: 0.0,
                entropy: 0.0,
                collect_us,
                update_us: t_update.elapsed().as_micros() as u64,
            };
            self.journal_iter(&stats);
            return stats;
        }
        let reward_mean = batch.iter().map(|t| t.reward).sum::<f64>() / batch.len() as f64;

        // Advantages: single-step episodes, so A = r − V(s), normalized.
        let mean_adv =
            batch.iter().map(|t| t.reward as f32 - t.value).sum::<f32>() / batch.len() as f32;
        let var = batch
            .iter()
            .map(|t| {
                let a = t.reward as f32 - t.value - mean_adv;
                a * a
            })
            .sum::<f32>()
            / batch.len() as f32;
        // Epsilon guard: a constant-reward batch (exactly what early
        // online fine-tuning over a small replay corpus produces) has
        // zero advantage variance; dividing by a raw 0 std would turn
        // every advantage into NaN. Any real std is far above the clamp,
        // so non-degenerate batches are bitwise-unchanged.
        let std = var.sqrt().max(1e-8);
        for t in &mut batch {
            t.advantage = (t.reward as f32 - t.value - mean_adv) / std;
        }

        let mut last = (0.0, 0.0, 0.0, 0.0);
        let mut order: Vec<usize> = (0..batch.len()).collect();
        for _ in 0..self.cfg.epochs {
            order.shuffle(rng);
            let mut sums = (0.0, 0.0, 0.0, 0.0);
            let mut count = 0;
            for chunk in order.chunks(self.cfg.minibatch) {
                let (pl, vl, ent, total) = self.update_minibatch(env, &batch, chunk);
                sums.0 += pl;
                sums.1 += vl;
                sums.2 += ent;
                sums.3 += total;
                count += 1;
            }
            let c = count as f64;
            last = (sums.0 / c, sums.1 / c, sums.2 / c, sums.3 / c);
        }

        self.iters += 1;
        let stats = IterStats {
            steps: self.steps,
            reward_mean,
            loss: last.3,
            policy_loss: last.0,
            value_loss: last.1,
            entropy: last.2,
            collect_us,
            update_us: t_update.elapsed().as_micros() as u64,
        };
        self.journal_iter(&stats);
        stats
    }

    /// Appends one telemetry line for a finished iteration, if a journal
    /// is attached.
    fn journal_iter(&self, stats: &IterStats) {
        if let Some(journal) = &self.journal {
            journal.write_line(&format!(
                concat!(
                    "{{\"iter\":{},\"steps\":{},\"reward_mean\":{},\"loss\":{},",
                    "\"policy_loss\":{},\"value_loss\":{},\"entropy\":{},",
                    "\"collect_us\":{},\"update_us\":{}}}"
                ),
                self.iters,
                stats.steps,
                stats.reward_mean,
                stats.loss,
                stats.policy_loss,
                stats.value_loss,
                stats.entropy,
                stats.collect_us,
                stats.update_us,
            ));
        }
    }

    /// Greedy (deterministic) action for a loop sample.
    pub fn predict(&self, sample: &PathSample) -> (usize, usize) {
        let mut g = Graph::with_arena(&self.store, &self.arena);
        let obs = self.embedder.forward(&mut g, sample);
        let out = self.policy.forward(&mut g, obs);
        match self.cfg.action_space {
            ActionSpaceKind::Discrete => {
                let lv = g.value(out.logits_vf.expect("discrete"));
                let li = g.value(out.logits_if.expect("discrete"));
                (argmax(lv.row(0)), argmax(li.row(0)))
            }
            ActionSpaceKind::Continuous1D => {
                let mu = g.value(out.mu.expect("continuous")).data()[0];
                self.cfg.action_dims.decode_1d(mu)
            }
            ActionSpaceKind::Continuous2D => {
                let m = g.value(out.mu.expect("continuous"));
                self.cfg.action_dims.decode_2d(m.data()[0], m.data()[1])
            }
        }
    }

    /// Greedy actions for a whole batch of samples in **one** graph:
    /// every embedding is stacked into a single `n × code_dim`
    /// observation and the policy runs one forward pass over it.
    ///
    /// Row-major matmul and the row-wise activations compute each output
    /// row from its input row alone, so the result is bitwise-identical
    /// to calling [`PpoTrainer::predict`] per sample — the batched path
    /// is a pure throughput optimization (this is what `nvc-serve`'s
    /// batching layer calls).
    pub fn predict_batch(&self, samples: &[&PathSample]) -> Vec<(usize, usize)> {
        if samples.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::with_arena(&self.store, &self.arena);
        let obs = {
            let _embed = nvc_obs::span("embed");
            match self.embedder.forward_rows(&mut g, samples) {
                Ok(node) => node,
                // Defensive twin of the early return above: an empty flush
                // must never take down a serve worker.
                Err(nvc_embed::EmbedError::EmptyBatch) => return Vec::new(),
            }
        };
        let out = {
            let _forward = nvc_obs::span("policy_forward");
            self.policy.forward(&mut g, obs)
        };
        match self.cfg.action_space {
            ActionSpaceKind::Discrete => {
                let lv = g.value(out.logits_vf.expect("discrete"));
                let li = g.value(out.logits_if.expect("discrete"));
                (0..samples.len())
                    .map(|r| (argmax(lv.row(r)), argmax(li.row(r))))
                    .collect()
            }
            ActionSpaceKind::Continuous1D => {
                let mu = g.value(out.mu.expect("continuous"));
                (0..samples.len())
                    .map(|r| self.cfg.action_dims.decode_1d(mu.row(r)[0]))
                    .collect()
            }
            ActionSpaceKind::Continuous2D => {
                let mu = g.value(out.mu.expect("continuous"));
                (0..samples.len())
                    .map(|r| self.cfg.action_dims.decode_2d(mu.row(r)[0], mu.row(r)[1]))
                    .collect()
            }
        }
    }

    /// The value estimate for a sample (used by analysis tooling).
    pub fn value_of(&self, sample: &PathSample) -> f32 {
        let mut g = Graph::with_arena(&self.store, &self.arena);
        let obs = self.embedder.forward(&mut g, sample);
        let out = self.policy.forward(&mut g, obs);
        g.value(out.value).data()[0]
    }

    // ------------------------------------------------------------------

    /// Rollout collection for one iteration — the batched hot path.
    ///
    /// The whole `train_batch` runs as **one** graph (or one per shard
    /// with `collect_threads`): every distinct context is embedded once
    /// through the segmented encoder ([`CodeEmbedder::forward_rows`] —
    /// one ragged attention forward over all unique contexts, then a row
    /// gather fans them back out to the batch), and the policy runs a
    /// single stacked forward over all rows. Actions are then sampled
    /// row by row.
    ///
    /// Transitions are bitwise-identical to
    /// [`PpoTrainer::collect_reference`] under the same RNG state: the
    /// context draws and action-sampling uniforms are pre-drawn in
    /// exactly the per-sample interleaving (context `i`, then sample
    /// `i`'s uniforms — the draw count per sample is fixed by the action
    /// space, never by the logits), the batched forward computes each
    /// output row from its own input row alone, and rewards are queried
    /// in the same ascending order.
    pub fn collect(&mut self, env: &mut impl BanditEnv, rng: &mut impl Rng) -> Vec<Transition> {
        let dims = env.action_dims();
        assert_eq!(
            dims, self.cfg.action_dims,
            "environment action dims must match the trainer configuration"
        );
        let n = self.cfg.train_batch;
        if n == 0 {
            return Vec::new();
        }

        // Phase 1: consume the RNG in the per-sample order.
        let space = self.cfg.action_space;
        let mut ctxs = Vec::with_capacity(n);
        let mut uniforms: Vec<f32> = Vec::with_capacity(n * 4);
        for _ in 0..n {
            ctxs.push(rng.gen_range(0..env.num_contexts()));
            match space {
                ActionSpaceKind::Discrete => {
                    uniforms.push(rng.gen_range(0.0..1.0));
                    uniforms.push(rng.gen_range(0.0..1.0));
                }
                ActionSpaceKind::Continuous1D => {
                    uniforms.push(rng.gen_range(1e-7..1.0));
                    uniforms.push(rng.gen_range(0.0..1.0));
                }
                ActionSpaceKind::Continuous2D => {
                    uniforms.push(rng.gen_range(1e-7..1.0));
                    uniforms.push(rng.gen_range(0.0..1.0));
                    uniforms.push(rng.gen_range(1e-7..1.0));
                    uniforms.push(rng.gen_range(0.0..1.0));
                }
            }
        }
        let draws_per = uniforms.len() / n;

        // Phase 2: the stacked forward. Contexts repeat (draws are with
        // replacement from a fixed pool), so each shard embeds its
        // distinct contexts once through the segmented encoder and
        // gathers rows back out per sample. With `collect_threads > 1`
        // the batch is split into contiguous chunks forwarded in
        // parallel (`std::thread::scope` workers over the shared arena);
        // every output row depends only on its own input row, so the
        // stitched result is bitwise-identical to the one-graph path.
        let threads = self.cfg.collect_threads.max(1).min(n);
        let samples_of: Vec<&PathSample> = ctxs.iter().map(|&c| env.context(c)).collect();
        let rows = if threads <= 1 {
            self.stacked_policy_rows(&samples_of)
        } else {
            let chunk_len = (n + threads - 1) / threads;
            let shards: Vec<PolicyRows> = std::thread::scope(|scope| {
                let this = &*self;
                let handles: Vec<_> = samples_of
                    .chunks(chunk_len)
                    .map(|chunk| scope.spawn(move || this.stacked_policy_rows(chunk)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("collect shard"))
                    .collect()
            });
            PolicyRows::stitch(shards)
        };
        let (values, logits_vf, logits_if, mus) =
            (rows.values, rows.logits_vf, rows.logits_if, rows.mus);
        let stds = self.log_std_values();

        // Phase 3: per-row sampling and rewards, in collection order.
        let mut out = Vec::with_capacity(n);
        for (i, &ctx) in ctxs.iter().enumerate() {
            let u = &uniforms[i * draws_per..(i + 1) * draws_per];
            let (action, raw, logp_old) = match space {
                ActionSpaceKind::Discrete => {
                    let lv = logits_vf.as_ref().expect("discrete").row(i);
                    let li = logits_if.as_ref().expect("discrete").row(i);
                    let (av, lpv) = sample_categorical_with(lv, u[0]);
                    let (ai, lpi) = sample_categorical_with(li, u[1]);
                    ((av, ai), [0.0, 0.0], lpv + lpi)
                }
                ActionSpaceKind::Continuous1D => {
                    let mu = mus.as_ref().expect("continuous").row(i)[0];
                    let std = stds[0].exp();
                    let x = mu + std * gaussian_from(u[0], u[1]);
                    let lp = gaussian_logp(x, mu, std);
                    (dims.decode_1d(x), [x, 0.0], lp)
                }
                ActionSpaceKind::Continuous2D => {
                    let m = mus.as_ref().expect("continuous").row(i);
                    let x0 = m[0] + stds[0].exp() * gaussian_from(u[0], u[1]);
                    let x1 = m[1] + stds[1].exp() * gaussian_from(u[2], u[3]);
                    let lp = gaussian_logp(x0, m[0], stds[0].exp())
                        + gaussian_logp(x1, m[1], stds[1].exp());
                    (dims.decode_2d(x0, x1), [x0, x1], lp)
                }
            };
            let reward = env.reward(ctx, action);
            out.push(Transition {
                ctx,
                action,
                raw,
                logp_old,
                reward,
                value: values[i],
                advantage: 0.0,
            });
        }
        out
    }

    /// The seed per-sample collection path: a fresh graph and a
    /// single-row forward per rollout sample, no arena, no batching.
    ///
    /// Kept as the baseline the `ext_train_throughput` bench measures
    /// [`PpoTrainer::collect`] against, and as the reference the parity
    /// tests compare transitions with.
    pub fn collect_reference(
        &mut self,
        env: &mut impl BanditEnv,
        rng: &mut impl Rng,
    ) -> Vec<Transition> {
        let dims = env.action_dims();
        assert_eq!(
            dims, self.cfg.action_dims,
            "environment action dims must match the trainer configuration"
        );
        let mut out = Vec::with_capacity(self.cfg.train_batch);
        for _ in 0..self.cfg.train_batch {
            let ctx = rng.gen_range(0..env.num_contexts());
            let sample = env.context(ctx).clone();
            let mut g = Graph::new(&self.store);
            let obs = self.embedder.forward(&mut g, &sample);
            let pol = self.policy.forward(&mut g, obs);
            let value = g.value(pol.value).data()[0];

            let (action, raw, logp_old) = match self.cfg.action_space {
                ActionSpaceKind::Discrete => {
                    let lv = g.value(pol.logits_vf.expect("discrete")).row(0).to_vec();
                    let li = g.value(pol.logits_if.expect("discrete")).row(0).to_vec();
                    let (av, lpv) = sample_categorical(&lv, rng);
                    let (ai, lpi) = sample_categorical(&li, rng);
                    ((av, ai), [0.0, 0.0], lpv + lpi)
                }
                ActionSpaceKind::Continuous1D => {
                    let mu = g.value(pol.mu.expect("continuous")).data()[0];
                    let std = self.log_std_values()[0].exp();
                    let x = mu + std * gaussian(rng);
                    let lp = gaussian_logp(x, mu, std);
                    (dims.decode_1d(x), [x, 0.0], lp)
                }
                ActionSpaceKind::Continuous2D => {
                    let m = g.value(pol.mu.expect("continuous")).data().to_vec();
                    let stds = self.log_std_values();
                    let x0 = m[0] + stds[0].exp() * gaussian(rng);
                    let x1 = m[1] + stds[1].exp() * gaussian(rng);
                    let lp = gaussian_logp(x0, m[0], stds[0].exp())
                        + gaussian_logp(x1, m[1], stds[1].exp());
                    (dims.decode_2d(x0, x1), [x0, x1], lp)
                }
            };
            drop(g);
            let reward = env.reward(ctx, action);
            out.push(Transition {
                ctx,
                action,
                raw,
                logp_old,
                reward,
                value,
                advantage: 0.0,
            });
        }
        out
    }

    /// One segmented encoder + policy forward over a slice of rollout
    /// rows: each *distinct* sample embeds once through the segmented
    /// encoder ([`CodeEmbedder::forward_rows`] dedups by content and
    /// fans rows back out), and the policy runs one stacked forward.
    fn stacked_policy_rows(&self, samples_of: &[&PathSample]) -> PolicyRows {
        let mut g = Graph::with_arena(&self.store, &self.arena);
        let obs = self
            .embedder
            .forward_rows(&mut g, samples_of)
            .expect("rollout chunks are never empty");
        let pol = self.policy.forward(&mut g, obs);
        PolicyRows {
            values: g.value(pol.value).data().to_vec(),
            logits_vf: pol.logits_vf.map(|nid| g.value(nid).clone()),
            logits_if: pol.logits_if.map(|nid| g.value(nid).clone()),
            mus: pol.mu.map(|nid| g.value(nid).clone()),
        }
    }

    fn log_std_values(&self) -> Vec<f32> {
        self.policy
            .log_std()
            .map(|p| self.store.get(p).data().to_vec())
            .unwrap_or_default()
    }

    /// Builds the PPO loss for one minibatch and applies a gradient step.
    /// Returns `(policy_loss, value_loss, entropy, total_loss)`.
    fn update_minibatch(
        &mut self,
        env: &impl BanditEnv,
        batch: &[Transition],
        idxs: &[usize],
    ) -> (f64, f64, f64, f64) {
        let n = idxs.len();
        let mut g = Graph::with_arena(&self.store, &self.arena);

        // Batched observation: embed each *distinct* loop once, then
        // gather rows back out to the minibatch (contexts repeat within
        // an iteration; gradients scatter-add through the gather, so the
        // shared embedding still receives every row's contribution).
        let (unique, row_of) = dedup_contexts(idxs.iter().map(|&i| batch[i].ctx));
        let samples: Vec<&PathSample> = unique.iter().map(|&c| env.context(c)).collect();
        let uobs = self
            .embedder
            .forward_batch(&mut g, &samples)
            .expect("minibatch chunks are never empty");
        let obs = g.gather_rows(uobs, &row_of);
        let pol = self.policy.forward(&mut g, obs);

        let adv = g.input(Tensor::from_vec(
            n,
            1,
            idxs.iter().map(|&i| batch[i].advantage).collect(),
        ));
        let logp_old = g.input(Tensor::from_vec(
            n,
            1,
            idxs.iter().map(|&i| batch[i].logp_old).collect(),
        ));
        let returns = g.input(Tensor::from_vec(
            n,
            1,
            idxs.iter().map(|&i| batch[i].reward as f32).collect(),
        ));

        let (logp_new, entropy) = match self.cfg.action_space {
            ActionSpaceKind::Discrete => {
                let lv = pol.logits_vf.expect("discrete");
                let li = pol.logits_if.expect("discrete");
                let lsm_v = g.log_softmax_rows(lv);
                let lsm_i = g.log_softmax_rows(li);
                let av: Vec<usize> = idxs.iter().map(|&i| batch[i].action.0).collect();
                let ai: Vec<usize> = idxs.iter().map(|&i| batch[i].action.1).collect();
                let pv = g.pick_per_row(lsm_v, &av);
                let pi = g.pick_per_row(lsm_i, &ai);
                let logp = g.add(pv, pi);
                let ent = {
                    let e1 = categorical_entropy(&mut g, lv, lsm_v);
                    let e2 = categorical_entropy(&mut g, li, lsm_i);
                    g.add(e1, e2)
                };
                let ent_mean = g.mean_all(ent);
                (logp, ent_mean)
            }
            ActionSpaceKind::Continuous1D | ActionSpaceKind::Continuous2D => {
                let dims = if self.cfg.action_space == ActionSpaceKind::Continuous1D {
                    1
                } else {
                    2
                };
                let mu = pol.mu.expect("continuous");
                let ls_param = self.policy.log_std().expect("continuous");
                let ls = g.param(ls_param); // 1 × dims
                let actions = g.input(Tensor::from_vec(
                    n,
                    dims,
                    idxs.iter()
                        .flat_map(|&i| batch[i].raw[..dims].iter().copied())
                        .collect(),
                ));
                // logp = Σ_d [ -0.5((x-μ)/σ)² - logσ - 0.5 ln 2π ]
                let diff = g.sub(actions, mu);
                let neg_ls = g.scale(ls, -1.0);
                let inv_std_row = g.exp(neg_ls); // 1 × dims
                let ones = g.input(Tensor::full(n, 1, 1.0));
                let inv_std = g.matmul(ones, inv_std_row); // n × dims
                let z = g.mul_elem(diff, inv_std);
                let z2 = g.mul_elem(z, z);
                let half_z2 = g.scale(z2, -0.5);
                let ls_b = g.matmul(ones, ls); // broadcast logσ
                let t1 = g.sub(half_z2, ls_b);
                let t2 = g.add_scalar(t1, -0.918_938_5); // −½ln2π
                                                         // Row-sum over dims → n × 1.
                let ones_d = g.input(Tensor::full(dims, 1, 1.0));
                let logp = g.matmul(t2, ones_d);
                // Entropy = Σ_d (½ + ½ln2π + logσ).
                let ent_row = g.add_scalar(ls, 1.418_938_5);
                let ent = g.sum_all(ent_row);
                (logp, ent)
            }
        };

        // Clipped surrogate.
        let delta = g.sub(logp_new, logp_old);
        let ratio = g.exp(delta);
        let s1 = g.mul_elem(ratio, adv);
        let clipped = g.clamp(ratio, 1.0 - self.cfg.clip, 1.0 + self.cfg.clip);
        let s2 = g.mul_elem(clipped, adv);
        let surr = g.minimum(s1, s2);
        let surr_mean = g.mean_all(surr);
        let policy_loss = g.scale(surr_mean, -1.0);

        // Value regression to the reward.
        let vdiff = g.sub(pol.value, returns);
        let vsq = g.mul_elem(vdiff, vdiff);
        let value_loss = g.mean_all(vsq);

        let vterm = g.scale(value_loss, self.cfg.vf_coef);
        let eterm = g.scale(entropy, -self.cfg.ent_coef);
        let partial = g.add(policy_loss, vterm);
        let total = g.add(partial, eterm);

        let pl = f64::from(g.value(policy_loss).data()[0]);
        let vl = f64::from(g.value(value_loss).data()[0]);
        let en = f64::from(g.value(entropy).data()[0]);
        let tl = f64::from(g.value(total).data()[0]);

        g.backward(total);
        let grads = g.param_grads();
        drop(g);
        self.store.apply_grads(grads);
        self.store.clip_grad_norm(self.cfg.max_grad_norm);
        self.adam.step(&mut self.store);
        self.store.zero_grads();

        (pl, vl, en, tl)
    }
}

/// Stacked per-row outputs of one policy forward: the value column plus
/// whichever heads the action space has. Shards of a parallel collection
/// stitch back together row-wise ([`PolicyRows::stitch`]).
struct PolicyRows {
    values: Vec<f32>,
    logits_vf: Option<Tensor>,
    logits_if: Option<Tensor>,
    mus: Option<Tensor>,
}

impl PolicyRows {
    /// Concatenates shard outputs in shard order (rows keep their batch
    /// positions — shards are contiguous chunks).
    fn stitch(shards: Vec<PolicyRows>) -> PolicyRows {
        let mut it = shards.into_iter();
        let mut out = it.next().expect("at least one shard");
        for s in it {
            out.values.extend_from_slice(&s.values);
            out.logits_vf = vstack(out.logits_vf.take(), s.logits_vf);
            out.logits_if = vstack(out.logits_if.take(), s.logits_if);
            out.mus = vstack(out.mus.take(), s.mus);
        }
        out
    }
}

/// Row-stacks two optional tensors (both present or both absent).
fn vstack(a: Option<Tensor>, b: Option<Tensor>) -> Option<Tensor> {
    match (a, b) {
        (Some(a), Some(b)) => {
            let (ra, cols) = a.shape();
            debug_assert_eq!(cols, b.cols(), "shard column mismatch");
            let rb = b.rows();
            let mut data = a.into_data();
            data.extend_from_slice(b.data());
            Some(Tensor::from_vec(ra + rb, cols, data))
        }
        (None, None) => None,
        _ => unreachable!("shards disagree on which policy heads exist"),
    }
}

/// First-seen-order dedup: returns the distinct context indices and, for
/// each input element, the position of its context in that distinct list
/// (so batched forwards embed each context once and gather rows back
/// out).
fn dedup_contexts(ctxs: impl Iterator<Item = usize>) -> (Vec<usize>, Vec<usize>) {
    let mut unique: Vec<usize> = Vec::new();
    let mut slot: HashMap<usize, usize> = HashMap::new();
    let row_of = ctxs
        .map(|c| {
            *slot.entry(c).or_insert_with(|| {
                unique.push(c);
                unique.len() - 1
            })
        })
        .collect();
    (unique, row_of)
}

/// `-Σ p log p` per row, as an `n × 1` node.
fn categorical_entropy(g: &mut Graph<'_>, logits: NodeId, log_probs: NodeId) -> NodeId {
    let p = g.softmax_rows(logits);
    let plp = g.mul_elem(p, log_probs);
    let cols = g.value(plp).cols();
    let ones = g.input(Tensor::full(cols, 1, 1.0));
    let row_sum = g.matmul(plp, ones);
    g.scale(row_sum, -1.0)
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Samples from a categorical given raw logits; returns `(index, logp)`.
fn sample_categorical(logits: &[f32], rng: &mut impl Rng) -> (usize, f32) {
    sample_categorical_with(logits, rng.gen_range(0.0..1.0))
}

/// The categorical sampler as a pure function of one uniform draw, so
/// the batched collection path can pre-draw its uniforms in per-sample
/// order and still produce bitwise-identical actions.
fn sample_categorical_with(logits: &[f32], mut u: f32) -> (usize, f32) {
    let m = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - m).exp()).collect();
    let z: f32 = exps.iter().sum();
    for (i, &e) in exps.iter().enumerate() {
        let p = e / z;
        if u < p || i == exps.len() - 1 {
            return (i, (p.max(1e-12)).ln());
        }
        u -= p;
    }
    unreachable!("categorical sampling always returns in the loop");
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    gaussian_from(u1, u2)
}

/// Box–Muller as a pure function of its two uniform draws (`u1` must be
/// in `(0, 1]`, as drawn by [`gaussian`]).
fn gaussian_from(u1: f32, u2: f32) -> f32 {
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

fn gaussian_logp(x: f32, mu: f32, std: f32) -> f32 {
    let z = (x - mu) / std;
    -0.5 * z * z - std.ln() - 0.918_938_5
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn categorical_sampling_matches_distribution() {
        let logits = vec![0.0, 1.0, 2.0];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..6000 {
            let (i, lp) = sample_categorical(&logits, &mut rng);
            counts[i] += 1;
            assert!(lp <= 0.0);
        }
        // Softmax of [0,1,2] ≈ [0.09, 0.24, 0.67].
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let p2 = counts[2] as f64 / 6000.0;
        assert!((p2 - 0.665).abs() < 0.05, "p2={p2}");
    }

    #[test]
    fn gaussian_logp_is_maximal_at_mean() {
        assert!(gaussian_logp(0.0, 0.0, 1.0) > gaussian_logp(1.0, 0.0, 1.0));
        assert!(gaussian_logp(0.0, 0.0, 1.0) > gaussian_logp(-1.0, 0.0, 1.0));
        // ln N(0;0,1) = −½ln2π ≈ −0.9189.
        assert!((gaussian_logp(0.0, 0.0, 1.0) + 0.918_938_5).abs() < 1e-6);
    }

    #[test]
    fn gaussian_sampler_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[-1.0, -2.0]), 0);
    }

    #[test]
    fn predict_batch_matches_single_predictions() {
        use nvc_embed::EmbedConfig;

        let mk = |base: usize| PathSample {
            starts: vec![base, base + 1, base + 2],
            paths: vec![base * 2, base * 2 + 1, base * 2 + 2],
            ends: vec![base + 5, base + 6, base + 7],
        };
        let samples: Vec<PathSample> = (0..9).map(|i| mk(i * 4)).collect();
        for kind in [
            ActionSpaceKind::Discrete,
            ActionSpaceKind::Continuous1D,
            ActionSpaceKind::Continuous2D,
        ] {
            let cfg = PpoConfig {
                hidden: vec![16, 16],
                action_space: kind,
                action_dims: ActionDims { n_vf: 7, n_if: 5 },
                ..PpoConfig::default()
            };
            let trainer = PpoTrainer::new(&cfg, &EmbedConfig::fast(), 23);
            let refs: Vec<&PathSample> = samples.iter().collect();
            let batched = trainer.predict_batch(&refs);
            let single: Vec<(usize, usize)> = samples.iter().map(|s| trainer.predict(s)).collect();
            assert_eq!(batched, single, "batched path diverged for {kind:?}");
        }
        let trainer = PpoTrainer::new(&PpoConfig::default(), &EmbedConfig::fast(), 23);
        assert!(trainer.predict_batch(&[]).is_empty());
    }

    /// A deterministic bandit for parity checks: reward is a pure
    /// function of (context, action).
    struct ParityEnv {
        contexts: Vec<PathSample>,
    }

    impl ParityEnv {
        fn new(n: usize) -> Self {
            let mk = |base: usize| PathSample {
                starts: vec![base, base + 1, base + 2, base + 3],
                paths: vec![base * 2, base * 2 + 1, base * 2 + 4, base * 2 + 5],
                ends: vec![base + 5, base + 6, base + 7, base + 8],
            };
            ParityEnv {
                contexts: (0..n).map(|i| mk(i * 6)).collect(),
            }
        }
    }

    impl BanditEnv for ParityEnv {
        fn num_contexts(&self) -> usize {
            self.contexts.len()
        }

        fn context(&self, idx: usize) -> &PathSample {
            &self.contexts[idx]
        }

        fn action_dims(&self) -> ActionDims {
            ActionDims { n_vf: 7, n_if: 5 }
        }

        fn reward(&mut self, idx: usize, action: (usize, usize)) -> f64 {
            (idx as f64 * 0.17 - action.0 as f64 * 0.05 + action.1 as f64 * 0.03).sin()
        }
    }

    /// The tentpole invariant: batched collection must produce
    /// *bitwise-identical* transitions to the seed per-sample path under
    /// the same RNG seed — same contexts, actions, raw samples,
    /// log-probs, rewards, and value baselines — for every action space.
    #[test]
    fn batched_collect_matches_reference_bitwise() {
        use nvc_embed::EmbedConfig;
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;

        for kind in [
            ActionSpaceKind::Discrete,
            ActionSpaceKind::Continuous1D,
            ActionSpaceKind::Continuous2D,
        ] {
            let cfg = PpoConfig {
                train_batch: 37, // odd, and > contexts so draws repeat
                hidden: vec![16, 16],
                action_space: kind,
                action_dims: ActionDims { n_vf: 7, n_if: 5 },
                ..PpoConfig::default()
            };
            let mut trainer = PpoTrainer::new(&cfg, &EmbedConfig::fast(), 41);
            let mut env = ParityEnv::new(5);

            let mut rng_ref = ChaCha8Rng::seed_from_u64(9);
            let reference = trainer.collect_reference(&mut env, &mut rng_ref);
            let mut rng_bat = ChaCha8Rng::seed_from_u64(9);
            let batched = trainer.collect(&mut env, &mut rng_bat);

            assert_eq!(reference.len(), batched.len());
            for (i, (r, b)) in reference.iter().zip(batched.iter()).enumerate() {
                assert_eq!(r, b, "transition {i} diverged for {kind:?}");
            }
            // Both paths must leave the RNG at the same stream position.
            assert_eq!(
                rng_ref.gen_range(0.0..1.0f64),
                rng_bat.gen_range(0.0..1.0f64),
                "RNG stream positions diverged for {kind:?}"
            );
        }
    }

    /// Sharding the stacked rollout forward across threads must not
    /// change a single bit of the transitions — each output row is a
    /// function of its own input row, and the RNG is consumed before any
    /// forward runs.
    #[test]
    fn parallel_collect_matches_single_threaded_bitwise() {
        use nvc_embed::EmbedConfig;
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;

        for kind in [
            ActionSpaceKind::Discrete,
            ActionSpaceKind::Continuous1D,
            ActionSpaceKind::Continuous2D,
        ] {
            let base = PpoConfig {
                train_batch: 29, // not a multiple of the thread count
                hidden: vec![16, 16],
                action_space: kind,
                action_dims: ActionDims { n_vf: 7, n_if: 5 },
                ..PpoConfig::default()
            };
            let mut env = ParityEnv::new(5);
            let mut single = PpoTrainer::new(&base, &EmbedConfig::fast(), 41);
            let mut rng_s = ChaCha8Rng::seed_from_u64(9);
            let expected = single.collect(&mut env, &mut rng_s);

            for threads in [3usize, 8, 64] {
                let cfg = PpoConfig {
                    collect_threads: threads,
                    ..base.clone()
                };
                let mut sharded = PpoTrainer::new(&cfg, &EmbedConfig::fast(), 41);
                let mut rng_p = ChaCha8Rng::seed_from_u64(9);
                let got = sharded.collect(&mut env, &mut rng_p);
                assert_eq!(
                    expected, got,
                    "{threads}-thread collect diverged for {kind:?}"
                );
            }
        }
    }

    /// The training-telemetry journal writes exactly one JSON line per
    /// iteration, carrying the same numbers `train_iteration` returned
    /// (so offline curve-plotting needs no second source of truth).
    #[test]
    fn journal_records_one_line_per_iteration() {
        use nvc_embed::EmbedConfig;
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let cfg = PpoConfig {
            train_batch: 8,
            minibatch: 4,
            epochs: 1,
            hidden: vec![8],
            ..PpoConfig::default()
        };
        let mut trainer = PpoTrainer::new(&cfg, &EmbedConfig::fast(), 11);
        let sink = Shared(Arc::new(Mutex::new(Vec::new())));
        trainer.set_journal(Some(nvc_obs::Journal::from_writer(Box::new(sink.clone()))));

        let mut env = ParityEnv::new(3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let stats = trainer.train(&mut env, 2, &mut rng);

        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one journal line per iteration: {text:?}");
        for (i, (line, s)) in lines.iter().zip(&stats).enumerate() {
            assert!(
                line.contains(&format!("\"iter\":{}", i + 1)),
                "bad iter field: {line}"
            );
            assert!(line.contains(&format!("\"steps\":{}", s.steps)));
            assert!(line.contains(&format!("\"reward_mean\":{}", s.reward_mean)));
            assert!(line.contains(&format!("\"collect_us\":{}", s.collect_us)));
            assert!(line.contains(&format!("\"update_us\":{}", s.update_us)));
        }
        // Detaching stops the stream.
        trainer.set_journal(None);
        trainer.train(&mut env, 1, &mut rng);
        assert_eq!(
            sink.0.lock().unwrap().len(),
            text.len(),
            "journal kept writing after detach"
        );
    }

    /// A bandit whose reward is the same constant for every (context,
    /// action) — the degenerate regime early online fine-tuning sits in
    /// when the replay corpus holds one repeated observation.
    struct ConstantEnv {
        contexts: Vec<PathSample>,
    }

    impl BanditEnv for ConstantEnv {
        fn num_contexts(&self) -> usize {
            self.contexts.len()
        }

        fn context(&self, idx: usize) -> &PathSample {
            &self.contexts[idx]
        }

        fn action_dims(&self) -> ActionDims {
            ActionDims { n_vf: 7, n_if: 5 }
        }

        fn reward(&mut self, _idx: usize, _action: (usize, usize)) -> f64 {
            0.25
        }
    }

    #[test]
    fn constant_reward_batch_stays_finite() {
        use nvc_embed::EmbedConfig;

        let cfg = PpoConfig {
            train_batch: 16,
            minibatch: 8,
            epochs: 2,
            hidden: vec![8],
            ..PpoConfig::default()
        };
        let mut trainer = PpoTrainer::new(&cfg, &EmbedConfig::fast(), 13);
        let mut env = ConstantEnv {
            contexts: vec![PathSample {
                starts: vec![1, 2, 3],
                paths: vec![4, 5, 6],
                ends: vec![7, 8, 9],
            }],
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let stats = trainer.train_iteration(&mut env, &mut rng);
        assert_eq!(stats.reward_mean, 0.25);
        for (name, x) in [
            ("loss", stats.loss),
            ("policy_loss", stats.policy_loss),
            ("value_loss", stats.value_loss),
            ("entropy", stats.entropy),
        ] {
            assert!(x.is_finite(), "{name} is not finite: {x}");
        }
        // The update must not have poisoned the weights: predictions
        // still work and a second iteration stays finite too.
        let _ = trainer.predict(&env.contexts[0]);
        let again = trainer.train_iteration(&mut env, &mut rng);
        assert!(again.loss.is_finite());
    }

    #[test]
    fn empty_batch_skips_the_update_with_defined_stats() {
        use nvc_embed::EmbedConfig;

        let cfg = PpoConfig {
            train_batch: 0,
            hidden: vec![8],
            ..PpoConfig::default()
        };
        let mut trainer = PpoTrainer::new(&cfg, &EmbedConfig::fast(), 13);
        let mut env = ParityEnv::new(2);
        let before = trainer.predict(env.context(0));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let stats = trainer.train_iteration(&mut env, &mut rng);
        assert_eq!(stats.steps, 0);
        assert_eq!(stats.reward_mean, 0.0, "empty batch must not yield NaN");
        assert!(stats.reward_mean.is_finite());
        assert_eq!(stats.loss, 0.0);
        // Skipped update: the policy is untouched.
        assert_eq!(trainer.predict(env.context(0)), before);
    }

    #[test]
    fn default_config_matches_paper() {
        let c = PpoConfig::default();
        assert_eq!(c.lr, 5e-5);
        assert_eq!(c.train_batch, 4000);
        assert_eq!(c.hidden, vec![64, 64]);
        assert_eq!(c.action_space, ActionSpaceKind::Discrete);
        assert_eq!(c.action_dims.total(), 35);
    }
}
