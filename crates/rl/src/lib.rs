//! Proximal Policy Optimization for the NeuroVectorizer contextual bandit.
//!
//! §2.3 of the paper: "If the number of steps the RL agent has to take
//! before the environment terminates is one, the problem is called
//! Contextual Bandits." Each episode is a single decision: observe a loop's
//! code embedding, emit `(VF, IF)`, receive the normalized execution-time
//! improvement as reward.
//!
//! This crate implements:
//!
//! * [`spaces`] — the three action parameterizations compared in Figure 6:
//!   discrete (two categorical heads indexing the VF/IF arrays — the
//!   paper's winner), one continuous value encoding both factors, and two
//!   continuous values;
//! * [`policy`] — the fully-connected policy/value network (64×64 by
//!   default, the architecture swept in Figure 5), sharing its
//!   [`nvc_nn::ParamStore`] with the [`nvc_embed::CodeEmbedder`] so
//!   gradients flow end-to-end from the PPO loss into the embedding
//!   tables, exactly as the paper trains code2vec jointly;
//! * [`ppo`] — the clipped-surrogate PPO update with a value baseline and
//!   entropy bonus, plus rollout collection over a [`BanditEnv`].
//!
//! The single-step structure means no discount factor or GAE is needed:
//! the advantage is `reward − V(observation)`.

pub mod policy;
pub mod ppo;
pub mod replay;
pub mod spaces;

pub use policy::{PolicyConfig, PolicyNet};
pub use ppo::{BanditEnv, IterStats, PpoConfig, PpoTrainer};
pub use replay::ReplayEnv;
pub use spaces::{ActionDims, ActionSpaceKind};

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_embed::{EmbedConfig, PathSample};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A synthetic bandit: 4 distinguishable contexts, each with its own
    /// best action. PPO must drive the mean reward close to 1.
    struct ToyEnv {
        contexts: Vec<PathSample>,
        best: Vec<(usize, usize)>,
    }

    impl ToyEnv {
        fn new() -> Self {
            // Hand-built samples with disjoint vocabulary rows so they are
            // trivially separable.
            let mk = |base: usize| PathSample {
                starts: vec![base, base + 1, base + 2],
                paths: vec![base, base + 1, base + 2],
                ends: vec![base + 3, base + 4, base + 5],
            };
            ToyEnv {
                contexts: (0..4).map(|i| mk(i * 8)).collect(),
                best: vec![(0, 0), (1, 2), (2, 1), (3, 3)],
            }
        }
    }

    impl BanditEnv for ToyEnv {
        fn num_contexts(&self) -> usize {
            self.contexts.len()
        }

        fn context(&self, idx: usize) -> &PathSample {
            &self.contexts[idx]
        }

        fn action_dims(&self) -> ActionDims {
            ActionDims { n_vf: 4, n_if: 4 }
        }

        fn reward(&mut self, idx: usize, action: (usize, usize)) -> f64 {
            let (bv, bi) = self.best[idx];
            let d = (action.0 as i64 - bv as i64).abs() + (action.1 as i64 - bi as i64).abs();
            1.0 - 0.4 * d as f64
        }
    }

    #[test]
    fn ppo_learns_toy_bandit() {
        let cfg = PpoConfig {
            lr: 5e-3,
            train_batch: 128,
            minibatch: 32,
            epochs: 4,
            hidden: vec![32, 32],
            action_dims: ActionDims { n_vf: 4, n_if: 4 },
            ..PpoConfig::default()
        };
        let mut trainer = PpoTrainer::new(&cfg, &EmbedConfig::fast(), 7);
        let mut env = ToyEnv::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let stats = trainer.train(&mut env, 80, &mut rng);
        let last = stats.last().unwrap();
        assert!(
            last.reward_mean > 0.7,
            "PPO failed to learn toy bandit: reward_mean={}",
            last.reward_mean
        );
        // Greedy prediction should be optimal on at least 3 of 4 contexts.
        let mut correct = 0;
        for i in 0..4 {
            if trainer.predict(env.context(i)) == env.best[i] {
                correct += 1;
            }
        }
        assert!(
            correct >= 3,
            "only {correct}/4 contexts predicted optimally"
        );
    }

    #[test]
    fn continuous_spaces_also_learn_something() {
        for kind in [ActionSpaceKind::Continuous1D, ActionSpaceKind::Continuous2D] {
            let cfg = PpoConfig {
                lr: 5e-3,
                train_batch: 128,
                minibatch: 32,
                epochs: 4,
                hidden: vec![32, 32],
                action_space: kind,
                action_dims: ActionDims { n_vf: 4, n_if: 4 },
                ..PpoConfig::default()
            };
            let mut trainer = PpoTrainer::new(&cfg, &EmbedConfig::fast(), 11);
            let mut env = ToyEnv::new();
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let stats = trainer.train(&mut env, 30, &mut rng);
            let first = stats.first().unwrap().reward_mean;
            let last = stats.last().unwrap().reward_mean;
            assert!(last > first, "{kind:?} did not improve: {first} → {last}");
        }
    }
}
