//! `nvc-hub` — the networked multi-model serving tier.
//!
//! `nvc-serve` made one model fast *inside* one process; a build farm has
//! many processes on many machines, and retraining ships new checkpoints
//! while builds are running. This crate is the layer between the two:
//!
//! * [`server`] — a **TCP transport**: a `TcpListener` accept loop with
//!   one thread per connection speaking the same JSON-lines protocol as
//!   the stdin daemon, plus `ping` / `metrics` / `reload` / `shutdown`
//!   control verbs. Any number of concurrent build processes share one
//!   warm hub;
//! * [`registry`] — a **model registry**: N named checkpoints, each
//!   behind its own `ServeHandle` (private cache + batcher + workers),
//!   routed by explicit `"model"` field or a deterministic weighted A/B
//!   split, with atomic hot-swap (`reload`) that never drops in-flight
//!   requests;
//! * [`persist`] — a **persistent decision cache**: each model's sharded
//!   LRU cache is serialized on shutdown and restored on start, stamped
//!   with the owning checkpoint's content hash so a changed checkpoint
//!   invalidates stale entries instead of serving wrong decisions.
//!
//! # Wire protocol
//!
//! Everything the stdin daemon accepts, plus:
//!
//! ```text
//! → {"op":"vectorize","id":"r1","source":"…","model":"prod"}      # pin a model
//! → {"op":"vectorize","id":"r2","source":"…","route":"host42"}    # A/B by key
//! ← {"id":"r2","ok":true,"model":"prod","source":"…","loops":[…],"latency_us":412}
//! → {"op":"ping"}                      ← {"ok":true,"pong":true,"uptime_us":…}
//! → {"op":"metrics"}                   ← {"ok":true,"stats":{…,"models":{…}}}
//! → {"op":"reload","model":"prod","checkpoint":"new.ckpt"}
//! ← {"ok":true,"reloaded":"prod","checkpoint_hash":"…"}
//! → {"op":"report","model":"prod","key":"…","reward":0.31}   # measured reward
//! ← {"ok":true,"recorded":true,"reports":…}   # (learning hubs; see `learn`)
//! → {"op":"cache_export"}              ← every model's cache image (gossip)
//! → {"op":"shutdown"}                  ← ack, then the hub drains and persists
//! ```
//!
//! # Fleet integration
//!
//! A hub becomes a fleet node through three optional attachments:
//! a **shared decision store** ([`Hub::with_shared_store`]) layered
//! behind every model's LRU, a **registry announcer**
//! ([`announce::spawn_announcer`]) heartbeating `(model,
//! checkpoint_hash, addr)` to an `nvc registry`, and **warm-join
//! gossip** ([`Hub::warm_from_peers`]) that pulls a peer's cache image
//! over the `cache_export` verb before taking traffic. Every
//! `vectorize` response is stamped with the serving checkpoint's
//! content hash so fleet clients can verify versions end-to-end.

pub mod announce;
mod event;
pub mod learn;
pub mod persist;
pub mod registry;
pub mod server;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use nvc_obs::{Counter, Gauge, MetricsRegistry};
use nvc_serve::json::obj;
use nvc_serve::{DecisionModel, Json, LoopReport, ServeConfig};

pub use announce::{spawn_announcer, AnnounceConfig, Announcer};
pub use learn::{
    spawn_learner, welch_z, ChallengerTrainer, Cohort, LearnConfig, LearnEvent, LearnState,
    ReportRecord,
};
pub use persist::CacheSection;
pub use registry::{ModelEntry, ModelRegistry, ModelSpec};
pub use server::HubHandle;

/// Which machinery drives connection I/O (`HubConfig::transport`,
/// `--transport` on `nvc hub`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HubTransport {
    /// One readiness selector (`vendor/polling`: epoll on Linux,
    /// `poll(2)` elsewhere) drives every connection nonblocking; idle
    /// connections cost zero CPU. The default.
    Event,
    /// One OS thread per connection, polling at `conn_poll_ms` — the
    /// pre-selector transport, kept for parity testing and as a
    /// fallback.
    Threads,
}

impl HubTransport {
    /// Parses the CLI spelling (`event` | `threads`).
    pub fn parse(s: &str) -> Result<HubTransport, String> {
        match s {
            "event" => Ok(HubTransport::Event),
            "threads" => Ok(HubTransport::Threads),
            other => Err(format!("unknown transport `{other}` (event|threads)")),
        }
    }
}

/// Tuning knobs for the hub tier (`NvConfig.hub`, `nvc hub` flags).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HubConfig {
    /// Address the TCP listener binds (`host:port`; port 0 lets the OS
    /// pick — tests and benches use this).
    pub listen: String,
    /// Where the decision cache persists across restarts (`None`
    /// disables persistence).
    pub cache_path: Option<String>,
    /// Per-connection read poll interval in milliseconds — how quickly
    /// an idle connection notices hub shutdown (threads transport only;
    /// the event transport has no per-connection timers).
    pub conn_poll_ms: u64,
    /// Accept-loop poll interval in milliseconds (threads transport
    /// only).
    pub accept_poll_ms: u64,
    /// Connection I/O machinery; see [`HubTransport`].
    pub transport: HubTransport,
    /// Worker threads executing protocol requests off the event loop
    /// (event transport only; clamped to ≥ 1). Responses are written
    /// back in per-connection request order regardless.
    pub request_threads: usize,
    /// Backpressure bound (event transport): once a connection's queued
    /// unsent output exceeds this many bytes the loop stops *reading*
    /// from it until the peer drains below half — a slow reader
    /// throttles only itself.
    pub max_output_buffer: usize,
    /// Background cache-checkpoint interval in seconds (0 disables).
    /// With persistence configured, the cache image is rewritten every
    /// interval so a crash loses at most one interval of decisions
    /// instead of everything since startup.
    pub cache_checkpoint_secs: u64,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            listen: "127.0.0.1:7199".to_string(),
            cache_path: None,
            conn_poll_ms: 50,
            accept_poll_ms: 20,
            transport: HubTransport::Event,
            request_threads: 4,
            max_output_buffer: 256 * 1024,
            cache_checkpoint_secs: 0,
        }
    }
}

impl HubConfig {
    /// Builder-style listen-address override.
    pub fn with_listen(mut self, addr: impl Into<String>) -> Self {
        self.listen = addr.into();
        self
    }

    /// Builder-style cache-path override.
    pub fn with_cache_path(mut self, path: impl Into<String>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// Builder-style transport override.
    pub fn with_transport(mut self, transport: HubTransport) -> Self {
        self.transport = transport;
        self
    }

    /// Builder-style request-worker override (event transport).
    pub fn with_request_threads(mut self, n: usize) -> Self {
        self.request_threads = n;
        self
    }

    /// Builder-style output-buffer-bound override (event transport).
    pub fn with_max_output_buffer(mut self, bytes: usize) -> Self {
        self.max_output_buffer = bytes;
        self
    }

    /// Builder-style cache-checkpoint-interval override.
    pub fn with_cache_checkpoint_secs(mut self, secs: u64) -> Self {
        self.cache_checkpoint_secs = secs;
        self
    }
}

/// Hub failures surfaced to clients and operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HubError {
    /// A request named a model the registry does not hold.
    UnknownModel(String),
    /// A model name the snapshot format cannot represent (empty, or
    /// containing whitespace).
    BadModelName(String),
    /// Registering under a name that is already taken.
    DuplicateModel(String),
    /// Routing with an empty registry.
    NoModels,
    /// The hub was built without a checkpoint loader (`reload` needs one).
    NoLoader,
    /// Loading a checkpoint failed (I/O or parse).
    Loader(String),
    /// Filesystem problems while persisting/restoring the cache.
    Io(String),
}

impl std::fmt::Display for HubError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HubError::UnknownModel(n) => write!(f, "unknown model `{n}`"),
            HubError::BadModelName(n) => {
                write!(f, "bad model name `{n}` (must be non-empty, no whitespace)")
            }
            HubError::DuplicateModel(n) => write!(f, "model `{n}` already registered"),
            HubError::NoModels => write!(f, "no models registered"),
            HubError::NoLoader => write!(f, "hub has no checkpoint loader"),
            HubError::Loader(e) => write!(f, "checkpoint load failed: {e}"),
            HubError::Io(e) => write!(f, "cache persistence: {e}"),
        }
    }
}

impl std::error::Error for HubError {}

/// Loads a checkpoint file into a servable model: returns the model and
/// its content hash. The CLI wires this to `NeuroVectorizer::restore` +
/// `nvc_nn::serialize::checkpoint_hash_text`; tests use stubs. A loader
/// built from an `NvConfig` (`NeuroVectorizer::hub_loader`) re-applies
/// that config's `matmul_threads` on every `reload`, so hot-swapped
/// models keep running the threaded kernels.
pub type CheckpointLoader =
    Box<dyn Fn(&str) -> Result<(Arc<dyn DecisionModel>, u64), String> + Send + Sync>;

/// The hub itself: registry + persistence + protocol handling. The TCP
/// layer ([`server::serve_tcp`]) and tests drive it through
/// [`Hub::handle_line`].
pub struct Hub {
    registry: ModelRegistry,
    cfg: HubConfig,
    loader: Option<CheckpointLoader>,
    started: Instant,
    /// Hub-level instruments (`hub_*` names) live here; each model's
    /// `serve_*` instruments live in its own handle's registry.
    obs: Arc<MetricsRegistry>,
    /// Protocol requests handled (all verbs, all connections).
    requests: Arc<Counter>,
    /// Connections accepted since start (maintained by the TCP layer).
    pub(crate) connections: Arc<Counter>,
    /// Connections currently open (maintained by the TCP layer).
    pub(crate) active_connections: Arc<Gauge>,
    /// Background cache checkpoints written (the periodic persister).
    pub(crate) cache_checkpoints: Arc<Counter>,
    /// Successful warm-join transfers pulled from peers.
    transfers: Arc<Counter>,
    /// Cache entries absorbed across all warm-join transfers.
    transfer_entries: Arc<Counter>,
    /// The fleet's content-addressed shared store, when attached.
    shared: Option<Arc<nvc_fleet::ContentStore>>,
    /// The online-learning loop's state, when enabled
    /// ([`Hub::with_learning`]).
    learn: Option<Arc<learn::LearnState>>,
    /// Serializes snapshot writes: the periodic checkpointer, `reload`'s
    /// pre-swap persist, and shutdown's final persist all target the
    /// same temp path.
    persist_lock: parking_lot::Mutex<()>,
    /// Set once shutdown begins; the TCP layer polls it.
    shutting_down: AtomicBool,
    /// Guards the persist-and-drain sequence (runs exactly once).
    drained: AtomicBool,
}

impl Hub {
    /// An empty hub; register models with [`Hub::register`].
    pub fn new(cfg: HubConfig, serve_cfg: ServeConfig) -> Self {
        nvc_obs::init_from_env();
        let obs = Arc::new(MetricsRegistry::default());
        Hub {
            registry: ModelRegistry::new(serve_cfg),
            cfg,
            loader: None,
            started: Instant::now(),
            requests: obs.counter("hub_requests_total"),
            connections: obs.counter("hub_connections_total"),
            active_connections: obs.gauge("hub_active_connections"),
            cache_checkpoints: obs.counter("hub_cache_checkpoints_total"),
            transfers: obs.counter("hub_transfers_total"),
            transfer_entries: obs.counter("hub_transfer_entries_total"),
            shared: None,
            learn: None,
            persist_lock: parking_lot::Mutex::new(()),
            obs,
            shutting_down: AtomicBool::new(false),
            drained: AtomicBool::new(false),
        }
    }

    /// Attaches the checkpoint loader the `reload` verb uses.
    pub fn with_loader(mut self, loader: CheckpointLoader) -> Self {
        self.loader = Some(loader);
        self
    }

    /// Attaches the fleet's content-addressed shared decision store.
    /// Every model registered *afterwards* probes it on LRU miss and
    /// publishes every computed decision to it; warm-join transfers
    /// absorb peer entries into it. Attach before registering models.
    pub fn with_shared_store(mut self, store: Arc<nvc_fleet::ContentStore>) -> Self {
        self.registry
            .set_shared_store(Arc::clone(&store) as Arc<dyn nvc_serve::SharedDecisionStore>);
        self.shared = Some(store);
        self
    }

    /// The attached shared decision store, if any.
    pub fn shared_store(&self) -> Option<&Arc<nvc_fleet::ContentStore>> {
        self.shared.as_ref()
    }

    /// Enables online learning: opens the corpus journal (append mode —
    /// existing reports replay into memory), the promotion log, and the
    /// `report` verb, and arms [`Hub::learn_step`] /
    /// [`learn::spawn_learner`].
    ///
    /// # Errors
    ///
    /// [`HubError::Io`] when a journal cannot be opened or the existing
    /// corpus is corrupt.
    pub fn with_learning(
        mut self,
        cfg: learn::LearnConfig,
        trainer: learn::ChallengerTrainer,
    ) -> Result<Self, HubError> {
        let state = learn::LearnState::new(cfg, trainer, &self.obs)?;
        self.learn = Some(Arc::new(state));
        Ok(self)
    }

    /// The online-learning state, when enabled.
    pub fn learning(&self) -> Option<&Arc<learn::LearnState>> {
        self.learn.as_ref()
    }

    /// The hub's configuration.
    pub fn config(&self) -> &HubConfig {
        &self.cfg
    }

    /// The model registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Registers a model (see [`ModelRegistry::register`]).
    ///
    /// # Errors
    ///
    /// [`HubError::DuplicateModel`] when the name is taken.
    pub fn register(&self, spec: ModelSpec) -> Result<(), HubError> {
        self.registry.register(spec)
    }

    /// True once shutdown has begun (the TCP layer polls this).
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Restores each model's decision cache from the configured
    /// `cache_path`, version-checked: a section whose checkpoint hash
    /// matches the registered model of the same name is restored
    /// (counted in that model's `entries_restored`); a mismatched or
    /// orphaned section is discarded (counted in
    /// `entries_invalidated_by_version` when the model exists).
    /// A missing file is a cold start, not an error.
    ///
    /// # Errors
    ///
    /// [`HubError::Io`] on unreadable or corrupt snapshot files.
    pub fn restore_cache(&self) -> Result<(), HubError> {
        let Some(path) = self.cfg.cache_path.as_deref() else {
            return Ok(());
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(HubError::Io(format!("read {path}: {e}"))),
        };
        let sections = persist::parse(&text).map_err(|e| HubError::Io(e.to_string()))?;
        for section in sections {
            let Some(entry) = self.registry.get(&section.model) else {
                continue; // model no longer configured; silently dropped
            };
            if entry.checkpoint_hash == section.checkpoint_hash {
                entry.handle.restore_cache(section.entries);
            } else {
                entry
                    .handle
                    .record_invalidated_entries(section.entries.len() as u64);
            }
        }
        Ok(())
    }

    /// Writes every model's cache image to the configured `cache_path`
    /// (no-op when persistence is disabled). Written via a temp file +
    /// rename so a crash mid-write never leaves a truncated snapshot.
    ///
    /// # Errors
    ///
    /// [`HubError::Io`] when writing fails.
    pub fn persist_cache(&self) -> Result<(), HubError> {
        let Some(path) = self.cfg.cache_path.as_deref() else {
            return Ok(());
        };
        // The periodic checkpointer, reload's pre-swap persist, and the
        // shutdown persist share one temp path; serialize them.
        let _persisting = self.persist_lock.lock();
        let sections: Vec<CacheSection> = self
            .registry
            .entries()
            .iter()
            .map(|e| CacheSection {
                model: e.name.clone(),
                checkpoint_hash: e.checkpoint_hash,
                entries: e.handle.cache_snapshot(),
            })
            .collect();
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, persist::to_string(&sections))
            .map_err(|e| HubError::Io(format!("write {tmp}: {e}")))?;
        std::fs::rename(&tmp, path).map_err(|e| HubError::Io(format!("rename {tmp}: {e}")))
    }

    /// Initiates shutdown: marks the hub as draining, drains every
    /// model's worker pool (in-flight batches complete), then persists
    /// the cache. Idempotent; safe from any thread — including a
    /// connection thread handling the `shutdown` verb.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
        if self.drained.swap(true, Ordering::AcqRel) {
            return;
        }
        self.registry.shutdown_all();
        if let Err(e) = self.persist_cache() {
            eprintln!("nvc hub: cache persistence failed: {e}");
        }
        nvc_obs::flush_trace();
    }

    /// Crash simulation for resilience tests: flags shutdown so every
    /// loop exits, but *skips* the final cache persist — whatever the
    /// periodic checkpointer last wrote is all that survives, exactly
    /// like a process kill. Worker pools still drain on drop.
    pub fn abort(&self) {
        self.shutting_down.store(true, Ordering::Release);
        self.drained.store(true, Ordering::Release);
    }

    /// Routing key for a request: the explicit `"route"` field when
    /// present (stable client identity), else the source text — so one
    /// file keeps hitting the model whose cache holds its loops.
    fn routing_key(route: Option<&str>, source: &str) -> u64 {
        let mut h = nvc_embed::Fnv1a::new();
        h.write(route.unwrap_or(source).as_bytes());
        h.finish()
    }

    /// The hub-wide introspection surface: uptime, totals, and one
    /// stats object per model (each carrying its own request count and
    /// cache-persistence counters).
    pub fn stats_json(&self) -> Json {
        let models: Vec<(String, Json)> = self
            .registry
            .entries()
            .iter()
            .map(|e| {
                let Json::Obj(mut members) = e.handle.stats_json() else {
                    unreachable!("stats_json renders an object");
                };
                members.insert(
                    0,
                    (
                        "in_flight".to_string(),
                        Json::from(e.in_flight.get().max(0) as u64),
                    ),
                );
                members.insert(0, ("weight".to_string(), Json::from(u64::from(e.weight))));
                members.insert(
                    0,
                    (
                        "checkpoint_hash".to_string(),
                        Json::from(format!("{:016x}", e.checkpoint_hash)),
                    ),
                );
                (e.name.clone(), Json::Obj(members))
            })
            .collect();
        obj(vec![
            (
                "uptime_us",
                Json::from(self.started.elapsed().as_micros() as u64),
            ),
            (
                "kernel_mode",
                Json::from(nvc_nn::kernels::kernel_mode().name()),
            ),
            ("requests", Json::from(self.requests.get())),
            ("connections", Json::from(self.connections.get())),
            (
                "active_connections",
                Json::from(self.active_connections.get().max(0) as u64),
            ),
            (
                "cache_checkpoints",
                Json::from(self.cache_checkpoints.get()),
            ),
            ("transfers", Json::from(self.transfers.get())),
            ("transfer_entries", Json::from(self.transfer_entries.get())),
            (
                "shared_store",
                match &self.shared {
                    Some(store) => {
                        let s = store.stats();
                        obj(vec![
                            ("entries", Json::from(s.entries as u64)),
                            ("hits", Json::from(s.hits)),
                            ("misses", Json::from(s.misses)),
                            ("publishes", Json::from(s.publishes)),
                            ("evictions", Json::from(s.evictions)),
                            ("transfers_in", Json::from(s.transfers_in)),
                        ])
                    }
                    None => Json::Null,
                },
            ),
            (
                "learning",
                match &self.learn {
                    Some(ls) => obj(vec![
                        ("reports", Json::from(ls.reports.get())),
                        ("report_errors", Json::from(ls.report_errors.get())),
                        ("corpus", Json::from(ls.corpus_len() as u64)),
                        ("trains", Json::from(ls.trains.get())),
                        ("promotions", Json::from(ls.promotions.get())),
                        ("demotions", Json::from(ls.demotions.get())),
                        ("rollbacks", Json::from(ls.rollbacks.get())),
                    ]),
                    None => Json::Null,
                },
            ),
            ("models", Json::Obj(models)),
        ])
    }

    /// Prometheus text exposition: hub-level instruments unlabeled, each
    /// model's serve instruments labeled `model="name"`.
    pub fn render_prometheus(&self) -> String {
        let mut out = self.obs.render_prometheus("");
        for e in self.registry.entries().iter() {
            out.push_str(&e.handle.render_prometheus(&format!("model=\"{}\"", e.name)));
        }
        out
    }

    /// Handles one protocol line; returns the response line and whether
    /// the connection should keep reading (`false` after `shutdown`).
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        // Mint a trace id if the transport (serve_connection) didn't
        // already; direct callers (tests, in-process embedding) get one
        // per line this way.
        let _trace = nvc_obs::request_scope();
        let _span = nvc_obs::span("hub_request");
        self.requests.inc();
        let with_id = |id: Option<&str>, mut members: Vec<(&str, Json)>| {
            if let Some(id) = id {
                members.insert(0, ("id", Json::from(id)));
            }
            obj(members).render()
        };
        let fail = |id: Option<&str>, e: String| {
            (
                with_id(
                    id,
                    vec![("ok", Json::from(false)), ("error", Json::from(e))],
                ),
                true,
            )
        };
        let v = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return fail(None, format!("invalid JSON: {e}")),
        };
        let id = v.get("id").and_then(Json::as_str).map(str::to_string);
        let id = id.as_deref();
        let op = v.get("op").and_then(Json::as_str);
        match op {
            Some("ping") => (
                with_id(
                    id,
                    vec![
                        ("ok", Json::from(true)),
                        ("pong", Json::from(true)),
                        (
                            "uptime_us",
                            Json::from(self.started.elapsed().as_micros() as u64),
                        ),
                    ],
                ),
                true,
            ),
            Some("metrics") | Some("stats") => (
                with_id(
                    id,
                    vec![("ok", Json::from(true)), ("stats", self.stats_json())],
                ),
                true,
            ),
            Some("shutdown") => {
                // Only *flag* shutdown here: the connection thread
                // writes this ack first and then runs the full drain
                // (`Hub::shutdown`), so the requesting client gets its
                // response before models drain and the cache persists.
                self.shutting_down.store(true, Ordering::Release);
                (
                    with_id(
                        id,
                        vec![("ok", Json::from(true)), ("shutdown", Json::from(true))],
                    ),
                    false,
                )
            }
            Some("cache_export") => {
                // Gossip transfer: ship every model's cache image (plus
                // the shared store's per-checkpoint entries) so a
                // joining peer starts warm. Content-addressed by
                // checkpoint hash, so the receiver can verify validity
                // per section.
                let sections: Vec<Json> = self
                    .registry
                    .entries()
                    .iter()
                    .map(|e| {
                        let mut entries = e.handle.cache_snapshot();
                        if let Some(store) = &self.shared {
                            // The shared store may hold entries the LRU
                            // evicted (or absorbed from elsewhere);
                            // export the union, deduplicated by key.
                            let mut seen: std::collections::HashSet<u64> =
                                entries.iter().map(|(k, _)| *k).collect();
                            for (k, pair) in store.entries_for(e.checkpoint_hash) {
                                if seen.insert(k) {
                                    entries.push((k, pair));
                                }
                            }
                        }
                        obj(vec![
                            ("model", Json::from(e.name.as_str())),
                            (
                                "checkpoint_hash",
                                Json::from(format!("{:016x}", e.checkpoint_hash)),
                            ),
                            (
                                "entries",
                                Json::Arr(
                                    entries
                                        .iter()
                                        .map(|(k, (vf, ifac))| {
                                            Json::Arr(vec![
                                                Json::from(format!("{k:016x}")),
                                                Json::from(*vf as u64),
                                                Json::from(*ifac as u64),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect();
                (
                    with_id(
                        id,
                        vec![("ok", Json::from(true)), ("sections", Json::Arr(sections))],
                    ),
                    true,
                )
            }
            Some("report") => {
                // Online-learning feedback: a client echoes the `key`
                // from a vectorize response together with the reward it
                // measured for that decision. See `learn` module docs.
                let Some(ls) = &self.learn else {
                    return fail(id, "learning is not enabled on this hub".into());
                };
                let refuse = |e: String| {
                    ls.report_errors.inc();
                    fail(id, e)
                };
                let Some(model) = v.get("model").and_then(Json::as_str) else {
                    return refuse("report requires a `model` field".into());
                };
                let Some(key) = v
                    .get("key")
                    .and_then(Json::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                else {
                    return refuse("report requires a hex `key` field".into());
                };
                let Some(reward) = v
                    .get("reward")
                    .and_then(Json::as_f64)
                    .filter(|r| r.is_finite())
                else {
                    return refuse("report requires a finite numeric `reward`".into());
                };
                let Some(entry) = self.registry.get(model) else {
                    return refuse(HubError::UnknownModel(model.to_string()).to_string());
                };
                // Resolve the key to the decided sample: warm set first,
                // then re-extraction from a client-provided `source`
                // (the warm set is bounded, so old keys age out of it).
                let sample = entry.handle.lookup_sample(key).or_else(|| {
                    let src = v.get("source").and_then(Json::as_str)?;
                    let embed = entry.handle.embed_config();
                    nvc_embed::extract_loop_samples(src, &embed)
                        .ok()?
                        .into_iter()
                        .map(|site| site.sample)
                        .find(|s| nvc_serve::sample_key(s) == key)
                });
                let Some(sample) = sample else {
                    return refuse(format!(
                        "unknown report key {key:016x} (include `source` to re-correlate)"
                    ));
                };
                // The decision the reward belongs to: cache probe, then
                // the deterministic decide path recomputes it.
                let decision = entry
                    .handle
                    .lookup_decision(key)
                    .or_else(|| entry.handle.decide_sample(&sample).ok().map(|(p, _)| p));
                let Some((vf_idx, if_idx)) = decision else {
                    return refuse(format!("no decision available for key {key:016x}"));
                };
                ls.record(learn::ReportRecord {
                    model: entry.name.clone(),
                    checkpoint_hash: entry.checkpoint_hash,
                    key,
                    vf_idx,
                    if_idx,
                    reward,
                    sample,
                });
                (
                    with_id(
                        id,
                        vec![
                            ("ok", Json::from(true)),
                            ("recorded", Json::from(true)),
                            ("reports", Json::from(ls.reports.get())),
                        ],
                    ),
                    true,
                )
            }
            Some("reload") => {
                let Some(name) = v.get("model").and_then(Json::as_str) else {
                    return fail(id, "reload requires a `model` field".into());
                };
                let Some(path) = v.get("checkpoint").and_then(Json::as_str) else {
                    return fail(id, "reload requires a `checkpoint` field".into());
                };
                let weight = v.get("weight").and_then(Json::as_f64).map(|w| w as u32);
                match self.reload(name, path, weight) {
                    Ok(hash) => (
                        with_id(
                            id,
                            vec![
                                ("ok", Json::from(true)),
                                ("reloaded", Json::from(name)),
                                ("checkpoint_hash", Json::from(format!("{hash:016x}"))),
                            ],
                        ),
                        true,
                    ),
                    Err(e) => fail(id, e.to_string()),
                }
            }
            Some("vectorize") | None => {
                let Some(source) = v.get("source").and_then(Json::as_str) else {
                    return fail(id, "missing `source` field".into());
                };
                let explicit = v.get("model").and_then(Json::as_str);
                let route = v.get("route").and_then(Json::as_str);
                let entry = match self
                    .registry
                    .route(explicit, Self::routing_key(route, source))
                {
                    Ok(e) => e,
                    Err(e) => return fail(id, e.to_string()),
                };
                // Guard-decremented so the gauge stays correct even if
                // the model panics mid-request (the transport catches
                // or unwinds through here either way).
                struct InFlight<'a>(&'a nvc_obs::Gauge);
                impl Drop for InFlight<'_> {
                    fn drop(&mut self) {
                        self.0.dec();
                    }
                }
                entry.in_flight.inc();
                let _in_flight = InFlight(&entry.in_flight);
                let outcome = entry.handle.vectorize(source);
                match outcome {
                    Ok(out) => (
                        with_id(
                            id,
                            vec![
                                ("ok", Json::from(true)),
                                ("model", Json::from(entry.name.as_str())),
                                // Version stamp: fleet clients verify
                                // this against the registry's ad, which
                                // is what makes wrong-version decisions
                                // impossible to accept.
                                (
                                    "checkpoint_hash",
                                    Json::from(format!("{:016x}", entry.checkpoint_hash)),
                                ),
                                ("source", Json::from(out.source)),
                                (
                                    "loops",
                                    Json::Arr(out.loops.iter().map(LoopReport::to_json).collect()),
                                ),
                                ("latency_us", Json::from(out.latency_us)),
                            ],
                        ),
                        true,
                    ),
                    Err(e) => fail(id, e.to_string()),
                }
            }
            Some(other) => fail(id, format!("unknown op `{other}`")),
        }
    }

    /// Hot-swaps `name` to the checkpoint at `path` via the loader.
    /// Returns the new checkpoint hash. The replaced entry keeps serving
    /// its in-flight requests and is drained when the last one finishes.
    ///
    /// # Errors
    ///
    /// [`HubError::NoLoader`] without a loader, [`HubError::Loader`] on
    /// load failure, [`HubError::UnknownModel`] for an unknown name.
    pub fn reload(&self, name: &str, path: &str, weight: Option<u32>) -> Result<u64, HubError> {
        let loader = self.loader.as_ref().ok_or(HubError::NoLoader)?;
        let old = self
            .registry
            .get(name)
            .ok_or_else(|| HubError::UnknownModel(name.to_string()))?;
        let (model, hash) = loader(path).map_err(HubError::Loader)?;
        // Snapshot *before* the swap: the outgoing model's decisions are
        // about to leave the registry, and "persist only on clean
        // shutdown" would lose them entirely if the process dies while
        // the new checkpoint serves. Best-effort — a full disk must not
        // block the reload itself.
        if let Err(e) = self.persist_cache() {
            eprintln!("nvc hub: pre-reload cache persistence failed: {e}");
        }
        let displaced = self.registry.reload(ModelSpec {
            name: name.to_string(),
            weight: weight.unwrap_or(old.weight),
            checkpoint_hash: hash,
            model,
        })?;
        // Warm the fresh checkpoint in the background: replay the keys
        // the displaced handle saw as shadow traffic, so the first real
        // requests hit a heated cache instead of a cold model. The
        // replay thread owns the displaced Arc; its pool drains when the
        // replay (and any in-flight requests) finish with it.
        if let Some(new_entry) = self.registry.get(name) {
            let samples = displaced.handle.warm_samples();
            if !samples.is_empty() {
                let spawned = std::thread::Builder::new()
                    .name("nvc-hub-warmup".to_string())
                    .spawn(move || {
                        let _displaced = displaced;
                        new_entry.handle.warm_replay(&samples);
                    });
                if let Err(e) = spawned {
                    eprintln!("nvc hub: warmup thread failed to start: {e}");
                }
            }
        }
        Ok(hash)
    }

    /// Warm-join gossip: pulls `cache_export` from the first reachable
    /// peer and absorbs it — sections whose checkpoint hash matches a
    /// registered model seed that model's LRU, and *every* section
    /// lands in the shared store (content addressing makes entries from
    /// any checkpoint safe to hold). Returns how many entries were
    /// absorbed.
    ///
    /// # Errors
    ///
    /// [`HubError::Io`] when no peer could be reached or answered a
    /// usable export.
    pub fn warm_from_peers(&self, peers: &[String]) -> Result<usize, HubError> {
        use std::io::{BufRead, BufReader, Write};
        let mut last_err = String::from("no peers given");
        for peer in peers {
            let attempt = (|| -> Result<usize, String> {
                let mut stream =
                    std::net::TcpStream::connect(peer.as_str()).map_err(|e| e.to_string())?;
                let _ = stream.set_nodelay(true);
                stream
                    .write_all(b"{\"op\":\"cache_export\"}\n")
                    .and_then(|()| stream.flush())
                    .map_err(|e| e.to_string())?;
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                reader.read_line(&mut line).map_err(|e| e.to_string())?;
                let v = Json::parse(line.trim()).map_err(|e| format!("bad export: {e}"))?;
                if v.get("ok").and_then(Json::as_bool) != Some(true) {
                    return Err("peer rejected cache_export".to_string());
                }
                let mut absorbed = 0usize;
                for section in v.get("sections").and_then(Json::as_array).unwrap_or(&[]) {
                    let Some(hash) = section
                        .get("checkpoint_hash")
                        .and_then(Json::as_str)
                        .and_then(|s| u64::from_str_radix(s, 16).ok())
                    else {
                        continue;
                    };
                    let mut entries: Vec<(u64, (usize, usize))> = Vec::new();
                    for e in section
                        .get("entries")
                        .and_then(Json::as_array)
                        .unwrap_or(&[])
                    {
                        let Some(items) = e.as_array() else { continue };
                        let (Some(key), Some(vf), Some(ifac)) = (
                            items
                                .first()
                                .and_then(Json::as_str)
                                .and_then(|s| u64::from_str_radix(s, 16).ok()),
                            items.get(1).and_then(Json::as_f64),
                            items.get(2).and_then(Json::as_f64),
                        ) else {
                            continue;
                        };
                        entries.push((key, (vf as usize, ifac as usize)));
                    }
                    if entries.is_empty() {
                        continue;
                    }
                    // Hash-matching model: seed its private LRU directly.
                    let model = section.get("model").and_then(Json::as_str).unwrap_or("");
                    let mut taken = 0usize;
                    if let Some(entry) = self.registry.get(model) {
                        if entry.checkpoint_hash == hash {
                            taken = entry.handle.restore_cache(entries.iter().copied());
                        }
                    }
                    // Shared store: always valid under content addressing.
                    if let Some(store) = &self.shared {
                        taken = taken.max(store.absorb(hash, entries.iter().copied()));
                    }
                    absorbed += taken;
                }
                Ok(absorbed)
            })();
            match attempt {
                Ok(n) => {
                    self.transfers.inc();
                    self.transfer_entries.add(n as u64);
                    return Ok(n);
                }
                Err(e) => last_err = format!("{peer}: {e}"),
            }
        }
        Err(HubError::Io(format!("warm-join failed: {last_err}")))
    }
}

impl Drop for Hub {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use nvc_embed::{EmbedConfig, PathSample};
    use nvc_machine::TargetConfig;

    /// Deterministic stub model: decisions are a function of the sample
    /// and a per-model tag, so two stubs with different tags are
    /// distinguishable (stand-ins for different checkpoints).
    pub(crate) struct StubModel {
        embed: EmbedConfig,
        target: TargetConfig,
        tag: usize,
    }

    impl StubModel {
        pub(crate) fn new(tag: usize) -> Self {
            StubModel {
                embed: EmbedConfig::fast(),
                target: TargetConfig::i7_8559u(),
                tag,
            }
        }
    }

    impl DecisionModel for StubModel {
        fn embed_config(&self) -> &EmbedConfig {
            &self.embed
        }

        fn target(&self) -> &TargetConfig {
            &self.target
        }

        fn decide_batch(&self, samples: &[&PathSample]) -> Vec<(usize, usize)> {
            let dims = (
                self.target.vf_candidates().len(),
                self.target.if_candidates().len(),
            );
            samples
                .iter()
                .map(|s| ((s.len() + self.tag) % dims.0, self.tag % dims.1))
                .collect()
        }
    }

    pub(crate) fn stub_spec(name: &str, weight: u32, tag: usize) -> ModelSpec {
        ModelSpec {
            name: name.to_string(),
            weight,
            checkpoint_hash: tag as u64,
            model: Arc::new(StubModel::new(tag)),
        }
    }

    pub(crate) const SRC: &str = "float a[512]; float b[512];
void f(int n) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] * 2.0;
    }
}";

    fn hub_with(models: &[(&str, u32, usize)]) -> Hub {
        let hub = Hub::new(HubConfig::default(), ServeConfig::default().with_workers(1));
        for &(name, weight, tag) in models {
            hub.register(stub_spec(name, weight, tag)).unwrap();
        }
        hub
    }

    #[test]
    fn ping_metrics_and_unknown_op() {
        let hub = hub_with(&[("m", 1, 0)]);
        let (resp, keep) = hub.handle_line(r#"{"op":"ping","id":"p"}"#);
        assert!(keep);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("pong").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("id").unwrap().as_str(), Some("p"));
        assert!(v.get("uptime_us").unwrap().as_f64().is_some());

        let (resp, _) = hub.handle_line(r#"{"op":"metrics"}"#);
        let v = Json::parse(&resp).unwrap();
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("requests").unwrap().as_f64(), Some(2.0));
        let m = stats.get("models").unwrap().get("m").unwrap();
        assert_eq!(m.get("weight").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            m.get("checkpoint_hash").unwrap().as_str(),
            Some("0000000000000000")
        );
        assert!(m.get("cache").unwrap().get("entries_restored").is_some());
        // Observability satellite: connection gauge + per-model in-flight.
        assert_eq!(stats.get("active_connections").unwrap().as_f64(), Some(0.0));
        assert_eq!(m.get("in_flight").unwrap().as_f64(), Some(0.0));

        let (resp, keep) = hub.handle_line(r#"{"op":"explode","id":"x"}"#);
        assert!(keep);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("id").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn vectorize_routes_and_reports_model() {
        let hub = hub_with(&[("a", 1, 0), ("b", 0, 3)]);
        let req = obj(vec![
            ("op", Json::from("vectorize")),
            ("source", Json::from(SRC)),
            ("model", Json::from("b")),
        ])
        .render();
        let (resp, _) = hub.handle_line(&req);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        assert_eq!(v.get("model").unwrap().as_str(), Some("b"));
        assert_eq!(v.get("loops").unwrap().as_array().unwrap().len(), 1);

        // Weight 0 means b never takes un-pinned traffic.
        let unpinned = obj(vec![("source", Json::from(SRC))]).render();
        let (resp, _) = hub.handle_line(&unpinned);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("model").unwrap().as_str(), Some("a"));

        let bad = obj(vec![
            ("source", Json::from(SRC)),
            ("model", Json::from("ghost")),
        ])
        .render();
        let (resp, _) = hub.handle_line(&bad);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn route_field_pins_the_split_deterministically() {
        let hub = hub_with(&[("a", 1, 0), ("b", 1, 3)]);
        let req = |route: &str| {
            obj(vec![
                ("source", Json::from(SRC)),
                ("route", Json::from(route)),
            ])
            .render()
        };
        // The same route key always lands on the same model…
        let first = Json::parse(&hub.handle_line(&req("client-1")).0)
            .unwrap()
            .get("model")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        for _ in 0..5 {
            let again = hub.handle_line(&req("client-1")).0;
            assert_eq!(
                Json::parse(&again).unwrap().get("model").unwrap().as_str(),
                Some(first.as_str())
            );
        }
        // …and different keys spread across both models.
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let resp = hub.handle_line(&req(&format!("client-{i}"))).0;
            seen.insert(
                Json::parse(&resp)
                    .unwrap()
                    .get("model")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string(),
            );
        }
        assert_eq!(seen.len(), 2, "1:1 split must reach both models");
    }

    #[test]
    fn shutdown_verb_acks_then_flags_shutdown() {
        let hub = hub_with(&[("m", 1, 0)]);
        let (resp, keep) = hub.handle_line(r#"{"op":"shutdown","id":"bye"}"#);
        assert!(!keep);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("shutdown").unwrap().as_bool(), Some(true));
        // handle_line only flags; the caller (connection thread, daemon
        // loop) runs the drain after writing the ack.
        assert!(hub.is_shutting_down());
        hub.shutdown();
    }

    #[test]
    fn reload_without_loader_is_an_error() {
        let hub = hub_with(&[("m", 1, 0)]);
        let (resp, _) = hub.handle_line(r#"{"op":"reload","model":"m","checkpoint":"x.ckpt"}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert!(v.get("error").unwrap().as_str().unwrap().contains("loader"));
    }

    #[test]
    fn reload_swaps_model_and_flushes_nothing_else() {
        let hub = Hub::new(HubConfig::default(), ServeConfig::default().with_workers(1))
            .with_loader(Box::new(|path| {
                let tag: usize = path.parse().map_err(|_| format!("bad path {path}"))?;
                Ok((
                    Arc::new(StubModel::new(tag)) as Arc<dyn DecisionModel>,
                    tag as u64,
                ))
            }));
        hub.register(stub_spec("m", 2, 0)).unwrap();
        let vec_req = obj(vec![("source", Json::from(SRC))]).render();
        let before = Json::parse(&hub.handle_line(&vec_req).0).unwrap();

        let (resp, _) = hub.handle_line(r#"{"op":"reload","model":"m","checkpoint":"3"}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        assert_eq!(v.get("reloaded").unwrap().as_str(), Some("m"));
        let entry = hub.registry().get("m").unwrap();
        assert_eq!(entry.checkpoint_hash, 3);
        assert_eq!(entry.weight, 2, "reload keeps the old weight by default");

        // The new model really answers (tag 3 shifts the decision).
        let after = Json::parse(&hub.handle_line(&vec_req).0).unwrap();
        let vf = |v: &Json| {
            v.get("loops").unwrap().as_array().unwrap()[0]
                .get("vf")
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert_ne!(vf(&before), vf(&after), "reload must change decisions");

        // Unknown model still errors.
        let (resp, _) = hub.handle_line(r#"{"op":"reload","model":"nope","checkpoint":"3"}"#);
        assert_eq!(
            Json::parse(&resp).unwrap().get("ok").unwrap().as_bool(),
            Some(false)
        );
    }

    #[test]
    fn persist_restore_roundtrip_with_version_check() {
        let dir = std::env::temp_dir().join(format!("nvc-hub-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.nvc").to_string_lossy().to_string();
        let cfg = HubConfig::default().with_cache_path(path.clone());

        // Warm a hub, shut it down: the cache lands on disk.
        let hub = Hub::new(cfg.clone(), ServeConfig::default().with_workers(1));
        hub.register(stub_spec("m", 1, 0)).unwrap();
        let vec_req = obj(vec![("source", Json::from(SRC))]).render();
        let first = Json::parse(&hub.handle_line(&vec_req).0).unwrap();
        hub.shutdown();
        drop(hub);

        // Same checkpoint: entries restore and serve as hits.
        let hub2 = Hub::new(cfg.clone(), ServeConfig::default().with_workers(1));
        hub2.register(stub_spec("m", 1, 0)).unwrap();
        hub2.restore_cache().unwrap();
        let again = Json::parse(&hub2.handle_line(&vec_req).0).unwrap();
        assert_eq!(
            again.get("source").unwrap().as_str(),
            first.get("source").unwrap().as_str()
        );
        let loops = again.get("loops").unwrap().as_array().unwrap();
        assert_eq!(
            loops[0].get("cached").unwrap().as_bool(),
            Some(true),
            "restored entry must serve as a hit"
        );
        let m = hub2.registry().get("m").unwrap().handle.metrics();
        assert!(m.entries_restored > 0);
        assert_eq!(m.entries_invalidated_by_version, 0);
        drop(hub2);

        // Different checkpoint (tag 1 → different hash): entries are
        // invalidated, the request recomputes.
        let hub3 = Hub::new(cfg, ServeConfig::default().with_workers(1));
        hub3.register(stub_spec("m", 1, 1)).unwrap();
        hub3.restore_cache().unwrap();
        let recomputed = Json::parse(&hub3.handle_line(&vec_req).0).unwrap();
        let loops = recomputed.get("loops").unwrap().as_array().unwrap();
        assert_eq!(
            loops[0].get("cached").unwrap().as_bool(),
            Some(false),
            "stale snapshot must not serve"
        );
        let m = hub3.registry().get("m").unwrap().handle.metrics();
        assert_eq!(m.entries_restored, 0);
        assert!(m.entries_invalidated_by_version > 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_cache_file_is_a_cold_start() {
        let cfg = HubConfig::default().with_cache_path("/nonexistent/dir/cache.nvc");
        let hub = Hub::new(cfg, ServeConfig::default().with_workers(1));
        hub.register(stub_spec("m", 1, 0)).unwrap();
        assert!(hub.restore_cache().is_ok());
    }

    fn cached_flags(v: &Json) -> Vec<bool> {
        v.get("loops")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|l| l.get("cached").unwrap().as_bool().unwrap())
            .collect()
    }

    #[test]
    fn shared_store_spans_ab_sides_of_one_checkpoint() {
        // Two registry entries serving the *same* checkpoint (an A/B
        // split over one model, e.g. to compare serve configs) share
        // every decision through the content store; a third entry on a
        // different checkpoint shares nothing.
        let store = Arc::new(nvc_fleet::ContentStore::default());
        let hub = Hub::new(HubConfig::default(), ServeConfig::default().with_workers(1))
            .with_shared_store(Arc::clone(&store));
        hub.register(stub_spec("a", 1, 5)).unwrap();
        hub.register(stub_spec("b", 1, 5)).unwrap(); // same hash as a
        hub.register(stub_spec("c", 1, 9)).unwrap(); // different hash
        let req = |model: &str| {
            obj(vec![
                ("source", Json::from(SRC)),
                ("model", Json::from(model)),
            ])
            .render()
        };
        let first = Json::parse(&hub.handle_line(&req("a")).0).unwrap();
        assert_eq!(cached_flags(&first), vec![false]);
        assert_eq!(
            first.get("checkpoint_hash").unwrap().as_str(),
            Some("0000000000000005"),
            "vectorize responses carry the version stamp"
        );

        // Same checkpoint, different entry: served from the shared
        // store without touching b's model, bitwise-equal output.
        let via_b = Json::parse(&hub.handle_line(&req("b")).0).unwrap();
        assert_eq!(cached_flags(&via_b), vec![true]);
        assert_eq!(
            via_b.get("source").unwrap().as_str(),
            first.get("source").unwrap().as_str()
        );

        // Different checkpoint: must compute its own decision.
        let via_c = Json::parse(&hub.handle_line(&req("c")).0).unwrap();
        assert_eq!(cached_flags(&via_c), vec![false]);
        assert!(store.stats().hits > 0);
    }

    #[test]
    fn reload_persists_the_outgoing_cache_and_warms_the_incoming_model() {
        let dir = std::env::temp_dir().join(format!("nvc-hub-reload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.nvc").to_string_lossy().to_string();
        let hub = Hub::new(
            HubConfig::default().with_cache_path(path.clone()),
            ServeConfig::default().with_workers(1),
        )
        .with_loader(Box::new(|path| {
            let tag: usize = path.parse().map_err(|_| format!("bad path {path}"))?;
            Ok((
                Arc::new(StubModel::new(tag)) as Arc<dyn DecisionModel>,
                tag as u64,
            ))
        }));
        hub.register(stub_spec("m", 1, 0)).unwrap();
        let vec_req = obj(vec![("source", Json::from(SRC))]).render();
        hub.handle_line(&vec_req);

        let (resp, _) = hub.handle_line(r#"{"op":"reload","model":"m","checkpoint":"3"}"#);
        assert_eq!(
            Json::parse(&resp).unwrap().get("ok").unwrap().as_bool(),
            Some(true),
            "{resp}"
        );

        // Satellite: the snapshot on disk was written *before* the swap
        // — it still carries the displaced checkpoint's section, with
        // entries, even though no shutdown has happened.
        let text = std::fs::read_to_string(&path).expect("pre-reload snapshot must exist");
        let sections = persist::parse(&text).unwrap();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].checkpoint_hash, 0, "old checkpoint persisted");
        assert!(!sections[0].entries.is_empty());

        // Satellite: the displaced handle's warm keys replay against
        // the new checkpoint in the background.
        let entry = hub.registry().get("m").unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while entry.handle.metrics().warmup_replayed == 0 {
            assert!(Instant::now() < deadline, "warmup never replayed");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        // The replayed key now serves as a hit under the *new* model.
        let after = Json::parse(&hub.handle_line(&vec_req).0).unwrap();
        assert_eq!(cached_flags(&after), vec![true]);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abort_skips_the_final_persist() {
        let dir = std::env::temp_dir().join(format!("nvc-hub-abort-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.nvc").to_string_lossy().to_string();
        let hub = Hub::new(
            HubConfig::default().with_cache_path(path.clone()),
            ServeConfig::default().with_workers(1),
        );
        hub.register(stub_spec("m", 1, 0)).unwrap();
        hub.handle_line(&obj(vec![("source", Json::from(SRC))]).render());
        hub.abort();
        drop(hub); // Drop::shutdown must respect the abort
        assert!(
            !std::path::Path::new(&path).exists(),
            "abort must not persist the cache"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
