//! TCP transports for the hub, selected by
//! [`HubConfig::transport`](crate::HubConfig):
//!
//! * [`HubTransport::Event`](crate::HubTransport::Event) (default) — a
//!   single selector thread drives every connection nonblocking via
//!   the vendored `polling` crate, with a small worker pool executing
//!   requests (see [`crate::event`]). Idle connections cost zero CPU.
//! * [`HubTransport::Threads`](crate::HubTransport::Threads) — the
//!   original one-thread-per-connection loop, kept for parity testing
//!   against the event loop. Connections and the accept loop poll
//!   [`Hub::is_shutting_down`] at short intervals; partial lines live
//!   in a per-connection buffer so a read timeout mid-line never drops
//!   bytes.
//!
//! Under either transport, a `shutdown` verb from *any* client
//! quiesces the whole hub: the acceptor stops, idle connections close,
//! models drain, and the cache persists.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::{Hub, HubTransport};

/// The running backend behind a [`HubHandle`].
enum Transport {
    Threads {
        accept: Mutex<Option<JoinHandle<()>>>,
        conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    },
    Event(crate::event::EventDriver),
}

/// A running hub server (either transport). Dropping the handle shuts
/// the hub down (drain + persist) and joins every thread.
pub struct HubHandle {
    hub: Arc<Hub>,
    addr: SocketAddr,
    transport: Transport,
    /// The periodic cache checkpointer (crash-loss bound), when
    /// `cache_checkpoint_secs` and a cache path are both configured.
    checkpointer: Mutex<Option<JoinHandle<()>>>,
}

/// Spawns the background cache checkpointer when configured: every
/// `cache_checkpoint_secs` the full cache image is rewritten through
/// the same temp-file + rename path the shutdown persist uses, so a
/// crash (or [`HubHandle::abort`]) loses at most one interval of
/// decisions.
fn spawn_checkpointer(hub: &Arc<Hub>) -> Option<JoinHandle<()>> {
    let interval_secs = hub.config().cache_checkpoint_secs;
    if interval_secs == 0 || hub.config().cache_path.is_none() {
        return None;
    }
    let hub = Arc::clone(hub);
    let interval = Duration::from_secs(interval_secs);
    Some(
        std::thread::Builder::new()
            .name("nvc-hub-checkpoint".to_string())
            .spawn(move || loop {
                // Sleep in short steps so shutdown is noticed promptly.
                let mut remaining = interval;
                while !remaining.is_zero() {
                    if hub.is_shutting_down() {
                        return;
                    }
                    let step = remaining.min(Duration::from_millis(100));
                    std::thread::sleep(step);
                    remaining = remaining.saturating_sub(step);
                }
                if hub.is_shutting_down() {
                    return;
                }
                match hub.persist_cache() {
                    Ok(()) => hub.cache_checkpoints.inc(),
                    Err(e) => eprintln!("nvc hub: cache checkpoint failed (will retry): {e}"),
                }
            })
            .expect("spawn hub checkpoint thread"),
    )
}

/// Binds `hub.config().listen` and starts serving.
///
/// # Errors
///
/// Returns the bind error (address in use, bad address syntax, …).
pub fn serve_tcp(hub: Arc<Hub>) -> std::io::Result<HubHandle> {
    let listener = TcpListener::bind(&hub.config().listen)?;
    serve_on(hub, listener)
}

/// Starts serving on an already-bound listener (tests bind port 0 and
/// read the ephemeral address back).
///
/// # Errors
///
/// Returns an error when the listener cannot report its local address
/// or switch to nonblocking mode.
pub fn serve_on(hub: Arc<Hub>, listener: TcpListener) -> std::io::Result<HubHandle> {
    let addr = listener.local_addr()?;
    let checkpointer = Mutex::new(spawn_checkpointer(&hub));
    if matches!(hub.config().transport, HubTransport::Event) {
        let driver = crate::event::serve(Arc::clone(&hub), listener)?;
        return Ok(HubHandle {
            hub,
            addr,
            transport: Transport::Event(driver),
            checkpointer,
        });
    }
    // Thread-per-connection fallback. Nonblocking accept + poll: the
    // acceptor must notice shutdown initiated by a connection thread.
    listener.set_nonblocking(true)?;
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let hub = Arc::clone(&hub);
        let conns = Arc::clone(&conns);
        let poll = Duration::from_millis(hub.config().accept_poll_ms.max(1));
        std::thread::Builder::new()
            .name("nvc-hub-accept".to_string())
            .spawn(move || loop {
                if hub.is_shutting_down() {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        hub.connections.inc();
                        let hub = Arc::clone(&hub);
                        let worker = std::thread::Builder::new()
                            .name("nvc-hub-conn".to_string())
                            .spawn(move || serve_connection(&hub, stream))
                            .expect("spawn hub connection thread");
                        let mut conns = conns.lock();
                        // Reap finished connections so the list does not
                        // grow unboundedly on a long-lived hub.
                        conns.retain(|c: &JoinHandle<()>| !c.is_finished());
                        conns.push(worker);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(poll);
                    }
                    Err(e) => {
                        // Transient accept failures (ECONNABORTED when a
                        // client resets mid-handshake, EINTR, fd
                        // exhaustion) must not silently kill the
                        // acceptor — that would leave a healthy-looking
                        // hub that refuses every new connection. Log,
                        // back off one poll interval, keep accepting.
                        eprintln!("nvc hub: accept failed (retrying): {e}");
                        std::thread::sleep(poll);
                    }
                }
            })
            .expect("spawn hub accept thread")
    };
    Ok(HubHandle {
        hub,
        addr,
        transport: Transport::Threads {
            accept: Mutex::new(Some(accept)),
            conns,
        },
        checkpointer,
    })
}

/// One connection: buffer bytes, answer complete lines, exit on EOF,
/// write failure, protocol shutdown, or hub shutdown.
fn serve_connection(hub: &Hub, mut stream: TcpStream) {
    hub.active_connections.inc();
    // Decrement on *every* exit path (EOF, write failure, shutdown).
    struct ConnGuard<'a>(&'a Hub);
    impl Drop for ConnGuard<'_> {
        fn drop(&mut self) {
            self.0.active_connections.dec();
        }
    }
    let _conn = ConnGuard(hub);
    let poll = Duration::from_millis(hub.config().conn_poll_ms.max(1));
    let _ = stream.set_read_timeout(Some(poll));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        // Answer every complete line already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            // The hub/serve boundary: one trace id per protocol line,
            // covering handle_line *and* the response write, so the
            // tcp_write span lands under the request's trace.
            let _trace = if nvc_obs::tracing_enabled() {
                Some(nvc_obs::trace_scope(nvc_obs::next_trace_id()))
            } else {
                None
            };
            let (response, keep_going) = hub.handle_line(line);
            let wrote = {
                let _span = nvc_obs::span("tcp_write");
                stream
                    .write_all(response.as_bytes())
                    .and_then(|()| stream.write_all(b"\n"))
                    .and_then(|()| stream.flush())
            };
            if wrote.is_err() {
                return;
            }
            if !keep_going {
                // The shutdown verb acks first (written above), *then*
                // the drain + cache persist runs — a client with a
                // short read timeout sees its ack even when draining a
                // busy hub takes a while.
                hub.shutdown();
                return;
            }
        }
        if hub.is_shutting_down() {
            return;
        }
        let t_read = std::time::Instant::now();
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => {
                // Only reads that delivered bytes are worth a span —
                // recording every 50 ms poll tick would flood the ring.
                nvc_obs::record_span("tcp_read", 0, t_read, t_read.elapsed());
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // poll tick: loop re-checks the shutdown flag
            }
            Err(_) => return,
        }
    }
}

impl HubHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hub being served.
    pub fn hub(&self) -> &Arc<Hub> {
        &self.hub
    }

    /// Shuts the whole tier down: hub drain + cache persist, then joins
    /// every transport thread. Idempotent.
    pub fn shutdown(&self) {
        self.hub.shutdown();
        self.join_threads();
    }

    /// Crash simulation ([`Hub::abort`] plus thread teardown): every
    /// loop exits but the final cache persist is *skipped* — only what
    /// the periodic checkpointer already wrote survives, exactly like a
    /// process kill. Resilience tests use this to measure crash loss.
    pub fn abort(&self) {
        self.hub.abort();
        self.join_threads();
    }

    fn join_threads(&self) {
        if let Some(ckpt) = self.checkpointer.lock().take() {
            let _ = ckpt.join();
        }
        match &self.transport {
            Transport::Threads { accept, conns } => {
                if let Some(accept) = accept.lock().take() {
                    let _ = accept.join();
                }
                let conns: Vec<JoinHandle<()>> = conns.lock().drain(..).collect();
                for c in conns {
                    let _ = c.join();
                }
            }
            Transport::Event(driver) => driver.join(),
        }
    }
}

impl Drop for HubHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{stub_spec, SRC};
    use crate::HubConfig;
    use nvc_serve::{Json, ServeConfig};
    use std::io::{BufRead, BufReader};

    fn start_with(models: &[(&str, u32, usize)], transport: HubTransport) -> HubHandle {
        let cfg = HubConfig::default()
            .with_listen("127.0.0.1:0")
            .with_transport(transport);
        let hub = Hub::new(cfg, ServeConfig::default().with_workers(1));
        for &(name, weight, tag) in models {
            hub.register(stub_spec(name, weight, tag)).unwrap();
        }
        serve_tcp(Arc::new(hub)).expect("bind loopback")
    }

    /// Default transport (event loop).
    fn start(models: &[(&str, u32, usize)]) -> HubHandle {
        start_with(models, HubTransport::Event)
    }

    /// One request/response over a fresh connection.
    fn roundtrip(addr: SocketAddr, line: &str) -> Json {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        Json::parse(response.trim()).expect("parse response")
    }

    #[test]
    fn tcp_ping_and_vectorize() {
        let handle = start(&[("m", 1, 0)]);
        let v = roundtrip(handle.addr(), r#"{"op":"ping"}"#);
        assert_eq!(v.get("pong").unwrap().as_bool(), Some(true));

        let req = nvc_serve::json::obj(vec![("source", Json::from(SRC))]).render();
        let v = roundtrip(handle.addr(), &req);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("model").unwrap().as_str(), Some("m"));
        assert!(v
            .get("source")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("#pragma clang loop"));
    }

    #[test]
    fn one_connection_many_requests_and_partial_writes() {
        let handle = start(&[("m", 1, 0)]);
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Dribble a request in two writes (split mid-JSON) to prove the
        // line buffer survives read-timeout boundaries.
        let req = nvc_serve::json::obj(vec![("source", Json::from(SRC))]).render();
        let (head, tail) = req.split_at(req.len() / 2);
        stream.write_all(head.as_bytes()).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(120)); // > conn_poll_ms
        stream.write_all(tail.as_bytes()).unwrap();
        stream.write_all(b"\n{\"op\":\"ping\"}\n").unwrap();
        stream.flush().unwrap();

        let mut reader = BufReader::new(stream);
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        assert_eq!(
            Json::parse(first.trim())
                .unwrap()
                .get("ok")
                .unwrap()
                .as_bool(),
            Some(true),
            "split request must reassemble: {first}"
        );
        let mut second = String::new();
        reader.read_line(&mut second).unwrap();
        assert_eq!(
            Json::parse(second.trim())
                .unwrap()
                .get("pong")
                .unwrap()
                .as_bool(),
            Some(true)
        );
    }

    #[test]
    fn shutdown_verb_quiesces_the_server() {
        for transport in [HubTransport::Event, HubTransport::Threads] {
            let handle = start_with(&[("m", 1, 0)], transport);
            let v = roundtrip(handle.addr(), r#"{"op":"shutdown"}"#);
            assert_eq!(v.get("shutdown").unwrap().as_bool(), Some(true));
            handle.shutdown();
            assert!(handle.hub().is_shutting_down());
        }
    }

    #[test]
    fn event_and_threads_transports_answer_identically() {
        let ev = start_with(&[("m", 1, 7)], HubTransport::Event);
        let th = start_with(&[("m", 1, 7)], HubTransport::Threads);
        let req = nvc_serve::json::obj(vec![("source", Json::from(SRC))]).render();
        for line in [r#"{"op":"ping"}"#, req.as_str()] {
            let a = roundtrip(ev.addr(), line);
            let b = roundtrip(th.addr(), line);
            assert_eq!(
                a.get("ok").map(|v| v.render()),
                b.get("ok").map(|v| v.render())
            );
            assert_eq!(
                a.get("source").map(|v| v.render()),
                b.get("source").map(|v| v.render()),
                "both transports must emit bitwise-identical decisions"
            );
        }
    }

    /// A peer dripping one byte at a time must still get its response:
    /// partial lines survive arbitrarily many selector wakeups.
    #[test]
    fn slow_loris_single_byte_writes_reassemble() {
        let handle = start(&[("m", 1, 0)]);
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        for b in br#"{"op":"ping"}"#.iter().chain(b"\n") {
            stream.write_all(std::slice::from_ref(b)).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut reader = std::io::BufReader::new(stream);
        let mut response = String::new();
        std::io::BufRead::read_line(&mut reader, &mut response).unwrap();
        let v = Json::parse(response.trim()).unwrap();
        assert_eq!(v.get("pong").unwrap().as_bool(), Some(true));
    }

    /// A single line far larger than the read chunk (8 KiB) spans many
    /// reads; the buffer must grow and the line dispatch exactly once.
    #[test]
    fn giant_line_spanning_many_read_chunks() {
        let handle = start(&[("m", 1, 0)]);
        let pad = "x".repeat(64 * 1024);
        let line = format!(r#"{{"op":"ping","pad":"{pad}"}}"#);
        let v = roundtrip(handle.addr(), &line);
        assert_eq!(v.get("pong").unwrap().as_bool(), Some(true));
    }

    /// Two connections interleave partial writes; each must get its own
    /// answer (per-connection buffers never bleed into each other).
    #[test]
    fn interleaved_partial_writes_across_connections() {
        let handle = start(&[("m", 1, 0)]);
        let mut a = TcpStream::connect(handle.addr()).unwrap();
        let mut b = TcpStream::connect(handle.addr()).unwrap();
        let req = nvc_serve::json::obj(vec![("source", Json::from(SRC))]).render();
        let (head, tail) = req.split_at(req.len() / 2);
        a.write_all(head.as_bytes()).unwrap();
        b.write_all(br#"{"op":"pi"#).unwrap();
        a.flush().unwrap();
        b.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        a.write_all(tail.as_bytes()).unwrap();
        a.write_all(b"\n").unwrap();
        b.write_all(b"ng\"}\n").unwrap();
        let mut ra = std::io::BufReader::new(a);
        let mut rb = std::io::BufReader::new(b);
        let mut la = String::new();
        let mut lb = String::new();
        std::io::BufRead::read_line(&mut ra, &mut la).unwrap();
        std::io::BufRead::read_line(&mut rb, &mut lb).unwrap();
        assert_eq!(
            Json::parse(la.trim()).unwrap().get("ok").unwrap().as_bool(),
            Some(true),
            "conn A's split vectorize must reassemble: {la}"
        );
        assert_eq!(
            Json::parse(lb.trim())
                .unwrap()
                .get("pong")
                .unwrap()
                .as_bool(),
            Some(true),
            "conn B's split ping must reassemble: {lb}"
        );
    }

    /// Gossip transfer: a joining hub pulls a warm peer's cache image
    /// and serves the same sources as hits with bitwise-equal output.
    #[test]
    fn warm_from_peers_transfers_the_cache() {
        let warm = start(&[("m", 1, 7)]);
        let req = nvc_serve::json::obj(vec![("source", Json::from(SRC))]).render();
        let first = roundtrip(warm.addr(), &req);
        assert_eq!(first.get("ok").unwrap().as_bool(), Some(true));

        // The export verb itself carries the section.
        let export = roundtrip(warm.addr(), r#"{"op":"cache_export"}"#);
        let sections = export.get("sections").unwrap().as_array().unwrap();
        assert_eq!(sections.len(), 1);
        assert_eq!(
            sections[0].get("checkpoint_hash").unwrap().as_str(),
            Some("0000000000000007")
        );
        assert!(!sections[0]
            .get("entries")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());

        // A joining node with the same checkpoint absorbs it…
        let store = Arc::new(nvc_fleet::ContentStore::default());
        let joiner = Hub::new(
            HubConfig::default().with_listen("127.0.0.1:0"),
            ServeConfig::default().with_workers(1),
        )
        .with_shared_store(Arc::clone(&store));
        joiner.register(stub_spec("m", 1, 7)).unwrap();
        let n = joiner
            .warm_from_peers(&["127.0.0.1:1".to_string(), warm.addr().to_string()])
            .expect("dead first peer must fail over to the live one");
        assert!(n > 0, "transfer must absorb entries");
        assert!(store.len() > 0, "shared store holds the transfer");

        // …and serves the transferred decision as a hit, bitwise-equal.
        let (resp, _) = joiner.handle_line(&req);
        let v = Json::parse(&resp).unwrap();
        let loops = v.get("loops").unwrap().as_array().unwrap();
        assert_eq!(loops[0].get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(
            v.get("source").unwrap().as_str(),
            first.get("source").unwrap().as_str(),
            "gossip-transferred decisions must be bitwise-equal"
        );

        // A hash-mismatched joiner keeps entries only in the shared
        // store (content-addressed), never in the model's own LRU.
        let mismatched = Hub::new(
            HubConfig::default().with_listen("127.0.0.1:0"),
            ServeConfig::default().with_workers(1),
        );
        mismatched.register(stub_spec("m", 1, 8)).unwrap();
        mismatched.warm_from_peers(&[warm.addr().to_string()]).ok();
        let (resp, _) = mismatched.handle_line(&req);
        let v = Json::parse(&resp).unwrap();
        let loops = v.get("loops").unwrap().as_array().unwrap();
        assert_eq!(
            loops[0].get("cached").unwrap().as_bool(),
            Some(false),
            "wrong-version entries must never serve from the LRU"
        );
    }

    /// The periodic checkpointer bounds crash loss: after an abort (no
    /// final persist) the snapshot written mid-run is all that
    /// survives — and it is present.
    #[test]
    fn periodic_checkpoint_bounds_crash_loss() {
        let dir = std::env::temp_dir().join(format!("nvc-hub-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.nvc").to_string_lossy().to_string();
        let cfg = HubConfig::default()
            .with_listen("127.0.0.1:0")
            .with_cache_path(path.clone())
            .with_cache_checkpoint_secs(1);
        let hub = Hub::new(cfg, ServeConfig::default().with_workers(1));
        hub.register(stub_spec("m", 1, 0)).unwrap();
        let handle = serve_tcp(Arc::new(hub)).unwrap();
        let req = nvc_serve::json::obj(vec![("source", Json::from(SRC))]).render();
        roundtrip(handle.addr(), &req);

        // Wait for a checkpoint to land, then crash.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.hub().cache_checkpoints.get() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "checkpointer never fired"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        handle.abort();
        drop(handle);

        let text = std::fs::read_to_string(&path).expect("periodic snapshot must exist");
        let sections = crate::persist::parse(&text).unwrap();
        assert_eq!(sections.len(), 1);
        assert!(
            !sections[0].entries.is_empty(),
            "pre-crash decisions survive in the periodic snapshot"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Sockets dropped without any protocol goodbye must release the
    /// `active_connections` gauge — the selector observes EOF/error and
    /// decrements, not just the clean-close path.
    #[test]
    fn abruptly_dropped_sockets_release_the_gauge() {
        let handle = start(&[("m", 1, 0)]);
        let mut streams = Vec::new();
        for _ in 0..8 {
            let mut s = TcpStream::connect(handle.addr()).unwrap();
            // Prove the connection is fully established and registered.
            s.write_all(b"{\"op\":\"ping\"}\n").unwrap();
            let mut r = std::io::BufReader::new(s.try_clone().unwrap());
            let mut line = String::new();
            std::io::BufRead::read_line(&mut r, &mut line).unwrap();
            streams.push(s);
        }
        assert_eq!(handle.hub().active_connections.get(), 8);
        drop(streams); // no shutdown verb, no half-close dance
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handle.hub().active_connections.get() != 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "gauge stuck at {} after abrupt drops",
                handle.hub().active_connections.get()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}
