//! The model registry: named checkpoints behind per-model [`ServeHandle`]
//! pools, with deterministic routing and atomic hot-swap.
//!
//! Every registered model owns its own `ServeHandle` — its own decision
//! cache, batcher and worker pool — so a slow experimental checkpoint
//! cannot stall traffic routed to the production one, and cache entries
//! never leak across checkpoints (the per-model cache is what the
//! persistence layer versions by checkpoint hash).
//!
//! Routing precedence, per request:
//!
//! 1. an explicit `"model"` field names the entry directly;
//! 2. otherwise the request's routing key (a hash of its `"route"` field
//!    when present, else of the source text) lands in a **weighted A/B
//!    split** over every entry with a non-zero weight. The split is a
//!    pure function of the key, so a given client/loop always sees the
//!    same model between registry changes — decisions stay reproducible
//!    and per-model caches stay hot.
//!
//! [`ModelRegistry::reload`] replaces an entry atomically: requests that
//! already routed keep their `Arc` to the old entry (its worker pool
//! drains only when the last in-flight request drops it), while every
//! subsequent `route` sees the new checkpoint.

use std::sync::Arc;

use parking_lot::RwLock;

use nvc_serve::{DecisionModel, ServeConfig, ServeHandle, SharedDecisionStore};

use crate::HubError;

/// What a caller registers: a named, weighted, content-hashed model.
pub struct ModelSpec {
    /// Registry name (the wire protocol's `"model"` field).
    pub name: String,
    /// Relative share of un-pinned traffic (0 = explicit-only canary).
    pub weight: u32,
    /// Content hash of the checkpoint
    /// (`nvc_nn::serialize::checkpoint_hash`); versions the persistent
    /// cache.
    pub checkpoint_hash: u64,
    /// The model itself.
    pub model: Arc<dyn DecisionModel>,
}

/// A live registry entry: the spec plus its running serving pool.
pub struct ModelEntry {
    /// Registry name.
    pub name: String,
    /// Checkpoint content hash.
    pub checkpoint_hash: u64,
    /// Traffic weight.
    pub weight: u32,
    /// The model's private cache + batcher + workers.
    pub handle: ServeHandle,
    /// Requests currently inside this model's `vectorize` (the hub's
    /// `metrics` verb surfaces it per model).
    pub in_flight: nvc_obs::Gauge,
}

/// Named models with weighted routing and hot-swap.
pub struct ModelRegistry {
    entries: RwLock<Vec<Arc<ModelEntry>>>,
    serve_cfg: ServeConfig,
    /// Second-level decision store every started handle publishes to,
    /// content-addressed by checkpoint hash (see `nvc_fleet::store`).
    store: RwLock<Option<Arc<dyn SharedDecisionStore>>>,
}

impl ModelRegistry {
    /// An empty registry; every model registered later gets its own
    /// [`ServeHandle`] built from `serve_cfg`.
    pub fn new(serve_cfg: ServeConfig) -> Self {
        ModelRegistry {
            entries: RwLock::new(Vec::new()),
            serve_cfg,
            store: RwLock::new(None),
        }
    }

    /// Attaches the shared decision store. Only entries started *after*
    /// this call publish to it — attach before registering models.
    pub fn set_shared_store(&self, store: Arc<dyn SharedDecisionStore>) {
        *self.store.write() = Some(store);
    }

    fn start_entry(&self, spec: ModelSpec) -> Result<Arc<ModelEntry>, HubError> {
        // The persistence format is whitespace-delimited, so a name the
        // snapshot cannot round-trip must be rejected at registration —
        // not discovered as a corrupt cache file on the next restart.
        if spec.name.is_empty() || spec.name.chars().any(char::is_whitespace) {
            return Err(HubError::BadModelName(spec.name));
        }
        let shared = self
            .store
            .read()
            .as_ref()
            .map(|s| (spec.checkpoint_hash, Arc::clone(s)));
        Ok(Arc::new(ModelEntry {
            handle: ServeHandle::start_with_store(spec.model, self.serve_cfg.clone(), shared),
            name: spec.name,
            checkpoint_hash: spec.checkpoint_hash,
            weight: spec.weight,
            in_flight: nvc_obs::Gauge::default(),
        }))
    }

    /// Registers a new model.
    ///
    /// # Errors
    ///
    /// [`HubError::DuplicateModel`] when the name is taken (use
    /// [`ModelRegistry::reload`] to replace);
    /// [`HubError::BadModelName`] for a name the cache-snapshot format
    /// cannot represent.
    pub fn register(&self, spec: ModelSpec) -> Result<(), HubError> {
        let entry = self.start_entry(spec)?;
        let mut entries = self.entries.write();
        if entries.iter().any(|e| e.name == entry.name) {
            return Err(HubError::DuplicateModel(entry.name.clone()));
        }
        entries.push(entry);
        Ok(())
    }

    /// Atomically replaces the entry named `spec.name` and returns the
    /// displaced entry. In-flight requests holding the old `Arc` finish
    /// against the old model; new routes see the new one immediately.
    ///
    /// # Errors
    ///
    /// [`HubError::UnknownModel`] when no entry has that name.
    pub fn reload(&self, spec: ModelSpec) -> Result<Arc<ModelEntry>, HubError> {
        // Start the replacement's worker pool *before* taking the write
        // lock, so routing is never blocked behind model startup.
        let entry = self.start_entry(spec)?;
        let mut entries = self.entries.write();
        match entries.iter().position(|e| e.name == entry.name) {
            Some(i) => Ok(std::mem::replace(&mut entries[i], entry)),
            None => Err(HubError::UnknownModel(entry.name.clone())),
        }
    }

    /// Looks an entry up by name.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.entries.read().iter().find(|e| e.name == name).cloned()
    }

    /// Routes a request: explicit name first, else the weighted split on
    /// `routing_key`.
    ///
    /// # Errors
    ///
    /// [`HubError::UnknownModel`] for a bad explicit name,
    /// [`HubError::NoModels`] when the registry is empty.
    pub fn route(
        &self,
        explicit: Option<&str>,
        routing_key: u64,
    ) -> Result<Arc<ModelEntry>, HubError> {
        let entries = self.entries.read();
        if let Some(name) = explicit {
            return entries
                .iter()
                .find(|e| e.name == name)
                .cloned()
                .ok_or_else(|| HubError::UnknownModel(name.to_string()));
        }
        if entries.is_empty() {
            return Err(HubError::NoModels);
        }
        let total: u64 = entries.iter().map(|e| u64::from(e.weight)).sum();
        if total == 0 {
            // All-canary registry: fall back to the first entry so
            // un-pinned traffic still gets answers.
            return Ok(Arc::clone(&entries[0]));
        }
        // Spread the key before reducing mod total: sequential keys
        // would otherwise stripe perfectly with small weights.
        let mut point = routing_key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % total;
        for e in entries.iter() {
            let w = u64::from(e.weight);
            if point < w {
                return Ok(Arc::clone(e));
            }
            point -= w;
        }
        unreachable!("weighted point exceeded total weight");
    }

    /// A snapshot of every entry (registration order).
    pub fn entries(&self) -> Vec<Arc<ModelEntry>> {
        self.entries.read().clone()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Drains every model's worker pool (in-flight batches complete).
    pub fn shutdown_all(&self) {
        for e in self.entries() {
            e.handle.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::stub_spec;

    #[test]
    fn register_route_and_duplicate() {
        let reg = ModelRegistry::new(ServeConfig::default().with_workers(1));
        assert!(matches!(reg.route(None, 7), Err(HubError::NoModels)));
        reg.register(stub_spec("a", 1, 0xA)).unwrap();
        assert_eq!(reg.route(None, 7).unwrap().name, "a");
        assert_eq!(reg.route(Some("a"), 7).unwrap().checkpoint_hash, 0xA);
        assert!(matches!(
            reg.route(Some("ghost"), 7),
            Err(HubError::UnknownModel(_))
        ));
        assert!(matches!(
            reg.register(stub_spec("a", 1, 0xB)),
            Err(HubError::DuplicateModel(_))
        ));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn unpersistable_names_are_rejected_at_registration() {
        let reg = ModelRegistry::new(ServeConfig::default().with_workers(1));
        for bad in ["", "my model", "tab\tname", "line\nname"] {
            assert!(
                matches!(
                    reg.register(stub_spec(bad, 1, 0)),
                    Err(HubError::BadModelName(_))
                ),
                "name {bad:?} must be rejected"
            );
        }
        assert!(reg.is_empty());
    }

    #[test]
    fn weighted_split_is_deterministic_and_proportional() {
        let reg = ModelRegistry::new(ServeConfig::default().with_workers(1));
        reg.register(stub_spec("big", 3, 1)).unwrap();
        reg.register(stub_spec("small", 1, 2)).unwrap();
        reg.register(stub_spec("canary", 0, 3)).unwrap();
        let mut counts = std::collections::HashMap::new();
        for key in 0..4000u64 {
            let name = reg.route(None, key).unwrap().name.clone();
            // Determinism: the same key always lands on the same model.
            assert_eq!(reg.route(None, key).unwrap().name, name);
            *counts.entry(name).or_insert(0u32) += 1;
        }
        assert_eq!(counts.get("canary"), None, "weight 0 gets no split traffic");
        let big = counts["big"] as f64 / 4000.0;
        assert!(
            (0.70..0.80).contains(&big),
            "3:1 split drifted: big={big:.3}"
        );
        // Canary stays reachable by name.
        assert_eq!(reg.route(Some("canary"), 0).unwrap().checkpoint_hash, 3);
    }

    #[test]
    fn reload_swaps_atomically_and_returns_old_entry() {
        let reg = ModelRegistry::new(ServeConfig::default().with_workers(1));
        reg.register(stub_spec("m", 1, 0x1)).unwrap();
        let before = reg.route(None, 0).unwrap();
        let old = reg.reload(stub_spec("m", 1, 0x2)).unwrap();
        assert_eq!(old.checkpoint_hash, 0x1);
        assert_eq!(reg.route(None, 0).unwrap().checkpoint_hash, 0x2);
        // The pre-reload Arc still answers (in-flight requests survive).
        assert_eq!(before.checkpoint_hash, 0x1);
        assert!(matches!(
            reg.reload(stub_spec("ghost", 1, 9)),
            Err(HubError::UnknownModel(_))
        ));
    }
}
