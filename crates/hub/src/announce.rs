//! The registry announcer: a background heartbeat that keeps a hub
//! resolvable in an `nvc registry`.
//!
//! Every beat rebuilds the model list from the live registry — so a
//! `reload` propagates its new checkpoint hash to the fleet within one
//! heartbeat, and fleet clients verifying response hashes against the
//! registry's advertisement converge instead of failing forever. Beats
//! run at a third of the TTL: two can be lost before the node expires
//! out of resolution.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use nvc_fleet::{ModelAd, NodeAnnouncement, RegistryClient};

use crate::Hub;

/// How a hub presents itself to the discovery registry.
#[derive(Debug, Clone)]
pub struct AnnounceConfig {
    /// Registry address (`host:port`).
    pub registry: String,
    /// Stable node name (heartbeats under the same name refresh, not
    /// duplicate).
    pub node: String,
    /// The address clients should connect to — the hub's *advertised*
    /// listen address, which may differ from the bound one behind NAT
    /// or port 0.
    pub advertise: String,
    /// Announcement TTL; heartbeats run at a third of this.
    pub ttl_ms: u64,
}

impl AnnounceConfig {
    /// An announcer for `node` at `advertise`, heartbeating to
    /// `registry` with a 3-second TTL.
    pub fn new(
        registry: impl Into<String>,
        node: impl Into<String>,
        advertise: impl Into<String>,
    ) -> Self {
        AnnounceConfig {
            registry: registry.into(),
            node: node.into(),
            advertise: advertise.into(),
            ttl_ms: 3000,
        }
    }

    /// Builder-style TTL override.
    pub fn with_ttl_ms(mut self, ttl_ms: u64) -> Self {
        self.ttl_ms = ttl_ms;
        self
    }
}

/// A running announce loop; [`Announcer::stop`] (or drop) ends it.
pub struct Announcer {
    thread: Mutex<Option<JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
}

/// The hub's current model list as registry advertisements.
pub fn advertisements(hub: &Hub) -> Vec<ModelAd> {
    hub.registry()
        .entries()
        .iter()
        .map(|e| ModelAd {
            model: e.name.clone(),
            checkpoint_hash: e.checkpoint_hash,
            weight: e.weight,
        })
        .collect()
}

/// Starts heartbeating `hub`'s model list to the registry. The loop
/// exits when the hub shuts down (one final expiry-by-TTL removes the
/// node from resolution) or when [`Announcer::stop`] is called.
/// Registry outages are retried every beat — announcing is best-effort
/// by design, since resolvers fall back to their last-known node set.
pub fn spawn_announcer(hub: Arc<Hub>, cfg: AnnounceConfig) -> Announcer {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("nvc-hub-announce".to_string())
        .spawn(move || {
            let client = RegistryClient::new(cfg.registry.clone());
            let beat = Duration::from_millis((cfg.ttl_ms / 3).max(50));
            let done = |hub: &Hub| hub.is_shutting_down() || stop_flag.load(Ordering::Acquire);
            loop {
                let ann = NodeAnnouncement {
                    node: cfg.node.clone(),
                    addr: cfg.advertise.clone(),
                    models: advertisements(&hub),
                    ttl_ms: cfg.ttl_ms,
                };
                if let Err(e) = client.announce(&ann) {
                    eprintln!(
                        "nvc hub: announce to {} failed (will retry): {e}",
                        cfg.registry
                    );
                }
                // Sleep in short steps so shutdown is noticed promptly
                // even with multi-second TTLs.
                let mut remaining = beat;
                while !remaining.is_zero() {
                    if done(&hub) {
                        return;
                    }
                    let step = remaining.min(Duration::from_millis(50));
                    std::thread::sleep(step);
                    remaining = remaining.saturating_sub(step);
                }
                if done(&hub) {
                    return;
                }
            }
        })
        .expect("spawn hub announce thread");
    Announcer {
        thread: Mutex::new(Some(thread)),
        stop,
    }
}

impl Announcer {
    /// Ends the loop and waits for it (at most one poll step).
    /// Idempotent.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for Announcer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{stub_spec, StubModel};
    use crate::{Hub, HubConfig};
    use nvc_fleet::{serve_registry, RegistryService};
    use nvc_serve::{DecisionModel, ServeConfig};
    use std::time::Instant;

    #[test]
    fn heartbeats_keep_the_node_resolvable_and_propagate_reloads() {
        let registry = serve_registry(Arc::new(RegistryService::default()), "127.0.0.1:0").unwrap();
        let reg_addr = registry.addr().to_string();

        let hub = Arc::new(
            Hub::new(HubConfig::default(), ServeConfig::default().with_workers(1)).with_loader(
                Box::new(|path| {
                    let tag: usize = path.parse().map_err(|_| format!("bad path {path}"))?;
                    Ok((
                        Arc::new(StubModel::new(tag)) as Arc<dyn DecisionModel>,
                        tag as u64,
                    ))
                }),
            ),
        );
        hub.register(stub_spec("prod", 2, 0xA)).unwrap();
        let announcer = spawn_announcer(
            Arc::clone(&hub),
            AnnounceConfig::new(&reg_addr, "n1", "127.0.0.1:7199").with_ttl_ms(300),
        );

        // The node shows up and advertises its model + hash + weight.
        let client = RegistryClient::new(&reg_addr);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Ok(nodes) = client.resolve(Some("prod")) {
                if let Some(n) = nodes.iter().find(|n| n.node == "n1") {
                    assert_eq!(n.addr, "127.0.0.1:7199");
                    assert_eq!(n.hash_of("prod"), Some(0xA));
                    assert_eq!(n.models[0].weight, 2);
                    break;
                }
            }
            assert!(Instant::now() < deadline, "announcement never arrived");
            std::thread::sleep(Duration::from_millis(20));
        }

        // A reload's new hash propagates within a heartbeat.
        hub.reload("prod", "11", None).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let nodes = client.resolve(Some("prod")).unwrap_or_default();
            if nodes.iter().any(|n| n.hash_of("prod") == Some(11)) {
                break;
            }
            assert!(Instant::now() < deadline, "reload hash never propagated");
            std::thread::sleep(Duration::from_millis(20));
        }

        // Stopping the announcer lets the TTL expire the node.
        announcer.stop();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if client.resolve(Some("prod")).unwrap_or_default().is_empty() {
                break;
            }
            assert!(Instant::now() < deadline, "node never expired after stop");
            std::thread::sleep(Duration::from_millis(50));
        }
        registry.shutdown();
    }
}
