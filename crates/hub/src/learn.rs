//! Online learning from serve traffic: journal → background retrain →
//! champion/challenger auto-promotion.
//!
//! The paper trains NeuroVectorizer offline on a fixed loop pool; a hub
//! serving live build traffic sees a strictly better dataset. This module
//! closes the loop:
//!
//! 1. **Journal** — clients echo the `key` from a vectorize response back
//!    through the `report` verb with a measured reward; the hub resolves
//!    the key to the decided `(sample, action)` and appends the triple to
//!    an append-mode [`Journal`] (the corpus survives restarts).
//! 2. **Retrain** — once enough reports accumulate, a background step
//!    fine-tunes a *challenger* checkpoint from the champion's weights on
//!    the corpus (the [`ChallengerTrainer`] hook; the CLI wires it to
//!    `PpoTrainer` over an `nvc_rl::ReplayEnv`).
//! 3. **A/B** — the challenger registers at low weight through the
//!    existing deterministic route split; per-cohort reward accumulates
//!    (Welford) keyed by `(model, checkpoint_hash)`, so every checkpoint
//!    generation gets a fresh cohort.
//! 4. **Promote / demote** — a Welch-style z-test on the cohort means
//!    decides: `z ≥ threshold` hot-swaps the champion to the challenger
//!    checkpoint via the existing atomic `reload` (fleet heartbeats pick
//!    the new hash up automatically); `z ≤ −threshold` parks the
//!    challenger at weight 0. A post-promotion guard compares the new
//!    champion generation against the pre-promotion cohort and rolls the
//!    swap back if it regresses.
//!
//! Every lifecycle event lands in a promotion log (append-mode journal)
//! for audit.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use nvc_embed::PathSample;
use nvc_obs::{Counter, Journal, MetricsRegistry};
use nvc_serve::Json;

use crate::{Hub, HubError};

/// One journaled `(sample, decision, measured_reward)` observation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRecord {
    /// Registry entry that made the decision.
    pub model: String,
    /// Checkpoint generation the decision came from.
    pub checkpoint_hash: u64,
    /// The sample hash (the client's correlation key).
    pub key: u64,
    /// Chosen vectorization-factor index.
    pub vf_idx: usize,
    /// Chosen interleave-factor index.
    pub if_idx: usize,
    /// Client-measured reward (§3.3 normalized improvement).
    pub reward: f64,
    /// The path-context sample the decision was made on.
    pub sample: PathSample,
}

impl ReportRecord {
    /// One JSON journal line.
    pub fn to_json_line(&self) -> String {
        let ints = |xs: &[usize]| {
            let body: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
            format!("[{}]", body.join(","))
        };
        format!(
            concat!(
                "{{\"model\":\"{}\",\"checkpoint_hash\":\"{:016x}\",\"key\":\"{:016x}\",",
                "\"vf_idx\":{},\"if_idx\":{},\"reward\":{},",
                "\"starts\":{},\"paths\":{},\"ends\":{}}}"
            ),
            nvc_obs::json_escape(&self.model),
            self.checkpoint_hash,
            self.key,
            self.vf_idx,
            self.if_idx,
            self.reward,
            ints(&self.sample.starts),
            ints(&self.sample.paths),
            ints(&self.sample.ends),
        )
    }

    /// Parses one journal line (the [`ReportRecord::to_json_line`]
    /// encoding).
    pub fn from_json(v: &Json) -> Result<ReportRecord, String> {
        let hex = |field: &str| {
            v.get(field)
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| format!("report record missing hex `{field}`"))
        };
        let int = |field: &str| {
            v.get(field)
                .and_then(Json::as_f64)
                .map(|f| f as usize)
                .ok_or_else(|| format!("report record missing `{field}`"))
        };
        let ints = |field: &str| -> Result<Vec<usize>, String> {
            v.get(field)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("report record missing `{field}`"))?
                .iter()
                .map(|x| {
                    x.as_f64()
                        .map(|f| f as usize)
                        .ok_or_else(|| format!("non-numeric element in `{field}`"))
                })
                .collect()
        };
        Ok(ReportRecord {
            model: v
                .get("model")
                .and_then(Json::as_str)
                .ok_or("report record missing `model`")?
                .to_string(),
            checkpoint_hash: hex("checkpoint_hash")?,
            key: hex("key")?,
            vf_idx: int("vf_idx")?,
            if_idx: int("if_idx")?,
            reward: v
                .get("reward")
                .and_then(Json::as_f64)
                .ok_or("report record missing `reward`")?,
            sample: PathSample {
                starts: ints("starts")?,
                paths: ints("paths")?,
                ends: ints("ends")?,
            },
        })
    }
}

/// Welford-accumulated reward statistics of one `(model, checkpoint)`
/// cohort.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cohort {
    /// Observations.
    pub n: u64,
    /// Running mean reward.
    pub mean: f64,
    /// Sum of squared deviations (Welford's M2).
    m2: f64,
}

impl Cohort {
    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Sample variance (0 below two observations).
    pub fn var(&self) -> f64 {
        if self.n > 1 {
            self.m2 / (self.n - 1) as f64
        } else {
            0.0
        }
    }
}

/// Welch's z-statistic for `mean(a) − mean(b)`. Positive means `a`
/// measured better. Degenerate zero-variance cohorts compare by mean
/// alone (±1e9 stand-ins for ±∞, 0 on an exact tie).
pub fn welch_z(a: &Cohort, b: &Cohort) -> f64 {
    if a.n == 0 || b.n == 0 {
        return 0.0;
    }
    let se = (a.var() / a.n as f64 + b.var() / b.n as f64).sqrt();
    let diff = a.mean - b.mean;
    if se == 0.0 {
        return if diff > 0.0 {
            1e9
        } else if diff < 0.0 {
            -1e9
        } else {
            0.0
        };
    }
    diff / se
}

/// Fine-tunes a challenger checkpoint: `(corpus, champion_checkpoint_path,
/// out_path)`. The CLI wires this to `NeuroVectorizer::restore` + a
/// `ReplayEnv` fine-tune; tests use stubs. Mirrors the
/// [`CheckpointLoader`](crate::CheckpointLoader) pattern so `nvc-hub`
/// stays independent of `nvc-core`.
pub type ChallengerTrainer =
    Box<dyn Fn(&[ReportRecord], &str, &str) -> Result<(), String> + Send + Sync>;

/// Knobs for the online-learning loop (`nvc hub --learn*` flags).
#[derive(Debug, Clone, PartialEq)]
pub struct LearnConfig {
    /// Append-mode corpus journal (survives hub restarts).
    pub journal_path: String,
    /// Append-mode promotion/demotion/rollback audit log.
    pub promotion_log_path: Option<String>,
    /// The champion registry entry reports train against.
    pub champion: String,
    /// The challenger entry name the controller manages.
    pub challenger: String,
    /// The champion's checkpoint file — the warm-start weights.
    pub champion_checkpoint: String,
    /// Where the trainer writes the challenger checkpoint.
    pub challenger_checkpoint: String,
    /// Corpus size before the first fine-tune runs, and the number of
    /// *new* reports between retrains (the retrain cadence — see
    /// [`Hub::learn_step`]).
    pub min_reports: usize,
    /// Registry weight the challenger canaries at.
    pub canary_weight: u32,
    /// Welch z the cohort comparison must clear (promotion at `≥ z`,
    /// demotion at `≤ −z`).
    pub z_threshold: f64,
    /// Minimum observations per cohort before any verdict.
    pub min_cohort: u64,
    /// Controller step interval for [`spawn_learner`].
    pub interval_ms: u64,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            journal_path: "learn.jsonl".to_string(),
            promotion_log_path: None,
            champion: "prod".to_string(),
            challenger: "challenger".to_string(),
            champion_checkpoint: String::new(),
            challenger_checkpoint: "challenger.ckpt".to_string(),
            min_reports: 50,
            canary_weight: 1,
            z_threshold: 2.0,
            min_cohort: 20,
            interval_ms: 1000,
        }
    }
}

/// Pre-promotion state kept so a regressing swap can be undone.
#[derive(Debug, Clone)]
struct RollbackGuard {
    /// Checkpoint path the champion served before the promotion.
    prev_path: String,
    /// The pre-promotion champion cohort (the baseline the new
    /// generation must not lose to).
    prev_cohort: Cohort,
    /// Hash the promotion installed — the guard only applies while the
    /// champion still serves it.
    promoted_hash: u64,
}

/// Everything the learning loop owns: corpus, cohorts, journals,
/// counters, and the trainer hook.
pub struct LearnState {
    cfg: LearnConfig,
    trainer: ChallengerTrainer,
    journal: Journal,
    promotion_log: Option<Journal>,
    corpus: Mutex<Vec<ReportRecord>>,
    cohorts: Mutex<HashMap<(String, u64), Cohort>>,
    /// Corpus length at the last fine-tune (train only on new data).
    trained_at: Mutex<usize>,
    /// The checkpoint path the champion currently serves (moves on
    /// promotion, restores on rollback).
    champion_path: Mutex<String>,
    rollback: Mutex<Option<RollbackGuard>>,
    pub(crate) reports: Arc<Counter>,
    pub(crate) report_errors: Arc<Counter>,
    pub(crate) trains: Arc<Counter>,
    pub(crate) promotions: Arc<Counter>,
    pub(crate) demotions: Arc<Counter>,
    pub(crate) rollbacks: Arc<Counter>,
}

impl std::fmt::Debug for LearnState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LearnState")
            .field("cfg", &self.cfg)
            .field("corpus", &self.corpus.lock().len())
            .finish_non_exhaustive()
    }
}

impl LearnState {
    /// Opens (append-mode) the corpus journal and promotion log, replays
    /// any existing journal lines into the in-memory corpus and cohorts,
    /// and registers the `hub_learn_*` counters on `obs`.
    ///
    /// # Errors
    ///
    /// [`HubError::Io`] when a journal cannot be opened.
    pub fn new(
        cfg: LearnConfig,
        trainer: ChallengerTrainer,
        obs: &MetricsRegistry,
    ) -> Result<LearnState, HubError> {
        // Replay before opening for append: the corpus must reflect
        // every line already on disk.
        let mut corpus = Vec::new();
        let mut cohorts: HashMap<(String, u64), Cohort> = HashMap::new();
        match std::fs::read_to_string(&cfg.journal_path) {
            Ok(text) => {
                for line in text.lines().filter(|l| !l.trim().is_empty()) {
                    let rec = Json::parse(line)
                        .map_err(|e| e.to_string())
                        .and_then(|v| ReportRecord::from_json(&v));
                    match rec {
                        Ok(rec) => {
                            cohorts
                                .entry((rec.model.clone(), rec.checkpoint_hash))
                                .or_default()
                                .push(rec.reward);
                            corpus.push(rec);
                        }
                        Err(e) => {
                            return Err(HubError::Io(format!(
                                "corrupt learning journal {}: {e}",
                                cfg.journal_path
                            )))
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(HubError::Io(format!("read {}: {e}", cfg.journal_path))),
        }
        let journal = Journal::append(&cfg.journal_path)
            .map_err(|e| HubError::Io(format!("open {}: {e}", cfg.journal_path)))?;
        let promotion_log = match &cfg.promotion_log_path {
            Some(p) => {
                Some(Journal::append(p).map_err(|e| HubError::Io(format!("open {p}: {e}")))?)
            }
            None => None,
        };
        Ok(LearnState {
            champion_path: Mutex::new(cfg.champion_checkpoint.clone()),
            cfg,
            trainer,
            journal,
            promotion_log,
            corpus: Mutex::new(corpus),
            cohorts: Mutex::new(cohorts),
            trained_at: Mutex::new(0),
            rollback: Mutex::new(None),
            reports: obs.counter("hub_learn_reports_total"),
            report_errors: obs.counter("hub_learn_report_errors_total"),
            trains: obs.counter("hub_learn_trains_total"),
            promotions: obs.counter("hub_learn_promotions_total"),
            demotions: obs.counter("hub_learn_demotions_total"),
            rollbacks: obs.counter("hub_learn_rollbacks_total"),
        })
    }

    /// The learning configuration.
    pub fn config(&self) -> &LearnConfig {
        &self.cfg
    }

    /// Journals and accumulates one report.
    pub fn record(&self, rec: ReportRecord) {
        self.journal.write_line(&rec.to_json_line());
        self.cohorts
            .lock()
            .entry((rec.model.clone(), rec.checkpoint_hash))
            .or_default()
            .push(rec.reward);
        self.corpus.lock().push(rec);
        self.reports.inc();
    }

    /// Observations accumulated so far (including replayed journal
    /// lines).
    pub fn corpus_len(&self) -> usize {
        self.corpus.lock().len()
    }

    /// The reward cohort of one `(model, checkpoint)` generation.
    pub fn cohort(&self, model: &str, checkpoint_hash: u64) -> Option<Cohort> {
        self.cohorts
            .lock()
            .get(&(model.to_string(), checkpoint_hash))
            .copied()
    }

    /// Appends one event line to the promotion log (no-op without one).
    fn log_event(&self, line: &str) {
        if let Some(log) = &self.promotion_log {
            log.write_line(line);
        }
    }
}

/// What one controller step did (tests assert on these; the promotion
/// log records them durably).
#[derive(Debug, Clone, PartialEq)]
pub enum LearnEvent {
    /// A challenger checkpoint was fine-tuned from `reports`
    /// observations.
    Trained {
        /// Corpus size the fine-tune saw.
        reports: usize,
    },
    /// The challenger (re)registered at canary weight.
    Canary {
        /// The challenger checkpoint's content hash.
        checkpoint_hash: u64,
    },
    /// The champion hot-swapped to the challenger checkpoint.
    Promoted {
        /// The winning Welch z.
        z: f64,
        /// The promoted checkpoint's content hash.
        checkpoint_hash: u64,
    },
    /// The challenger lost its A/B and was parked at weight 0.
    Demoted {
        /// The losing Welch z.
        z: f64,
    },
    /// The post-promotion guard undid a regressing swap.
    RolledBack {
        /// The regression's Welch z.
        z: f64,
    },
}

impl Hub {
    /// One synchronous controller step: fine-tune when enough new
    /// reports accumulated, deploy the challenger at canary weight, run
    /// the A/B verdict, and check the post-promotion guard. Returns the
    /// events that fired (empty when learning is off or nothing was
    /// ready). [`spawn_learner`] calls this on an interval; tests call
    /// it directly.
    pub fn learn_step(&self) -> Vec<LearnEvent> {
        let Some(ls) = self.learning() else {
            return Vec::new();
        };
        let ls = Arc::clone(ls);
        let mut events = Vec::new();
        self.learn_train(&ls, &mut events);
        self.learn_verdict(&ls, &mut events);
        self.learn_rollback_guard(&ls, &mut events);
        events
    }

    /// Phase 1: fine-tune a challenger when the corpus has grown.
    fn learn_train(&self, ls: &LearnState, events: &mut Vec<LearnEvent>) {
        let corpus_len = ls.corpus_len();
        let mut trained_at = ls.trained_at.lock();
        // `min_reports` is also the retrain cadence: a fine-tune changes
        // the challenger's checkpoint hash and therefore opens a fresh
        // (empty) A/B cohort, so retraining on every new report would
        // starve the verdict forever under continuous traffic. Waiting
        // for `min_reports` *new* observations leaves a window in which
        // the canary cohort can fill and verdicts run.
        if corpus_len < *trained_at + ls.cfg.min_reports {
            return;
        }
        let champion_path = ls.champion_path.lock().clone();
        let records = ls.corpus.lock().clone();
        match (ls.trainer)(&records, &champion_path, &ls.cfg.challenger_checkpoint) {
            Ok(()) => {
                *trained_at = corpus_len;
                ls.trains.inc();
                ls.log_event(&format!(
                    "{{\"event\":\"trained\",\"reports\":{corpus_len}}}"
                ));
                events.push(LearnEvent::Trained {
                    reports: corpus_len,
                });
                match self.deploy_challenger(ls) {
                    Ok(hash) => {
                        ls.log_event(&format!(
                            "{{\"event\":\"canary\",\"model\":\"{}\",\"checkpoint_hash\":\"{hash:016x}\",\"weight\":{}}}",
                            nvc_obs::json_escape(&ls.cfg.challenger),
                            ls.cfg.canary_weight
                        ));
                        events.push(LearnEvent::Canary {
                            checkpoint_hash: hash,
                        });
                    }
                    Err(e) => eprintln!("nvc hub: challenger deploy failed: {e}"),
                }
            }
            Err(e) => eprintln!("nvc hub: challenger training failed: {e}"),
        }
    }

    /// Registers (first time) or reloads the challenger entry from the
    /// freshly written checkpoint, at canary weight.
    fn deploy_challenger(&self, ls: &LearnState) -> Result<u64, HubError> {
        let path = &ls.cfg.challenger_checkpoint;
        if self.registry().get(&ls.cfg.challenger).is_some() {
            return self.reload(&ls.cfg.challenger, path, Some(ls.cfg.canary_weight));
        }
        let loader = self.loader.as_ref().ok_or(HubError::NoLoader)?;
        let (model, hash) = loader(path).map_err(HubError::Loader)?;
        self.register(crate::ModelSpec {
            name: ls.cfg.challenger.clone(),
            weight: ls.cfg.canary_weight,
            checkpoint_hash: hash,
            model,
        })?;
        Ok(hash)
    }

    /// Phase 2: the A/B verdict between live challenger and champion
    /// cohorts.
    fn learn_verdict(&self, ls: &LearnState, events: &mut Vec<LearnEvent>) {
        let (Some(champ), Some(chall)) = (
            self.registry().get(&ls.cfg.champion),
            self.registry().get(&ls.cfg.challenger),
        ) else {
            return;
        };
        // Same content, or a parked challenger: nothing to decide.
        if champ.checkpoint_hash == chall.checkpoint_hash || chall.weight == 0 {
            return;
        }
        let (Some(cc), Some(hc)) = (
            ls.cohort(&chall.name, chall.checkpoint_hash),
            ls.cohort(&champ.name, champ.checkpoint_hash),
        ) else {
            return;
        };
        if cc.n < ls.cfg.min_cohort || hc.n < ls.cfg.min_cohort {
            return;
        }
        let z = welch_z(&cc, &hc);
        if z >= ls.cfg.z_threshold {
            self.promote_challenger(ls, z, hc, events);
        } else if z <= -ls.cfg.z_threshold {
            // Park the loser: weight 0 stops A/B traffic; the next
            // fine-tune (with more data) re-deploys at canary weight.
            match self.reload(&ls.cfg.challenger, &ls.cfg.challenger_checkpoint, Some(0)) {
                Ok(_) => {
                    ls.demotions.inc();
                    ls.log_event(&format!(
                        "{{\"event\":\"demoted\",\"model\":\"{}\",\"z\":{z}}}",
                        nvc_obs::json_escape(&ls.cfg.challenger)
                    ));
                    events.push(LearnEvent::Demoted { z });
                }
                Err(e) => eprintln!("nvc hub: challenger demotion failed: {e}"),
            }
        }
    }

    /// The winning path: copy the challenger checkpoint to a stable
    /// generation file (later retrains overwrite the working path),
    /// hot-swap the champion onto it, arm the rollback guard, and park
    /// the canary (its content is now the champion).
    fn promote_challenger(
        &self,
        ls: &LearnState,
        z: f64,
        pre_promotion_cohort: Cohort,
        events: &mut Vec<LearnEvent>,
    ) {
        let gen = ls.promotions.get() + 1;
        let promoted_path = format!("{}.gen{gen}", ls.cfg.challenger_checkpoint);
        if let Err(e) = std::fs::copy(&ls.cfg.challenger_checkpoint, &promoted_path) {
            eprintln!("nvc hub: promotion copy failed: {e}");
            return;
        }
        let prev_path = ls.champion_path.lock().clone();
        match self.reload(&ls.cfg.champion, &promoted_path, None) {
            Ok(new_hash) => {
                ls.promotions.inc();
                *ls.champion_path.lock() = promoted_path;
                *ls.rollback.lock() = Some(RollbackGuard {
                    prev_path,
                    prev_cohort: pre_promotion_cohort,
                    promoted_hash: new_hash,
                });
                ls.log_event(&format!(
                    "{{\"event\":\"promoted\",\"model\":\"{}\",\"checkpoint_hash\":\"{new_hash:016x}\",\"z\":{z}}}",
                    nvc_obs::json_escape(&ls.cfg.champion)
                ));
                events.push(LearnEvent::Promoted {
                    z,
                    checkpoint_hash: new_hash,
                });
                if let Err(e) =
                    self.reload(&ls.cfg.challenger, &ls.cfg.challenger_checkpoint, Some(0))
                {
                    eprintln!("nvc hub: post-promotion canary park failed: {e}");
                }
            }
            Err(e) => eprintln!("nvc hub: promotion reload failed: {e}"),
        }
    }

    /// Phase 3: the post-promotion guard. While the champion still
    /// serves a promoted checkpoint, its new cohort must not
    /// significantly lose to the pre-promotion cohort — if it does, the
    /// previous checkpoint is reloaded.
    fn learn_rollback_guard(&self, ls: &LearnState, events: &mut Vec<LearnEvent>) {
        let Some(guard) = ls.rollback.lock().clone() else {
            return;
        };
        let Some(champ) = self.registry().get(&ls.cfg.champion) else {
            return;
        };
        if champ.checkpoint_hash != guard.promoted_hash {
            // Someone reloaded the champion out from under the guard;
            // the stored baseline no longer applies.
            *ls.rollback.lock() = None;
            return;
        }
        let Some(now) = ls.cohort(&champ.name, champ.checkpoint_hash) else {
            return;
        };
        if now.n < ls.cfg.min_cohort {
            return;
        }
        let z = welch_z(&now, &guard.prev_cohort);
        if z <= -ls.cfg.z_threshold {
            match self.reload(&ls.cfg.champion, &guard.prev_path, None) {
                Ok(_) => {
                    ls.rollbacks.inc();
                    *ls.champion_path.lock() = guard.prev_path.clone();
                    *ls.rollback.lock() = None;
                    ls.log_event(&format!(
                        "{{\"event\":\"rollback\",\"model\":\"{}\",\"z\":{z}}}",
                        nvc_obs::json_escape(&ls.cfg.champion)
                    ));
                    events.push(LearnEvent::RolledBack { z });
                }
                Err(e) => eprintln!("nvc hub: rollback reload failed: {e}"),
            }
        } else if z >= ls.cfg.z_threshold {
            // The promotion clearly held up; release the guard.
            *ls.rollback.lock() = None;
        }
    }
}

/// Runs [`Hub::learn_step`] every `interval_ms` until the hub shuts
/// down. The sleep is sliced so shutdown is prompt.
pub fn spawn_learner(hub: Arc<Hub>) -> std::thread::JoinHandle<()> {
    let interval = hub
        .learning()
        .map(|l| l.cfg.interval_ms.max(1))
        .unwrap_or(1000);
    std::thread::Builder::new()
        .name("nvc-hub-learner".to_string())
        .spawn(move || {
            while !hub.is_shutting_down() {
                let mut slept = 0u64;
                while slept < interval && !hub.is_shutting_down() {
                    let slice = (interval - slept).min(25);
                    std::thread::sleep(std::time::Duration::from_millis(slice));
                    slept += slice;
                }
                if hub.is_shutting_down() {
                    break;
                }
                hub.learn_step();
            }
        })
        .expect("spawn nvc-hub-learner")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{stub_spec, StubModel, SRC};
    use crate::{HubConfig, ModelSpec};
    use nvc_serve::json::obj;
    use nvc_serve::{DecisionModel, ServeConfig};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nvc-learn-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(base: usize) -> PathSample {
        PathSample {
            starts: vec![base, base + 1],
            paths: vec![base * 2, base * 2 + 1],
            ends: vec![base + 3, base + 4],
        }
    }

    /// A tiny deterministic generator (no rand dependency in this
    /// crate): xorshift64*, uniform in [-1, 1).
    struct Noise(u64);

    impl Noise {
        fn next(&mut self) -> f64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            (x >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        }
    }

    /// Loader used across tests: the checkpoint file's content is a
    /// stub tag; hash = tag.
    fn tag_loader() -> crate::CheckpointLoader {
        Box::new(|path| {
            let tag: usize = std::fs::read_to_string(path)
                .map_err(|e| e.to_string())?
                .trim()
                .parse()
                .map_err(|_| format!("bad stub checkpoint {path}"))?;
            Ok((
                Arc::new(StubModel::new(tag)) as Arc<dyn DecisionModel>,
                tag as u64,
            ))
        })
    }

    /// A trainer stub that writes `tag` as the challenger checkpoint.
    fn tag_trainer(tag: usize) -> ChallengerTrainer {
        Box::new(move |_records, _champion, out| {
            std::fs::write(out, tag.to_string()).map_err(|e| e.to_string())
        })
    }

    fn learning_hub(dir: &std::path::Path, cfg: LearnConfig, trainer_tag: usize) -> Hub {
        let champion_ckpt = dir.join("champion.ckpt");
        std::fs::write(&champion_ckpt, "0").unwrap();
        let cfg = LearnConfig {
            journal_path: dir.join("learn.jsonl").to_string_lossy().to_string(),
            promotion_log_path: Some(dir.join("promotions.jsonl").to_string_lossy().to_string()),
            champion_checkpoint: champion_ckpt.to_string_lossy().to_string(),
            challenger_checkpoint: dir.join("challenger.ckpt").to_string_lossy().to_string(),
            ..cfg
        };
        let hub = Hub::new(HubConfig::default(), ServeConfig::default().with_workers(1))
            .with_loader(tag_loader())
            .with_learning(cfg, tag_trainer(trainer_tag))
            .unwrap();
        hub.register(stub_spec("prod", 3, 0)).unwrap();
        hub
    }

    fn feed(hub: &Hub, model: &str, hash: u64, n: usize, mean: f64, noise: &mut Noise) {
        for i in 0..n {
            hub.learning().unwrap().record(ReportRecord {
                model: model.to_string(),
                checkpoint_hash: hash,
                key: i as u64,
                vf_idx: 1,
                if_idx: 1,
                reward: mean + 0.2 * noise.next(),
                sample: sample(i % 7),
            });
        }
    }

    #[test]
    fn welch_z_direction_and_degenerate_cases() {
        let mut a = Cohort::default();
        let mut b = Cohort::default();
        assert_eq!(welch_z(&a, &b), 0.0, "empty cohorts are a tie");
        for i in 0..30 {
            a.push(0.8 + 0.01 * (i % 3) as f64);
            b.push(0.2 + 0.01 * (i % 3) as f64);
        }
        assert!(welch_z(&a, &b) > 10.0);
        assert!(welch_z(&b, &a) < -10.0);
        // Zero variance, distinct means: decisive either way.
        let mut c = Cohort::default();
        let mut d = Cohort::default();
        for _ in 0..5 {
            c.push(1.0);
            d.push(0.0);
        }
        assert!(welch_z(&c, &d) > 1e8);
        assert!(welch_z(&d, &c) < -1e8);
        assert_eq!(welch_z(&c, &c.clone()), 0.0);
    }

    #[test]
    fn report_record_round_trips_through_the_journal_encoding() {
        let rec = ReportRecord {
            model: "prod".to_string(),
            checkpoint_hash: 0xAB,
            key: 0xDEAD_BEEF,
            vf_idx: 3,
            if_idx: 2,
            reward: -0.125,
            sample: sample(5),
        };
        let line = rec.to_json_line();
        let parsed = ReportRecord::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, rec);
    }

    #[test]
    fn report_verb_requires_learning_and_valid_fields() {
        let hub = Hub::new(HubConfig::default(), ServeConfig::default().with_workers(1));
        hub.register(stub_spec("prod", 1, 0)).unwrap();
        let (resp, _) = hub.handle_line(r#"{"op":"report","model":"prod","key":"0","reward":1}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert!(v
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("learning"));

        let dir = tmp_dir("report-verb");
        let hub = learning_hub(&dir, LearnConfig::default(), 7);
        // Serve once to learn a key, then report against it.
        let vec_req = obj(vec![
            ("op", Json::from("vectorize")),
            ("source", Json::from(SRC)),
            ("model", Json::from("prod")),
        ])
        .render();
        let v = Json::parse(&hub.handle_line(&vec_req).0).unwrap();
        let key = v.get("loops").unwrap().as_array().unwrap()[0]
            .get("key")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();

        let report = |model: &str, key: &str, reward: &str| {
            let line = format!(
                "{{\"op\":\"report\",\"model\":\"{model}\",\"key\":\"{key}\",\"reward\":{reward}}}"
            );
            Json::parse(&hub.handle_line(&line).0).unwrap()
        };
        let ok = report("prod", &key, "0.4");
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true), "{ok:?}");
        assert_eq!(hub.learning().unwrap().corpus_len(), 1);
        let corpus = hub.learning().unwrap().corpus.lock().clone();
        assert_eq!(corpus[0].model, "prod");
        assert_eq!(corpus[0].reward, 0.4);

        // Error paths: unknown model, unknown key, malformed reward.
        assert_eq!(
            report("ghost", &key, "0.4").get("ok").unwrap().as_bool(),
            Some(false)
        );
        assert_eq!(
            report("prod", "ffffffffffffffff", "0.4")
                .get("ok")
                .unwrap()
                .as_bool(),
            Some(false)
        );
        assert_eq!(
            report("prod", &key, "\"high\"")
                .get("ok")
                .unwrap()
                .as_bool(),
            Some(false)
        );
        assert_eq!(hub.learning().unwrap().corpus_len(), 1);
        assert!(hub.learning().unwrap().report_errors.get() >= 3);

        // A key absent from an entry's warm set (this entry never served
        // the loop) correlates through the `source` fallback:
        // re-extraction recovers the sample, the deterministic decide
        // path recomputes the decision.
        hub.register(stub_spec("cold", 0, 0)).unwrap();
        // Without the source, the cold entry cannot correlate the key…
        let no_source =
            format!("{{\"op\":\"report\",\"model\":\"cold\",\"key\":\"{key}\",\"reward\":0.5}}");
        let v = Json::parse(&hub.handle_line(&no_source).0).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        // …and with it, re-extraction recovers the sample and the
        // deterministic decide path recomputes the decision.
        let fallback = format!(
            "{{\"op\":\"report\",\"model\":\"cold\",\"key\":\"{key}\",\"reward\":0.5,\"source\":{}}}",
            Json::from(SRC).render()
        );
        let v = Json::parse(&hub.handle_line(&fallback).0).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{v:?}");

        // Metrics surface the learning section.
        let (resp, _) = hub.handle_line(r#"{"op":"metrics"}"#);
        let stats = Json::parse(&resp).unwrap();
        let learning = stats.get("stats").unwrap().get("learning").unwrap().clone();
        assert_eq!(learning.get("corpus").unwrap().as_f64(), Some(2.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_survives_a_hub_restart() {
        let dir = tmp_dir("restart");
        let cfg = LearnConfig {
            min_reports: 1_000_000, // never train in this test
            ..LearnConfig::default()
        };
        {
            let hub = learning_hub(&dir, cfg.clone(), 7);
            let mut noise = Noise(11);
            feed(&hub, "prod", 0, 5, 0.4, &mut noise);
            assert_eq!(hub.learning().unwrap().corpus_len(), 5);
        }
        // A new hub over the same journal path replays the corpus.
        let hub = learning_hub(&dir, cfg, 7);
        let ls = hub.learning().unwrap();
        assert_eq!(ls.corpus_len(), 5);
        let cohort = ls.cohort("prod", 0).unwrap();
        assert_eq!(cohort.n, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn controller_trains_canaries_and_promotes_a_winner() {
        let dir = tmp_dir("promote");
        let cfg = LearnConfig {
            min_reports: 10,
            min_cohort: 20,
            z_threshold: 2.0,
            ..LearnConfig::default()
        };
        let hub = learning_hub(&dir, cfg, 7);
        let mut noise = Noise(3);

        // Not enough reports yet: the step is a no-op.
        feed(&hub, "prod", 0, 5, 0.2, &mut noise);
        assert!(hub.learn_step().is_empty());

        // Enough: train + canary.
        feed(&hub, "prod", 0, 20, 0.2, &mut noise);
        let events = hub.learn_step();
        assert!(events.contains(&LearnEvent::Trained { reports: 25 }));
        assert!(events.contains(&LearnEvent::Canary { checkpoint_hash: 7 }));
        let chall = hub.registry().get("challenger").unwrap();
        assert_eq!(chall.weight, 1);
        assert_eq!(chall.checkpoint_hash, 7);

        // The challenger measures clearly better → promotion via the
        // atomic reload, canary parked, rollback guard armed.
        feed(&hub, "challenger", 7, 30, 0.8, &mut noise);
        let events = hub.learn_step();
        let promoted = events
            .iter()
            .find_map(|e| match e {
                LearnEvent::Promoted { z, checkpoint_hash } => Some((*z, *checkpoint_hash)),
                _ => None,
            })
            .expect("winner must promote");
        assert!(promoted.0 >= 2.0);
        assert_eq!(promoted.1, 7);
        let champ = hub.registry().get("prod").unwrap();
        assert_eq!(
            champ.checkpoint_hash, 7,
            "champion serves the promoted hash"
        );
        assert_eq!(champ.weight, 3, "promotion keeps the champion's weight");
        assert_eq!(hub.registry().get("challenger").unwrap().weight, 0);
        assert_eq!(hub.learning().unwrap().promotions.get(), 1);

        // The promotion log recorded the lifecycle.
        let log = std::fs::read_to_string(dir.join("promotions.jsonl")).unwrap();
        assert!(log.contains("\"event\":\"trained\""));
        assert!(log.contains("\"event\":\"canary\""));
        assert!(log.contains("\"event\":\"promoted\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn losing_challenger_is_demoted_and_never_promoted_under_noise() {
        // The promotion-safety matrix: across seeds, with noisy rewards,
        // a challenger whose true mean is *worse* must never be
        // promoted — zero wrong-direction swaps.
        for seed in [1u64, 2, 3, 5, 8, 13] {
            let dir = tmp_dir(&format!("safety-{seed}"));
            let cfg = LearnConfig {
                min_reports: 10,
                min_cohort: 25,
                z_threshold: 2.0,
                ..LearnConfig::default()
            };
            let hub = learning_hub(&dir, cfg, 7);
            let mut noise = Noise(seed);
            feed(&hub, "prod", 0, 30, 0.5, &mut noise);
            hub.learn_step(); // train + canary
            assert!(hub.registry().get("challenger").is_some());
            // Noisy but truly worse challenger cohort, fed in slices
            // with a verdict attempt after each.
            for _ in 0..8 {
                feed(&hub, "challenger", 7, 10, 0.3, &mut noise);
                feed(&hub, "prod", 0, 10, 0.5, &mut noise);
                for e in hub.learn_step() {
                    assert!(
                        !matches!(e, LearnEvent::Promoted { .. }),
                        "seed {seed}: losing challenger promoted"
                    );
                }
            }
            let champ = hub.registry().get("prod").unwrap();
            assert_eq!(champ.checkpoint_hash, 0, "seed {seed}: champion swapped");
            assert_eq!(hub.learning().unwrap().promotions.get(), 0);
            // The loser was eventually parked.
            assert_eq!(hub.registry().get("challenger").unwrap().weight, 0);
            assert!(hub.learning().unwrap().demotions.get() >= 1);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn regressing_promotion_rolls_back() {
        let dir = tmp_dir("rollback");
        let cfg = LearnConfig {
            min_reports: 10,
            min_cohort: 20,
            z_threshold: 2.0,
            ..LearnConfig::default()
        };
        let hub = learning_hub(&dir, cfg, 7);
        let mut noise = Noise(9);
        feed(&hub, "prod", 0, 25, 0.5, &mut noise);
        hub.learn_step();
        // The A/B looked great (lucky cohort)…
        feed(&hub, "challenger", 7, 25, 0.9, &mut noise);
        let events = hub.learn_step();
        assert!(events
            .iter()
            .any(|e| matches!(e, LearnEvent::Promoted { .. })));
        assert_eq!(hub.registry().get("prod").unwrap().checkpoint_hash, 7);
        // …but the promoted generation measures much worse than the
        // pre-promotion baseline → the guard restores the old champion.
        feed(&hub, "prod", 7, 25, 0.1, &mut noise);
        let events = hub.learn_step();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, LearnEvent::RolledBack { .. })),
            "{events:?}"
        );
        assert_eq!(
            hub.registry().get("prod").unwrap().checkpoint_hash,
            0,
            "rollback restores the previous checkpoint"
        );
        assert_eq!(hub.learning().unwrap().rollbacks.get(), 1);
        let log = std::fs::read_to_string(dir.join("promotions.jsonl")).unwrap();
        assert!(log.contains("\"event\":\"rollback\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn learner_thread_runs_steps_and_stops_on_shutdown() {
        let dir = tmp_dir("thread");
        let cfg = LearnConfig {
            min_reports: 5,
            interval_ms: 10,
            ..LearnConfig::default()
        };
        let hub = Arc::new(learning_hub(&dir, cfg, 7));
        let mut noise = Noise(21);
        feed(&hub, "prod", 0, 10, 0.4, &mut noise);
        let handle = spawn_learner(Arc::clone(&hub));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while hub.learning().unwrap().trains.get() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "learner never trained"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        hub.shutdown();
        handle.join().unwrap();
        assert!(hub.registry().get("challenger").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
