//! The event-driven transport: one selector thread drives every
//! connection nonblocking (C10K-style), a small worker pool executes
//! protocol requests off the loop.
//!
//! ```text
//!            ┌───────────────── selector thread ─────────────────┐
//!  accept ──►│ register(fd) ── readable ──► line buffer ──┐      │
//!            │                                            ▼      │
//!            │ writable ◄── per-conn output queue ◄── seq reorder│
//!            └───────▲──────────────────────────────────┬────────┘
//!                    │ waker (self-pipe)                │ job queue
//!                    └────────── request workers ◄──────┘
//!                                (hub.handle_line)
//! ```
//!
//! Invariants the loop maintains:
//!
//! * **Partial lines survive wakeups.** Bytes read are appended to a
//!   per-connection buffer; only complete `\n`-terminated lines are
//!   dispatched. A client dribbling one byte per write costs one wakeup
//!   per byte and nothing else.
//! * **Responses are written in request order per connection.** Each
//!   parsed line gets a sequence number; worker results park in a
//!   reorder map until their turn. (Workers may finish out of order —
//!   a cache hit overtaking a model forward.)
//! * **Writes queue when the socket would block.** Unsent bytes wait in
//!   a per-connection output queue and the connection's interest gains
//!   WRITE until drained. Past `max_output_buffer` queued bytes the
//!   loop additionally stops *reading* from that connection until the
//!   queue drains below half (the backpressure bound — a slow reader
//!   throttles only itself, by at most the bound plus its
//!   already-in-flight responses).
//! * **Idle connections cost zero CPU.** No per-connection timers; a
//!   registered-but-quiet socket is never touched between selector
//!   events. (The loop itself ticks at `IDLE_TICK` as a shutdown
//!   belt-and-braces; that is one wakeup per tick for the whole
//!   process, independent of connection count.)
//! * **Gauges stay truthful on every exit path.** `active_connections`
//!   decrements when the selector observes EOF, error, or hangup —
//!   not just on protocol-clean closes.
//!
//! The `shutdown` verb keeps its ack-first contract: `handle_line`
//! flips the flag, the loop flushes the ack to the requesting client,
//! and only then does the (blocking) drain + cache persist run — on
//! the loop thread, which is about to exit anyway. The loop never
//! exits while a dispatched request is outstanding, so the flag being
//! observable before the ack's `Done` arrives cannot drop the ack.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use polling::{Event, Interest, Poller, Waker};

use crate::Hub;

const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKER: usize = 1;
const TOKEN_FIRST_CONN: usize = 16;

/// Defensive re-check interval for the selector wait; one wakeup per
/// tick for the whole process, independent of connection count.
const IDLE_TICK: Duration = Duration::from_millis(500);

/// Read chunk size. Lines longer than this simply span multiple reads.
const READ_CHUNK: usize = 8192;

/// Hard per-connection line-length bound; a peer streaming an unbounded
/// "line" is cut off rather than allowed to grow the buffer forever.
const MAX_LINE: usize = 16 * 1024 * 1024;

/// A parsed request on its way to the workers.
struct Job {
    token: usize,
    seq: u64,
    line: String,
}

/// A finished response on its way back to the loop.
struct Done {
    token: usize,
    seq: u64,
    response: String,
    keep_going: bool,
}

struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    /// Unsent response bytes (front = next byte on the wire).
    out: VecDeque<u8>,
    /// Sequence assigned to the next parsed line.
    next_seq: u64,
    /// Sequence whose response must hit `out` next.
    write_seq: u64,
    /// Out-of-order completed responses parked until their turn.
    ready: BTreeMap<u64, (String, bool)>,
    /// Peer sent EOF; close once all responses have flushed.
    read_closed: bool,
    /// Reading suspended by the output-buffer bound.
    paused: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn desired_interest(&self) -> Interest {
        let mut want = Interest::NONE;
        if !self.read_closed && !self.paused {
            want = want.and(Interest::READ);
        }
        if !self.out.is_empty() {
            want = want.and(Interest::WRITE);
        }
        want
    }

    /// Requests dispatched whose responses have not yet been promoted
    /// into the output queue.
    fn outstanding(&self) -> u64 {
        self.next_seq - self.write_seq
    }
}

/// The running event transport: selector thread + request workers.
pub(crate) struct EventDriver {
    driver: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    waker: Arc<Waker>,
}

impl EventDriver {
    /// Wakes the loop (so an externally-initiated shutdown is noticed
    /// immediately) and joins every thread. Idempotent.
    pub(crate) fn join(&self) {
        let _ = self.waker.wake();
        if let Some(d) = self.driver.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = d.join();
        }
        let workers: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for w in workers {
            let _ = w.join();
        }
    }
}

/// Starts the selector thread and request workers for `listener`.
pub(crate) fn serve(hub: Arc<Hub>, listener: TcpListener) -> io::Result<EventDriver> {
    listener.set_nonblocking(true)?;
    let poller = Arc::new(Poller::new()?);
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    let waker = Arc::new(Waker::new(&poller, TOKEN_WAKER)?);

    let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<Done>();
    let job_rx = Arc::new(Mutex::new(job_rx));

    let n_workers = hub.config().request_threads.max(1);
    let mut workers = Vec::with_capacity(n_workers);
    for i in 0..n_workers {
        let hub = Arc::clone(&hub);
        let job_rx = Arc::clone(&job_rx);
        let done_tx = done_tx.clone();
        let waker = Arc::clone(&waker);
        workers.push(
            std::thread::Builder::new()
                .name(format!("nvc-hub-req-{i}"))
                .spawn(move || worker_loop(&hub, &job_rx, &done_tx, &waker))
                .expect("spawn hub request worker"),
        );
    }
    drop(done_tx);

    let driver = {
        let waker = Arc::clone(&waker);
        std::thread::Builder::new()
            .name("nvc-hub-event".to_string())
            .spawn(move || event_loop(&hub, listener, &poller, &waker, job_tx, done_rx))
            .expect("spawn hub event loop")
    };
    Ok(EventDriver {
        driver: Mutex::new(Some(driver)),
        workers: Mutex::new(workers),
        waker,
    })
}

fn worker_loop(hub: &Hub, jobs: &Arc<Mutex<Receiver<Job>>>, done: &Sender<Done>, waker: &Waker) {
    loop {
        // One worker parks inside `recv` holding the lock; its peers
        // queue on the mutex. Each arriving job releases exactly one.
        let job = {
            let rx = jobs.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(job) = job else {
            return; // loop exited, channel closed
        };
        // One trace id per protocol line — the same boundary the
        // threads transport scopes explicitly.
        let _trace = if nvc_obs::tracing_enabled() {
            Some(nvc_obs::trace_scope(nvc_obs::next_trace_id()))
        } else {
            None
        };
        let (response, keep_going) = hub.handle_line(&job.line);
        let sent = done.send(Done {
            token: job.token,
            seq: job.seq,
            response,
            keep_going,
        });
        if sent.is_err() {
            return; // loop gone
        }
        let _ = waker.wake();
    }
}

fn event_loop(
    hub: &Hub,
    listener: TcpListener,
    poller: &Poller,
    waker: &Waker,
    job_tx: Sender<Job>,
    done_rx: Receiver<Done>,
) {
    let max_out = hub.config().max_output_buffer.max(READ_CHUNK);
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    let mut events: Vec<Event> = Vec::new();
    // Tokens whose state changed this iteration (only these need their
    // interest re-armed — keeps per-wakeup work O(ready), not O(conns)).
    let mut touched: Vec<usize> = Vec::new();
    // The connection owed the shutdown ack, once one exists.
    let mut ack_conn: Option<usize> = None;

    loop {
        let _ = poller.wait(&mut events, Some(IDLE_TICK));
        touched.clear();
        let mut dead: Vec<usize> = Vec::new();
        let dispatch = !hub.is_shutting_down();

        for ev in &events {
            match ev.token {
                TOKEN_LISTENER => {
                    if dispatch {
                        accept_ready(hub, &listener, poller, &mut conns, &mut next_token);
                    }
                }
                TOKEN_WAKER => waker.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue; // closed earlier this iteration
                    };
                    touched.push(token);
                    let mut alive = true;
                    if ev.readable {
                        alive = drain_readable(conn, token, &job_tx, dispatch);
                    }
                    if alive && ev.writable {
                        alive = flush_out(conn);
                    }
                    if !alive {
                        dead.push(token);
                    }
                }
            }
        }

        // Route finished responses; each may unblock in-order writes.
        loop {
            match done_rx.try_recv() {
                Ok(done) => {
                    let token = done.token;
                    let Some(conn) = conns.get_mut(&token) else {
                        continue; // connection died while the request ran
                    };
                    touched.push(token);
                    conn.ready
                        .insert(done.seq, (done.response, done.keep_going));
                    if promote_ready(conn) {
                        ack_conn = Some(token);
                    }
                    if !flush_out(conn) {
                        dead.push(token);
                    }
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }

        // Re-arm interest, apply backpressure, reap drained EOF conns.
        touched.sort_unstable();
        touched.dedup();
        for &token in &touched {
            if dead.contains(&token) {
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            conn.paused = if conn.paused {
                conn.out.len() > max_out / 2 // resume below half
            } else {
                conn.out.len() > max_out
            };
            if conn.read_closed && conn.outstanding() == 0 && conn.out.is_empty() {
                dead.push(token);
                continue;
            }
            let want = conn.desired_interest();
            if want != conn.interest {
                let _ = poller.modify(conn.stream.as_raw_fd(), token, want);
                conn.interest = want;
            }
        }
        for token in dead {
            close_conn(hub, poller, &mut conns, token);
        }

        if hub.is_shutting_down() {
            // Never exit while a dispatched request is outstanding (its
            // Done — possibly the shutdown ack itself — is still owed),
            // and never before the ack has flushed to its client.
            let quiesced = conns.values().all(|c| c.outstanding() == 0);
            let ack_flushed = match ack_conn {
                None => true, // externally initiated shutdown
                Some(t) => conns.get(&t).is_none_or(|c| c.out.is_empty()),
            };
            if quiesced && ack_flushed {
                // Blocking drain + persist is fine here: the loop is
                // terminating and every remaining connection closes
                // right after. (No-op if shutdown was external.)
                hub.shutdown();
                let open: Vec<usize> = conns.keys().copied().collect();
                for token in open {
                    close_conn(hub, poller, &mut conns, token);
                }
                return;
            }
        }
    }
}

/// Accepts until the listener would block.
fn accept_ready(
    hub: &Hub,
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<usize, Conn>,
    next_token: &mut usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if poller
                    .register(stream.as_raw_fd(), token, Interest::READ)
                    .is_err()
                {
                    continue; // selector refused the fd: drop the socket
                }
                hub.connections.inc();
                hub.active_connections.inc();
                conns.insert(
                    token,
                    Conn {
                        stream,
                        read_buf: Vec::new(),
                        out: VecDeque::new(),
                        next_seq: 0,
                        write_seq: 0,
                        ready: BTreeMap::new(),
                        read_closed: false,
                        paused: false,
                        interest: Interest::READ,
                    },
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                // Transient accept failures (ECONNABORTED, fd
                // exhaustion) must not kill the loop.
                eprintln!("nvc hub: accept failed (retrying): {e}");
                return;
            }
        }
    }
}

/// Reads until the socket would block, dispatching every complete line
/// (unless the hub is shutting down, in which case parsed lines are
/// dropped — the connection is about to close). Returns `false` when
/// the connection must close.
fn drain_readable(conn: &mut Conn, token: usize, job_tx: &Sender<Job>, dispatch: bool) -> bool {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        let t_read = std::time::Instant::now();
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                nvc_obs::record_span("tcp_read", 0, t_read, t_read.elapsed());
                conn.read_buf.extend_from_slice(&chunk[..n]);
                if conn.read_buf.len() > MAX_LINE {
                    return false; // unbounded "line": cut the peer off
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    while let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') {
        let line_bytes: Vec<u8> = conn.read_buf.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&line_bytes);
        let line = line.trim();
        if line.is_empty() || !dispatch {
            continue;
        }
        let seq = conn.next_seq;
        conn.next_seq += 1;
        if job_tx
            .send(Job {
                token,
                seq,
                line: line.to_string(),
            })
            .is_err()
        {
            return false; // workers gone: shutting down
        }
    }
    !(conn.read_closed && conn.outstanding() == 0 && conn.out.is_empty())
}

/// Moves in-order completed responses into the output queue. Returns
/// `true` when one of them was a shutdown ack.
fn promote_ready(conn: &mut Conn) -> bool {
    let mut saw_ack = false;
    while let Some((response, keep_going)) = conn.ready.remove(&conn.write_seq) {
        conn.write_seq += 1;
        conn.out.extend(response.as_bytes());
        conn.out.push_back(b'\n');
        if !keep_going {
            saw_ack = true;
        }
    }
    saw_ack
}

/// Writes queued bytes until empty or the socket would block. Returns
/// `false` when the connection must close.
fn flush_out(conn: &mut Conn) -> bool {
    while !conn.out.is_empty() {
        let (front, _) = conn.out.as_slices();
        let t_write = std::time::Instant::now();
        match conn.stream.write(front) {
            Ok(0) => return false,
            Ok(n) => {
                nvc_obs::record_span("tcp_write", 0, t_write, t_write.elapsed());
                conn.out.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    true
}

fn close_conn(hub: &Hub, poller: &Poller, conns: &mut HashMap<usize, Conn>, token: usize) {
    if let Some(conn) = conns.remove(&token) {
        let _ = poller.deregister(conn.stream.as_raw_fd());
        hub.active_connections.dec();
    }
}
