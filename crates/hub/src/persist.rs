//! The persistent decision-cache snapshot format.
//!
//! A hub restart should not re-pay every embedding + policy forward the
//! previous process already did — but it also must never serve a cached
//! decision computed by a *different* checkpoint. Each model's cache
//! section is therefore stamped with the owning checkpoint's content
//! hash (`nvc_nn::serialize::checkpoint_hash`): on restore, a matching
//! hash readmits the entries, a mismatch discards them (counted in
//! `entries_invalidated_by_version`).
//!
//! The format is line-oriented text, like the `nvc-nn` checkpoint
//! format (the offline dependency set has no binary serializer):
//!
//! ```text
//! nvc-hub-cache v1
//! model <name> <checkpoint_hash:016x> <n_entries>
//! <sample_key:016x> <vf_idx> <if_idx>
//! …
//! ```
//!
//! Entries are written coldest-first per shard (the order
//! `ShardedLruCache::snapshot` produces), so a restore reproduces the
//! original eviction order.

use std::fmt::Write as _;

/// One model's cache image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSection {
    /// Registry name the cache belonged to.
    pub model: String,
    /// Hash of the checkpoint that computed these decisions.
    pub checkpoint_hash: u64,
    /// `(sample_key, (vf_idx, if_idx))`, coldest first.
    pub entries: Vec<(u64, (usize, usize))>,
}

/// Errors from parsing a snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    message: String,
    line: usize,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cache snapshot line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SnapshotError {}

fn err(message: impl Into<String>, line: usize) -> SnapshotError {
    SnapshotError {
        message: message.into(),
        line,
    }
}

/// Renders `sections` to the snapshot text format.
pub fn to_string(sections: &[CacheSection]) -> String {
    let mut out = String::from("nvc-hub-cache v1\n");
    for s in sections {
        let _ = writeln!(
            out,
            "model {} {:016x} {}",
            s.model,
            s.checkpoint_hash,
            s.entries.len()
        );
        for (key, (vf, if_)) in &s.entries {
            let _ = writeln!(out, "{key:016x} {vf} {if_}");
        }
    }
    out
}

/// Parses a snapshot produced by [`to_string`], verifying each
/// section's declared entry count — a truncated file (crashed writer,
/// partial copy) restores nothing rather than restoring garbage.
///
/// # Errors
///
/// Returns [`SnapshotError`] on any structural problem or count
/// mismatch.
pub fn parse(text: &str) -> Result<Vec<CacheSection>, SnapshotError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err("empty snapshot", 1))?;
    if header.trim() != "nvc-hub-cache v1" {
        return Err(err("bad header", 1));
    }
    let mut out: Vec<CacheSection> = Vec::new();
    // (declared entry count, header line) of each parsed section.
    let mut declared: Vec<(usize, usize)> = Vec::new();
    for (ln, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.next().expect("non-empty line has a first token");
        if first == "model" {
            let model = parts
                .next()
                .ok_or_else(|| err("missing model name", ln + 1))?
                .to_string();
            let checkpoint_hash = parts
                .next()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| err("bad checkpoint hash", ln + 1))?;
            let count: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad entry count", ln + 1))?;
            declared.push((count, ln + 1));
            out.push(CacheSection {
                model,
                checkpoint_hash,
                entries: Vec::new(),
            });
        } else {
            let section = out
                .last_mut()
                .ok_or_else(|| err("entry before any `model` header", ln + 1))?;
            let key = u64::from_str_radix(first, 16)
                .map_err(|_| err(format!("bad key `{first}`"), ln + 1))?;
            let vf: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad vf index", ln + 1))?;
            let if_: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad if index", ln + 1))?;
            section.entries.push((key, (vf, if_)));
        }
    }
    for (section, (count, ln)) in out.iter().zip(&declared) {
        if section.entries.len() != *count {
            return Err(err(
                format!(
                    "section `{}` declares {count} entries, found {}",
                    section.model,
                    section.entries.len()
                ),
                *ln,
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sections() -> Vec<CacheSection> {
        vec![
            CacheSection {
                model: "prod".into(),
                checkpoint_hash: 0xDEAD_BEEF_0123_4567,
                entries: vec![(0x1, (2, 3)), (u64::MAX, (0, 0))],
            },
            CacheSection {
                model: "canary".into(),
                checkpoint_hash: 7,
                entries: vec![],
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let sections = sample_sections();
        let text = to_string(&sections);
        assert_eq!(parse(&text).unwrap(), sections);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(parse("").is_err());
        assert!(parse("who knows\n").is_err());
        assert!(
            parse("nvc-hub-cache v1\n0123 1 2\n").is_err(),
            "entry before header"
        );
        assert!(
            parse("nvc-hub-cache v1\nmodel m zz 1\n").is_err(),
            "bad hash"
        );
        let text = to_string(&sample_sections());
        // Drop the last entry line: declared counts no longer match.
        let truncated: String = text.lines().collect::<Vec<_>>()[..3].join("\n");
        assert!(parse(&truncated).is_err(), "truncation must fail");
    }

    #[test]
    fn empty_section_list_roundtrips() {
        assert_eq!(parse(&to_string(&[])).unwrap(), vec![]);
    }
}
