//! code2vec-style loop embeddings.
//!
//! §3.1 of the paper: "Code is first decomposed to a collection of paths in
//! its abstract syntax tree. Then, the network simultaneously learns the
//! atomic representation of each path while learning how to aggregate a set
//! of them." The resulting fixed-length code vector (340 features in the
//! paper) is the RL agent's observation.
//!
//! This crate reimplements that pipeline natively:
//!
//! * [`paths`] — extracts leaf-to-leaf AST paths from a loop statement,
//!   with the name normalization the paper found "crucial for reducing
//!   noise" (variable names are replaced by occurrence-ordered
//!   placeholders so renamed copies of a loop embed identically);
//! * [`vocab`] — hashing-trick vocabularies for terminals and paths;
//! * [`model`] — the attention encoder: per path-context
//!   `c_i = tanh(W · [e_start; e_path; e_end])`, attention weights
//!   `α = softmax(c · a)`, code vector `v = Σ α_i c_i`, trained end-to-end
//!   through `nvc-nn`. Batches of loops run as **one segmented forward**
//!   ([`CodeEmbedder::forward_batch`]): ragged context counts become a
//!   `Segments` row partition, so training, serving and the supervised
//!   agents all share a single ragged attention reduce instead of a
//!   per-sample encoder loop — bitwise-identical to the per-sample
//!   spelling, values and gradients both.

pub mod model;
pub mod paths;
pub mod sites;
pub mod vocab;

pub use model::{CodeEmbedder, EmbedConfig, EmbedError};
pub use paths::{extract_path_contexts, normalize_terminals, PathContext};
pub use sites::{extract_loop_samples, LoopSite};
pub use vocab::{hash_token, Fnv1a, PathSample};

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_frontend::parse_statement;
    use nvc_nn::{Graph, ParamStore};

    fn sample_of(src: &str, cfg: &EmbedConfig) -> PathSample {
        let stmt = parse_statement(src).expect("parse");
        let ctxs = extract_path_contexts(&stmt, cfg.max_paths);
        PathSample::from_contexts(&ctxs, cfg)
    }

    #[test]
    fn end_to_end_embedding_forward() {
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(3);
        let embedder = CodeEmbedder::new(&mut store, &cfg);
        let s = sample_of("for (int i = 0; i < n; i++) { a[i] = b[i] * 2; }", &cfg);
        let mut g = Graph::new(&store);
        let code = embedder.forward(&mut g, &s);
        assert_eq!(g.value(code).shape(), (1, cfg.code_dim));
        assert!(g.value(code).data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn identical_loops_embed_identically() {
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(3);
        let embedder = CodeEmbedder::new(&mut store, &cfg);
        let s1 = sample_of("for (int i = 0; i < n; i++) { s += a[i]; }", &cfg);
        let s2 = sample_of("for (int i = 0; i < n; i++) { s += a[i]; }", &cfg);
        let mut g = Graph::new(&store);
        let c1 = embedder.forward(&mut g, &s1);
        let c2 = embedder.forward(&mut g, &s2);
        assert_eq!(g.value(c1), g.value(c2));
    }

    /// §3.2: dataset variants made "by changing the names of the
    /// parameters … crucial for reducing noise in the code embedding
    /// generator".
    #[test]
    fn renamed_loops_embed_identically() {
        let cfg = EmbedConfig::fast();
        let s1 = sample_of(
            "for (int i = 0; i < n; i++) { acc += data[i] * data[i]; }",
            &cfg,
        );
        let s2 = sample_of(
            "for (int k = 0; k < len; k++) { sum += vec[k] * vec[k]; }",
            &cfg,
        );
        assert_eq!(s1, s2, "alpha-renamed loops must produce equal samples");
    }

    #[test]
    fn different_structure_embeds_differently() {
        let cfg = EmbedConfig::fast();
        let s1 = sample_of("for (int i = 0; i < n; i++) { s += a[i]; }", &cfg);
        let s2 = sample_of(
            "for (int i = 0; i < n; i++) { a[i] = b[i] > 0 ? b[i] : 0; }",
            &cfg,
        );
        assert_ne!(s1, s2);
    }

    #[test]
    fn gradients_flow_into_embedding_tables() {
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(3);
        let embedder = CodeEmbedder::new(&mut store, &cfg);
        let s = sample_of("for (int i = 0; i < n; i++) { a[i] = b[i] + c[i]; }", &cfg);
        let mut g = Graph::new(&store);
        let code = embedder.forward(&mut g, &s);
        let loss = g.sum_all(code);
        g.backward(loss);
        let grads = g.param_grads();
        assert!(grads.contains_key(&embedder.token_table()));
        assert!(grads.contains_key(&embedder.path_table()));
        assert!(grads.contains_key(&embedder.context_weight()));
        assert!(grads.contains_key(&embedder.attention_vector()));
        assert!(grads[&embedder.attention_vector()].norm() > 0.0);
    }
}
