//! The attention-based code encoder (code2vec's network half).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use nvc_nn::{Graph, NodeId, ParamId, ParamStore, Segments, Tensor};

use crate::vocab::PathSample;

/// Errors surfaced by the encoder's batched entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbedError {
    /// [`CodeEmbedder::forward_batch`] was handed an empty sample slice.
    /// Batched callers (the serve flush loop, rollout collection) must
    /// skip empty flushes instead of crashing a worker on this.
    EmptyBatch,
}

impl std::fmt::Display for EmbedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbedError::EmptyBatch => write!(f, "forward_batch needs at least one sample"),
        }
    }
}

impl std::error::Error for EmbedError {}

/// Hyperparameters of the embedding network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmbedConfig {
    /// Rows of the terminal-token embedding table.
    pub token_buckets: usize,
    /// Rows of the path embedding table.
    pub path_buckets: usize,
    /// Terminal embedding width.
    pub token_dim: usize,
    /// Path embedding width.
    pub path_dim: usize,
    /// Code-vector width (the observation the agent sees).
    pub code_dim: usize,
    /// Maximum path contexts per loop.
    pub max_paths: usize,
}

impl EmbedConfig {
    /// The paper's configuration: a 340-feature code vector (§3.1).
    pub fn paper() -> Self {
        EmbedConfig {
            token_buckets: 2048,
            path_buckets: 4096,
            token_dim: 128,
            path_dim: 128,
            code_dim: 340,
            max_paths: 100,
        }
    }

    /// A small configuration for tests and fast experimentation.
    pub fn fast() -> Self {
        EmbedConfig {
            token_buckets: 256,
            path_buckets: 512,
            token_dim: 16,
            path_dim: 16,
            code_dim: 32,
            max_paths: 24,
        }
    }

    /// Width of one concatenated path-context row.
    pub fn context_width(&self) -> usize {
        2 * self.token_dim + self.path_dim
    }
}

impl Default for EmbedConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The code2vec-style encoder. Owns parameter handles; weights live in the
/// shared [`ParamStore`] so the PPO update trains them end-to-end.
#[derive(Debug, Clone)]
pub struct CodeEmbedder {
    cfg: EmbedConfig,
    token_table: ParamId,
    path_table: ParamId,
    w_context: ParamId,
    attention: ParamId,
}

impl CodeEmbedder {
    /// Registers the encoder's parameters in `store`.
    pub fn new(store: &mut ParamStore, cfg: &EmbedConfig) -> Self {
        let token_table =
            store.param_uniform("embed.tokens", cfg.token_buckets, cfg.token_dim, 0.25);
        let path_table = store.param_uniform("embed.paths", cfg.path_buckets, cfg.path_dim, 0.25);
        let w_context = store.param_xavier("embed.w", cfg.context_width(), cfg.code_dim);
        let attention = store.param_xavier("embed.attn", cfg.code_dim, 1);
        CodeEmbedder {
            cfg: cfg.clone(),
            token_table,
            path_table,
            w_context,
            attention,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &EmbedConfig {
        &self.cfg
    }

    /// Terminal table handle (for tests/inspection).
    pub fn token_table(&self) -> ParamId {
        self.token_table
    }

    /// Path table handle.
    pub fn path_table(&self) -> ParamId {
        self.path_table
    }

    /// Context transform handle.
    pub fn context_weight(&self) -> ParamId {
        self.w_context
    }

    /// Attention vector handle.
    pub fn attention_vector(&self) -> ParamId {
        self.attention
    }

    /// Encodes one loop sample into a `1×code_dim` vector node.
    ///
    /// Empty samples (loops with fewer than two leaves) embed to zero.
    ///
    /// The embedding tables are never cloned onto the tape: the per-path
    /// rows are gathered straight from the parameter store
    /// ([`Graph::gather_param_rows`]), which removes the multi-megabyte
    /// table copy each sample's graph used to start with. Gradients still
    /// scatter-add into the tables as before. The small dense parameters
    /// (`W`, attention) are memoized per graph, so a batched forward
    /// reads them once, not once per sample.
    pub fn forward(&self, g: &mut Graph<'_>, sample: &PathSample) -> NodeId {
        if sample.is_empty() {
            return g.input(Tensor::zeros(1, self.cfg.code_dim));
        }
        let w = g.param(self.w_context);
        let attn = g.param(self.attention);

        let starts = g.gather_param_rows(self.token_table, &sample.starts); // n × dt
        let mids = g.gather_param_rows(self.path_table, &sample.paths); // n × dp
        let ends = g.gather_param_rows(self.token_table, &sample.ends); // n × dt
        let ctx = g.concat_cols(&[starts, mids, ends]); // n × (2dt+dp)
        let proj = g.matmul(ctx, w); // n × code
        let c = g.tanh(proj);

        let scores = g.matmul(c, attn); // n × 1
        let scores_row = g.transpose(scores); // 1 × n
        let alpha = g.softmax_rows(scores_row); // 1 × n
        g.matmul(alpha, c) // 1 × code
    }

    /// Encodes a batch of samples into one `n × code_dim` node (row `i`
    /// is exactly [`CodeEmbedder::forward`] of `samples[i]`, bitwise).
    /// Batched consumers (PPO rollout collection and minibatches, the
    /// serving layer's flush batches, the NNS/ranker labelling passes)
    /// stack here and run downstream networks once over all rows.
    ///
    /// Context counts are ragged, so the batch runs as a **segmented**
    /// forward rather than a per-sample loop: every sample's token rows
    /// are pulled in one [`Graph::gather_param_rows`] (interleaved
    /// per-sample so table gradients scatter in the per-sample order),
    /// the whole concatenated context matrix goes through one projection
    /// + `tanh`, and attention is one `segment_softmax_rows` +
    /// `segment_weighted_sum` over a [`Segments`] row partition. That
    /// single stacked `N×context_width · context_width×code_dim`
    /// projection is the flop-dominant matmul of the whole system, and
    /// the segmented layout makes it row-parallel: with
    /// `NvConfig::matmul_threads > 1` the `nvc-nn` kernel shards its
    /// output rows across scoped threads (and runs 8-wide unrolled inner
    /// loops) while keeping every row's accumulation order — and thus
    /// bitwise parity — intact. The
    /// segment kernels fix their reduction order per segment, so values
    /// *and* parameter gradients stay bitwise-identical to the
    /// per-sample spelling ([`CodeEmbedder::forward_batch_reference`],
    /// enforced by parity tests).
    ///
    /// Empty samples embed to zero rows, exactly as in [`forward`].
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::EmptyBatch`] when `samples` is empty (a
    /// zero-row observation matrix has no meaning downstream).
    ///
    /// [`forward`]: CodeEmbedder::forward
    pub fn forward_batch(
        &self,
        g: &mut Graph<'_>,
        samples: &[&PathSample],
    ) -> Result<NodeId, EmbedError> {
        if samples.is_empty() {
            return Err(EmbedError::EmptyBatch);
        }
        let segs = Segments::from_lens(samples.iter().map(|s| s.len()));
        let total = segs.total_rows();
        if total == 0 {
            // All samples empty: the whole batch embeds to zero and no
            // parameter is touched (mirrors `forward`'s empty case).
            return Ok(g.input(Tensor::zeros(samples.len(), self.cfg.code_dim)));
        }

        // One token gather for starts AND ends, interleaved per sample
        // (sample 0 starts, sample 0 ends, sample 1 starts, …): this is
        // the exact order the per-sample tape scatters token-table
        // gradients in, which keeps repeated table rows bitwise-identical
        // under f32 accumulation. Paths go in one gather of their own.
        let mut tok_idx = Vec::with_capacity(2 * total);
        let mut path_idx = Vec::with_capacity(total);
        let mut start_rows = Vec::with_capacity(total);
        let mut end_rows = Vec::with_capacity(total);
        for s in samples {
            let base = tok_idx.len();
            let n = s.len();
            tok_idx.extend_from_slice(&s.starts);
            tok_idx.extend_from_slice(&s.ends);
            path_idx.extend_from_slice(&s.paths);
            start_rows.extend(base..base + n);
            end_rows.extend(base + n..base + 2 * n);
        }

        let w = g.param(self.w_context);
        let attn = g.param(self.attention);
        let tok = g.gather_param_rows(self.token_table, &tok_idx); // 2N × dt
        let mids = g.gather_param_rows(self.path_table, &path_idx); // N × dp
        let starts = g.gather_rows(tok, &start_rows); // N × dt
        let ends = g.gather_rows(tok, &end_rows); // N × dt
        let ctx = g.concat_cols(&[starts, mids, ends]); // N × (2dt+dp)
        let proj = g.segment_matmul(ctx, w, &segs); // N × code
        let c = g.tanh(proj);
        let scores = g.segment_matmul(c, attn, &segs); // N × 1
        let alpha = g.segment_softmax_rows(scores, &segs); // N × 1
        Ok(g.segment_weighted_sum(alpha, c, &segs)) // n × code
    }

    /// Encodes one row per input sample — the deployed batched entry
    /// point rollout collection, batched greedy inference, and the
    /// supervised labelling passes share. Distinct samples (content
    /// equality) embed **once** through the segmented
    /// [`CodeEmbedder::forward_batch`] and a row gather fans the
    /// embeddings back out to their batch positions: a rollout or flush
    /// batch full of repeated loop shapes pays for each shape once.
    ///
    /// Row `i`'s value is bitwise-identical to
    /// [`CodeEmbedder::forward`] of `rows[i]`. Gradients flow through
    /// the gather, so repeated rows scatter-add into one embedding chain
    /// — the same gradient-carrying-gather contract the PPO minibatch
    /// dedup established.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::EmptyBatch`] when `rows` is empty.
    pub fn forward_rows(
        &self,
        g: &mut Graph<'_>,
        rows: &[&PathSample],
    ) -> Result<NodeId, EmbedError> {
        if rows.is_empty() {
            return Err(EmbedError::EmptyBatch);
        }
        let mut unique: Vec<&PathSample> = Vec::new();
        let mut slot: HashMap<&PathSample, usize> = HashMap::new();
        let row_of: Vec<usize> = rows
            .iter()
            .map(|&s| {
                *slot.entry(s).or_insert_with(|| {
                    unique.push(s);
                    unique.len() - 1
                })
            })
            .collect();
        let uobs = self.forward_batch(g, &unique)?;
        if unique.len() == rows.len() {
            // Nothing repeated: the stacked node already is the answer.
            return Ok(uobs);
        }
        Ok(g.gather_rows(uobs, &row_of))
    }

    /// The per-sample spelling of [`CodeEmbedder::forward_batch`]: one
    /// [`CodeEmbedder::forward`] chain per sample, stacked with
    /// `concat_rows`. Kept as the parity reference the segmented path is
    /// tested against (values and gradients, bitwise) and as the baseline
    /// the `ext_train_throughput` encoder gate measures.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::EmptyBatch`] when `samples` is empty.
    pub fn forward_batch_reference(
        &self,
        g: &mut Graph<'_>,
        samples: &[&PathSample],
    ) -> Result<NodeId, EmbedError> {
        if samples.is_empty() {
            return Err(EmbedError::EmptyBatch);
        }
        let rows: Vec<NodeId> = samples.iter().map(|s| self.forward(g, s)).collect();
        Ok(if rows.len() == 1 {
            rows[0]
        } else {
            g.concat_rows(&rows)
        })
    }

    /// Convenience: encodes a sample and returns the plain vector (no
    /// gradients), for inference-time consumers like NNS and decision
    /// trees.
    pub fn encode(&self, store: &ParamStore, sample: &PathSample) -> Vec<f32> {
        let mut g = Graph::new(store);
        let node = self.forward(&mut g, sample);
        g.value(node).data().to_vec()
    }

    /// Encodes a whole batch in one segmented forward (no gradients) —
    /// the batched counterpart of [`CodeEmbedder::encode`] that the
    /// NNS/decision-tree/ranker labelling passes use instead of looping
    /// `encode` per sample. Row `i` equals `encode(samples[i])` bitwise;
    /// repeated samples embed once ([`CodeEmbedder::forward_rows`]).
    pub fn encode_batch(&self, store: &ParamStore, samples: &[&PathSample]) -> Vec<Vec<f32>> {
        if samples.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new(store);
        let node = self.forward_rows(&mut g, samples).expect("non-empty batch");
        let v = g.value(node);
        (0..samples.len()).map(|r| v.row(r).to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::extract_path_contexts;
    use nvc_frontend::parse_statement;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn sample(src: &str, cfg: &EmbedConfig) -> PathSample {
        let stmt = parse_statement(src).unwrap();
        PathSample::from_contexts(&extract_path_contexts(&stmt, cfg.max_paths), cfg)
    }

    /// A synthetic sample with `n` contexts drawn from `rng`. Small table
    /// sizes (the fast config) make repeated indices — the case where
    /// scatter-order bugs would surface — common.
    fn random_sample(n: usize, cfg: &EmbedConfig, rng: &mut ChaCha8Rng) -> PathSample {
        PathSample {
            starts: (0..n)
                .map(|_| rng.gen_range(0..cfg.token_buckets))
                .collect(),
            paths: (0..n).map(|_| rng.gen_range(0..cfg.path_buckets)).collect(),
            ends: (0..n)
                .map(|_| rng.gen_range(0..cfg.token_buckets))
                .collect(),
        }
    }

    /// Runs a full forward + backward of `samples` through `build`,
    /// returning the stacked values and all parameter gradients. The loss
    /// (`Σ out ⊙ sel` for a fixed random `sel`) makes every output row
    /// contribute a distinct gradient.
    #[allow(clippy::type_complexity)]
    fn values_and_grads(
        store: &ParamStore,
        samples: &[&PathSample],
        sel: &Tensor,
        build: impl Fn(&mut Graph<'_>, &[&PathSample]) -> NodeId,
    ) -> (Tensor, std::collections::HashMap<ParamId, Tensor>) {
        let mut g = Graph::new(store);
        let out = build(&mut g, samples);
        let seln = g.input(sel.clone());
        let prod = g.mul_elem(out, seln);
        let loss = g.sum_all(prod);
        g.backward(loss);
        (g.value(out).clone(), g.param_grads())
    }

    #[test]
    fn paper_config_is_340_dim() {
        assert_eq!(EmbedConfig::paper().code_dim, 340);
        assert_eq!(EmbedConfig::paper().context_width(), 384);
    }

    #[test]
    fn encode_returns_code_dim_vector() {
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(5);
        let e = CodeEmbedder::new(&mut store, &cfg);
        let v = e.encode(&store, &sample("for (int i=0;i<n;i++) { a[i] = 0; }", &cfg));
        assert_eq!(v.len(), cfg.code_dim);
    }

    #[test]
    fn empty_sample_encodes_to_zero() {
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(5);
        let e = CodeEmbedder::new(&mut store, &cfg);
        let v = e.encode(
            &store,
            &PathSample {
                starts: vec![],
                paths: vec![],
                ends: vec![],
            },
        );
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn attention_weights_depend_on_content() {
        // Two structurally different loops must produce different vectors
        // under the same (random) weights.
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(5);
        let e = CodeEmbedder::new(&mut store, &cfg);
        let v1 = e.encode(
            &store,
            &sample("for (int i=0;i<n;i++) { s += a[i]; }", &cfg),
        );
        let v2 = e.encode(
            &store,
            &sample("for (int i=0;i<n;i++) { a[i] = b[2*i] * c[i]; }", &cfg),
        );
        let dist: f32 = v1
            .iter()
            .zip(v2.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!(dist > 1e-6, "different loops should embed differently");
    }

    #[test]
    fn forward_batch_on_empty_slice_is_an_error_not_a_panic() {
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(5);
        let e = CodeEmbedder::new(&mut store, &cfg);
        let mut g = Graph::new(&store);
        assert_eq!(e.forward_batch(&mut g, &[]), Err(EmbedError::EmptyBatch));
        assert_eq!(
            e.forward_batch_reference(&mut g, &[]),
            Err(EmbedError::EmptyBatch)
        );
        assert!(e.encode_batch(&store, &[]).is_empty());
        assert_eq!(
            EmbedError::EmptyBatch.to_string(),
            "forward_batch needs at least one sample"
        );
    }

    #[test]
    fn all_empty_batch_embeds_to_zero_rows() {
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(5);
        let e = CodeEmbedder::new(&mut store, &cfg);
        let empty = PathSample {
            starts: vec![],
            paths: vec![],
            ends: vec![],
        };
        let mut g = Graph::new(&store);
        let out = e.forward_batch(&mut g, &[&empty, &empty]).unwrap();
        assert_eq!(g.value(out).shape(), (2, cfg.code_dim));
        assert!(g.value(out).data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn encode_batch_rows_match_encode() {
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(7);
        let e = CodeEmbedder::new(&mut store, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut samples: Vec<PathSample> = [4usize, 1, 0, 11]
            .iter()
            .map(|&n| random_sample(n, &cfg, &mut rng))
            .collect();
        // A repeated shape exercises the dedup + fan-out path.
        samples.push(samples[0].clone());
        let refs: Vec<&PathSample> = samples.iter().collect();
        let batched = e.encode_batch(&store, &refs);
        for (s, row) in samples.iter().zip(batched.iter()) {
            assert_eq!(row, &e.encode(&store, s), "encode_batch row diverged");
        }
    }

    /// The tentpole invariant at the encoder level: the segmented batched
    /// forward must be bitwise-identical to the per-sample reference —
    /// stacked values AND the gradients of all four parameters (both
    /// embedding tables, the projection, the attention vector) — across
    /// ragged context counts including empty, single-context and
    /// max-width samples.
    #[test]
    fn segmented_forward_batch_matches_reference_bitwise() {
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(13);
        let e = CodeEmbedder::new(&mut store, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for lens in [
            vec![3usize, 7, 1],
            vec![1],
            vec![cfg.max_paths, 1, cfg.max_paths],
            vec![5, 0, 2, 0, 9],
        ] {
            let samples: Vec<PathSample> = lens
                .iter()
                .map(|&n| random_sample(n, &cfg, &mut rng))
                .collect();
            let refs: Vec<&PathSample> = samples.iter().collect();
            let sel = Tensor::from_vec(
                refs.len(),
                cfg.code_dim,
                (0..refs.len() * cfg.code_dim)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
            );
            let (ref_vals, ref_grads) = values_and_grads(&store, &refs, &sel, |g, ss| {
                e.forward_batch_reference(g, ss).unwrap()
            });
            let (seg_vals, seg_grads) =
                values_and_grads(&store, &refs, &sel, |g, ss| g_forward(&e, g, ss));
            assert_eq!(ref_vals, seg_vals, "values diverged for lens {lens:?}");
            for (name, p) in [
                ("token table", e.token_table()),
                ("path table", e.path_table()),
                ("projection", e.context_weight()),
                ("attention", e.attention_vector()),
            ] {
                assert_eq!(
                    ref_grads.get(&p),
                    seg_grads.get(&p),
                    "{name} gradient diverged for lens {lens:?}"
                );
            }
        }
    }

    fn g_forward(e: &CodeEmbedder, g: &mut Graph<'_>, ss: &[&PathSample]) -> NodeId {
        e.forward_batch(g, ss).unwrap()
    }

    proptest! {
        /// Property form of the parity bar: arbitrary ragged batches
        /// (lengths 0..=max_paths, duplicate indices likely) are
        /// bitwise-identical between the segmented and per-sample
        /// spellings — values and all parameter gradients.
        #[test]
        fn prop_segmented_encode_is_bitwise_identical(
            n_samples in 1usize..6,
            shape_seed in 0u64..10_000,
        ) {
            let cfg = EmbedConfig::fast();
            let mut store = ParamStore::new(23);
            let e = CodeEmbedder::new(&mut store, &cfg);
            let mut rng = ChaCha8Rng::seed_from_u64(shape_seed);
            let samples: Vec<PathSample> = (0..n_samples)
                .map(|i| {
                    // Force the edge widths into the mix: a 1-context
                    // sample and a max-width sample appear regularly.
                    let n = match (shape_seed as usize + i) % 5 {
                        0 => 1,
                        1 => cfg.max_paths,
                        _ => rng.gen_range(0..=cfg.max_paths),
                    };
                    random_sample(n, &cfg, &mut rng)
                })
                .collect();
            let refs: Vec<&PathSample> = samples.iter().collect();
            let sel = Tensor::from_vec(
                refs.len(),
                cfg.code_dim,
                (0..refs.len() * cfg.code_dim)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
            );
            let (ref_vals, ref_grads) = values_and_grads(&store, &refs, &sel, |g, ss| {
                e.forward_batch_reference(g, ss).unwrap()
            });
            let (seg_vals, seg_grads) =
                values_and_grads(&store, &refs, &sel, |g, ss| g_forward(&e, g, ss));
            prop_assert_eq!(ref_vals, seg_vals);
            for p in [
                e.token_table(),
                e.path_table(),
                e.context_weight(),
                e.attention_vector(),
            ] {
                prop_assert_eq!(ref_grads.get(&p), seg_grads.get(&p));
            }
        }
    }

    #[test]
    fn embeddings_are_bounded_by_tanh() {
        // The code vector is a convex combination of tanh outputs.
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(5);
        let e = CodeEmbedder::new(&mut store, &cfg);
        let v = e.encode(
            &store,
            &sample("for (int i=0;i<n;i++) { a[i] = b[i]*c[i]+d[i]; }", &cfg),
        );
        assert!(v.iter().all(|x| x.abs() <= 1.0));
    }
}
