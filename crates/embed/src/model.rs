//! The attention-based code encoder (code2vec's network half).

use serde::{Deserialize, Serialize};

use nvc_nn::{Graph, NodeId, ParamId, ParamStore, Tensor};

use crate::vocab::PathSample;

/// Hyperparameters of the embedding network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmbedConfig {
    /// Rows of the terminal-token embedding table.
    pub token_buckets: usize,
    /// Rows of the path embedding table.
    pub path_buckets: usize,
    /// Terminal embedding width.
    pub token_dim: usize,
    /// Path embedding width.
    pub path_dim: usize,
    /// Code-vector width (the observation the agent sees).
    pub code_dim: usize,
    /// Maximum path contexts per loop.
    pub max_paths: usize,
}

impl EmbedConfig {
    /// The paper's configuration: a 340-feature code vector (§3.1).
    pub fn paper() -> Self {
        EmbedConfig {
            token_buckets: 2048,
            path_buckets: 4096,
            token_dim: 128,
            path_dim: 128,
            code_dim: 340,
            max_paths: 100,
        }
    }

    /// A small configuration for tests and fast experimentation.
    pub fn fast() -> Self {
        EmbedConfig {
            token_buckets: 256,
            path_buckets: 512,
            token_dim: 16,
            path_dim: 16,
            code_dim: 32,
            max_paths: 24,
        }
    }

    /// Width of one concatenated path-context row.
    pub fn context_width(&self) -> usize {
        2 * self.token_dim + self.path_dim
    }
}

impl Default for EmbedConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The code2vec-style encoder. Owns parameter handles; weights live in the
/// shared [`ParamStore`] so the PPO update trains them end-to-end.
#[derive(Debug, Clone)]
pub struct CodeEmbedder {
    cfg: EmbedConfig,
    token_table: ParamId,
    path_table: ParamId,
    w_context: ParamId,
    attention: ParamId,
}

impl CodeEmbedder {
    /// Registers the encoder's parameters in `store`.
    pub fn new(store: &mut ParamStore, cfg: &EmbedConfig) -> Self {
        let token_table =
            store.param_uniform("embed.tokens", cfg.token_buckets, cfg.token_dim, 0.25);
        let path_table = store.param_uniform("embed.paths", cfg.path_buckets, cfg.path_dim, 0.25);
        let w_context = store.param_xavier("embed.w", cfg.context_width(), cfg.code_dim);
        let attention = store.param_xavier("embed.attn", cfg.code_dim, 1);
        CodeEmbedder {
            cfg: cfg.clone(),
            token_table,
            path_table,
            w_context,
            attention,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &EmbedConfig {
        &self.cfg
    }

    /// Terminal table handle (for tests/inspection).
    pub fn token_table(&self) -> ParamId {
        self.token_table
    }

    /// Path table handle.
    pub fn path_table(&self) -> ParamId {
        self.path_table
    }

    /// Context transform handle.
    pub fn context_weight(&self) -> ParamId {
        self.w_context
    }

    /// Attention vector handle.
    pub fn attention_vector(&self) -> ParamId {
        self.attention
    }

    /// Encodes one loop sample into a `1×code_dim` vector node.
    ///
    /// Empty samples (loops with fewer than two leaves) embed to zero.
    ///
    /// The embedding tables are never cloned onto the tape: the per-path
    /// rows are gathered straight from the parameter store
    /// ([`Graph::gather_param_rows`]), which removes the multi-megabyte
    /// table copy each sample's graph used to start with. Gradients still
    /// scatter-add into the tables as before. The small dense parameters
    /// (`W`, attention) are memoized per graph, so a batched forward
    /// reads them once, not once per sample.
    pub fn forward(&self, g: &mut Graph<'_>, sample: &PathSample) -> NodeId {
        if sample.is_empty() {
            return g.input(Tensor::zeros(1, self.cfg.code_dim));
        }
        let w = g.param(self.w_context);
        let attn = g.param(self.attention);

        let starts = g.gather_param_rows(self.token_table, &sample.starts); // n × dt
        let mids = g.gather_param_rows(self.path_table, &sample.paths); // n × dp
        let ends = g.gather_param_rows(self.token_table, &sample.ends); // n × dt
        let ctx = g.concat_cols(&[starts, mids, ends]); // n × (2dt+dp)
        let proj = g.matmul(ctx, w); // n × code
        let c = g.tanh(proj);

        let scores = g.matmul(c, attn); // n × 1
        let scores_row = g.transpose(scores); // 1 × n
        let alpha = g.softmax_rows(scores_row); // 1 × n
        g.matmul(alpha, c) // 1 × code
    }

    /// Encodes a batch of samples into one `n × code_dim` node (row `i`
    /// is exactly [`CodeEmbedder::forward`] of `samples[i]`). Batched
    /// consumers (PPO rollout collection and minibatches, the serving
    /// layer) stack here and run downstream networks once over all rows.
    pub fn forward_batch(&self, g: &mut Graph<'_>, samples: &[&PathSample]) -> NodeId {
        assert!(
            !samples.is_empty(),
            "forward_batch needs at least one sample"
        );
        let rows: Vec<NodeId> = samples.iter().map(|s| self.forward(g, s)).collect();
        if rows.len() == 1 {
            rows[0]
        } else {
            g.concat_rows(&rows)
        }
    }

    /// Convenience: encodes a sample and returns the plain vector (no
    /// gradients), for inference-time consumers like NNS and decision
    /// trees.
    pub fn encode(&self, store: &ParamStore, sample: &PathSample) -> Vec<f32> {
        let mut g = Graph::new(store);
        let node = self.forward(&mut g, sample);
        g.value(node).data().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::extract_path_contexts;
    use nvc_frontend::parse_statement;

    fn sample(src: &str, cfg: &EmbedConfig) -> PathSample {
        let stmt = parse_statement(src).unwrap();
        PathSample::from_contexts(&extract_path_contexts(&stmt, cfg.max_paths), cfg)
    }

    #[test]
    fn paper_config_is_340_dim() {
        assert_eq!(EmbedConfig::paper().code_dim, 340);
        assert_eq!(EmbedConfig::paper().context_width(), 384);
    }

    #[test]
    fn encode_returns_code_dim_vector() {
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(5);
        let e = CodeEmbedder::new(&mut store, &cfg);
        let v = e.encode(&store, &sample("for (int i=0;i<n;i++) { a[i] = 0; }", &cfg));
        assert_eq!(v.len(), cfg.code_dim);
    }

    #[test]
    fn empty_sample_encodes_to_zero() {
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(5);
        let e = CodeEmbedder::new(&mut store, &cfg);
        let v = e.encode(
            &store,
            &PathSample {
                starts: vec![],
                paths: vec![],
                ends: vec![],
            },
        );
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn attention_weights_depend_on_content() {
        // Two structurally different loops must produce different vectors
        // under the same (random) weights.
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(5);
        let e = CodeEmbedder::new(&mut store, &cfg);
        let v1 = e.encode(
            &store,
            &sample("for (int i=0;i<n;i++) { s += a[i]; }", &cfg),
        );
        let v2 = e.encode(
            &store,
            &sample("for (int i=0;i<n;i++) { a[i] = b[2*i] * c[i]; }", &cfg),
        );
        let dist: f32 = v1
            .iter()
            .zip(v2.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!(dist > 1e-6, "different loops should embed differently");
    }

    #[test]
    fn embeddings_are_bounded_by_tanh() {
        // The code vector is a convex combination of tanh outputs.
        let cfg = EmbedConfig::fast();
        let mut store = ParamStore::new(5);
        let e = CodeEmbedder::new(&mut store, &cfg);
        let v = e.encode(
            &store,
            &sample("for (int i=0;i<n;i++) { a[i] = b[i]*c[i]+d[i]; }", &cfg),
        );
        assert!(v.iter().all(|x| x.abs() <= 1.0));
    }
}
