//! AST path-context extraction (the code2vec front half).
//!
//! A loop statement is flattened into a tree of labelled nodes; each leaf
//! carries a normalized terminal token. A *path context* is a pair of
//! terminals plus the up-then-down sequence of interior node labels
//! connecting them.

use nvc_frontend::ast::{Expr, ExprKind, Stmt, StmtKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One leaf-to-leaf path context: `(start terminal, path string, end
/// terminal)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathContext {
    /// Normalized token at the start leaf.
    pub start: String,
    /// Rendered interior path (node labels with ↑/↓ direction markers).
    pub path: String,
    /// Normalized token at the end leaf.
    pub end: String,
}

/// Internal flattened AST node.
#[derive(Debug)]
struct TreeNode {
    label: &'static str,
    token: Option<String>,
    children: Vec<usize>,
    parent: Option<usize>,
    depth: usize,
}

#[derive(Debug, Default)]
struct TreeBuilder {
    nodes: Vec<TreeNode>,
    /// Leaf indices in source order.
    leaves: Vec<usize>,
    /// Occurrence-ordered variable renaming.
    var_names: HashMap<String, String>,
}

impl TreeBuilder {
    fn add(&mut self, label: &'static str, token: Option<String>, parent: Option<usize>) -> usize {
        let depth = parent.map_or(0, |p| self.nodes[p].depth + 1);
        self.nodes.push(TreeNode {
            label,
            token,
            children: Vec::new(),
            parent,
            depth,
        });
        let id = self.nodes.len() - 1;
        if let Some(p) = parent {
            self.nodes[p].children.push(id);
        }
        id
    }

    fn leaf(&mut self, label: &'static str, token: String, parent: usize) {
        let id = self.add(label, Some(token), Some(parent));
        self.leaves.push(id);
    }

    fn rename(&mut self, name: &str) -> String {
        let next = format!("VAR{}", self.var_names.len());
        self.var_names
            .entry(name.to_string())
            .or_insert(next)
            .clone()
    }
}

/// Buckets numeric literals so magnitudes, not exact values, shape the
/// embedding.
pub fn normalize_terminals(v: i64) -> String {
    match v {
        0 => "LIT0".into(),
        1 => "LIT1".into(),
        2 => "LIT2".into(),
        v if v > 2 && (v as u64).is_power_of_two() => "LITPOW2".into(),
        v if (3..=64).contains(&v) => "LITSMALL".into(),
        v if v < 0 => "LITNEG".into(),
        _ => "LITBIG".into(),
    }
}

fn build_expr(b: &mut TreeBuilder, e: &Expr, parent: usize) {
    match &e.kind {
        ExprKind::IntLit(v) => b.leaf("IntLit", normalize_terminals(*v), parent),
        ExprKind::FloatLit(_) => b.leaf("FloatLit", "FLIT".into(), parent),
        ExprKind::Ident(name) => {
            let n = b.rename(name);
            b.leaf("Ident", n, parent);
        }
        ExprKind::Index { base, index } => {
            let id = b.add("Index", None, Some(parent));
            build_expr(b, base, id);
            build_expr(b, index, id);
        }
        ExprKind::Call { callee, args } => {
            let id = b.add("Call", None, Some(parent));
            // Callee names are semantic (sqrtf vs foo); keep them verbatim.
            b.leaf("Callee", callee.clone(), id);
            for a in args {
                build_expr(b, a, id);
            }
        }
        ExprKind::Unary { op, operand } => {
            let id = b.add("Unary", None, Some(parent));
            b.leaf("UnOp", op.symbol().to_string(), id);
            build_expr(b, operand, id);
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let id = b.add("Binary", None, Some(parent));
            build_expr(b, lhs, id);
            b.leaf("BinOp", op.symbol().to_string(), id);
            build_expr(b, rhs, id);
        }
        ExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            let id = b.add("Ternary", None, Some(parent));
            build_expr(b, cond, id);
            build_expr(b, then_expr, id);
            build_expr(b, else_expr, id);
        }
        ExprKind::Cast { ty, operand } => {
            let id = b.add("Cast", None, Some(parent));
            b.leaf("Type", ty.c_name().to_string(), id);
            build_expr(b, operand, id);
        }
        ExprKind::Assign { op, target, value } => {
            let label = if op.is_some() {
                "CompoundAssign"
            } else {
                "Assign"
            };
            let id = b.add(label, None, Some(parent));
            build_expr(b, target, id);
            if let Some(op) = op {
                b.leaf("BinOp", op.symbol().to_string(), id);
            }
            build_expr(b, value, id);
        }
        ExprKind::IncDec { target, delta, .. } => {
            let id = b.add("IncDec", None, Some(parent));
            build_expr(b, target, id);
            b.leaf("BinOp", if *delta > 0 { "++" } else { "--" }.into(), id);
        }
    }
}

fn build_stmt(b: &mut TreeBuilder, s: &Stmt, parent: Option<usize>) -> usize {
    match &s.kind {
        StmtKind::Block(stmts) => {
            let id = b.add("Block", None, parent);
            for st in stmts {
                build_stmt(b, st, Some(id));
            }
            id
        }
        StmtKind::Decl { ty, declarators } => {
            let id = b.add("Decl", None, parent);
            b.leaf("Type", ty.c_name().to_string(), id);
            for d in declarators {
                let n = b.rename(&d.name);
                b.leaf("Ident", n, id);
                if let Some(init) = &d.init {
                    build_expr(b, init, id);
                }
            }
            id
        }
        StmtKind::Expr(e) => {
            let id = b.add("ExprStmt", None, parent);
            build_expr(b, e, id);
            id
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            let id = b.add("For", None, parent);
            if let Some(i) = init {
                build_stmt(b, i, Some(id));
            }
            if let Some(c) = cond {
                let cid = b.add("ForCond", None, Some(id));
                build_expr(b, c, cid);
            }
            if let Some(st) = step {
                let sid = b.add("ForStep", None, Some(id));
                build_expr(b, st, sid);
            }
            build_stmt(b, body, Some(id));
            id
        }
        StmtKind::While { cond, body, .. } => {
            let id = b.add("While", None, parent);
            let cid = b.add("WhileCond", None, Some(id));
            build_expr(b, cond, cid);
            build_stmt(b, body, Some(id));
            id
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let id = b.add("If", None, parent);
            let cid = b.add("IfCond", None, Some(id));
            build_expr(b, cond, cid);
            build_stmt(b, then_branch, Some(id));
            if let Some(e) = else_branch {
                build_stmt(b, e, Some(id));
            }
            id
        }
        StmtKind::Return(e) => {
            let id = b.add("Return", None, parent);
            if let Some(e) = e {
                build_expr(b, e, id);
            }
            id
        }
        StmtKind::Break => b.add("Break", None, parent),
        StmtKind::Continue => b.add("Continue", None, parent),
        StmtKind::Empty => b.add("Empty", None, parent),
    }
}

/// Renders the path between two leaves: up to the lowest common ancestor,
/// then down.
fn render_path(b: &TreeBuilder, from: usize, to: usize) -> String {
    // Walk both up to equal depth, then in lockstep to the LCA.
    let mut ua = b.nodes[from].parent;
    let mut ub = b.nodes[to].parent;
    let mut up = Vec::new();
    let mut down = Vec::new();
    while let (Some(a), Some(bb)) = (ua, ub) {
        if a == bb {
            break;
        }
        if b.nodes[a].depth >= b.nodes[bb].depth {
            up.push(b.nodes[a].label);
            ua = b.nodes[a].parent;
        } else {
            down.push(b.nodes[bb].label);
            ub = b.nodes[bb].parent;
        }
    }
    let lca = match (ua, ub) {
        (Some(a), _) => b.nodes[a].label,
        _ => "Root",
    };
    let mut s = String::new();
    for l in &up {
        s.push_str(l);
        s.push('^');
    }
    s.push_str(lca);
    for l in down.iter().rev() {
        s.push('v');
        s.push_str(l);
    }
    s
}

/// Extracts up to `max_paths` path contexts from a loop statement.
///
/// All leaf pairs are enumerated in a deterministic order; when there are
/// more than `max_paths`, pairs are subsampled with a deterministic stride
/// so the selection spreads over the whole loop body rather than
/// concentrating at its start.
pub fn extract_path_contexts(stmt: &Stmt, max_paths: usize) -> Vec<PathContext> {
    let mut b = TreeBuilder::default();
    build_stmt(&mut b, stmt, None);

    let n = b.leaves.len();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            // Bound path length like code2vec (max length 8 + width 2 in
            // the original); very long paths carry little signal.
            pairs.push((i, j));
        }
    }
    let selected: Vec<(usize, usize)> = if pairs.len() <= max_paths {
        pairs
    } else {
        let stride = pairs.len() as f64 / max_paths as f64;
        (0..max_paths)
            .map(|k| pairs[(k as f64 * stride) as usize])
            .collect()
    };

    selected
        .into_iter()
        .map(|(i, j)| {
            let (li, lj) = (b.leaves[i], b.leaves[j]);
            PathContext {
                start: b.nodes[li].token.clone().unwrap_or_default(),
                path: render_path(&b, li, lj),
                end: b.nodes[lj].token.clone().unwrap_or_default(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_frontend::parse_statement;

    fn contexts(src: &str) -> Vec<PathContext> {
        extract_path_contexts(&parse_statement(src).unwrap(), 64)
    }

    #[test]
    fn simple_loop_produces_paths() {
        let c = contexts("for (int i = 0; i < n; i++) { a[i] = b[i]; }");
        assert!(!c.is_empty());
        // Terminals are normalized.
        assert!(c
            .iter()
            .any(|p| p.start.starts_with("VAR") || p.end.starts_with("VAR")));
    }

    #[test]
    fn extraction_is_deterministic() {
        let src = "for (int i = 0; i < n; i++) { s += a[i] * b[i]; }";
        assert_eq!(contexts(src), contexts(src));
    }

    #[test]
    fn renaming_is_alpha_invariant() {
        let c1 = contexts("for (int i = 0; i < n; i++) { total += x[i]; }");
        let c2 = contexts("for (int j = 0; j < m; j++) { acc += y[j]; }");
        assert_eq!(c1, c2);
    }

    #[test]
    fn literal_buckets() {
        assert_eq!(normalize_terminals(0), "LIT0");
        assert_eq!(normalize_terminals(1), "LIT1");
        assert_eq!(normalize_terminals(2), "LIT2");
        assert_eq!(normalize_terminals(64), "LITPOW2");
        assert_eq!(normalize_terminals(37), "LITSMALL");
        assert_eq!(normalize_terminals(100000), "LITBIG");
        assert_eq!(normalize_terminals(-5), "LITNEG");
    }

    #[test]
    fn literal_magnitude_does_not_change_small_constants() {
        // 37 and 41 both bucket to LITSMALL → identical path sets.
        let c1 = contexts("for (int i = 0; i < 37; i++) { a[i] = 0; }");
        let c2 = contexts("for (int i = 0; i < 41; i++) { a[i] = 0; }");
        assert_eq!(c1, c2);
    }

    #[test]
    fn operators_are_terminals() {
        let c = contexts("for (int i = 0; i < n; i++) { a[i] = b[i] * c[i]; }");
        assert!(c.iter().any(|p| p.start == "*" || p.end == "*"));
    }

    #[test]
    fn max_paths_caps_output() {
        let src = "for (int i = 0; i < n; i++) { a[i] = b[i]*c[i] + d[i]*e[i] - f[i]; }";
        let stmt = parse_statement(src).unwrap();
        let c = extract_path_contexts(&stmt, 10);
        assert_eq!(c.len(), 10);
        // Subsampling spreads: first and last pairs differ.
        assert_ne!(c.first(), c.last());
    }

    #[test]
    fn paths_have_direction_markers() {
        let c = contexts("for (int i = 0; i < n; i++) { a[i] = b[i]; }");
        assert!(c
            .iter()
            .any(|p| p.path.contains('^') && p.path.contains('v')));
    }

    #[test]
    fn casts_and_calls_surface_in_terminals() {
        let c = contexts("for (int i = 0; i < n; i++) { a[i] = (int) sqrtf(b[i]); }");
        assert!(c.iter().any(|p| p.start == "sqrtf" || p.end == "sqrtf"));
        assert!(c.iter().any(|p| p.start == "int" || p.end == "int"));
    }

    #[test]
    fn nested_loops_mention_for_twice_in_paths() {
        let c = contexts("for (int i = 0; i < n; i++) for (int j = 0; j < n; j++) a[j] = i;");
        assert!(c.iter().any(|p| {
            let ups = p.path.matches("For").count();
            ups >= 2
        }));
    }
}
