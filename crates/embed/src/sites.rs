//! Whole-file loop sampling: source text → one [`PathSample`] per
//! decidable innermost loop.
//!
//! Both inference products — the one-shot
//! `NeuroVectorizer::vectorize_source` and the `nvc-serve` daemon — need
//! the identical pipeline (extract innermost loops, re-parse each nest
//! text, hash its path contexts) so that their decisions, and the serving
//! layer's cache keys, agree exactly. This module is that single
//! implementation.

use nvc_frontend::{extract_loops, parse_statement, parse_translation_unit, FrontendError};

use crate::model::EmbedConfig;
use crate::paths::extract_path_contexts;
use crate::vocab::PathSample;

/// One decidable innermost loop of a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSite {
    /// Enclosing function name.
    pub function: String,
    /// 1-based line of the loop header (where a pragma goes).
    pub header_line: u32,
    /// The loop's normalized path-context sample (the model observation
    /// and the serving cache key material).
    pub sample: PathSample,
}

/// Extracts every innermost loop of `source` and embeds its nest text
/// into a [`PathSample`]. Loops whose nest text does not re-parse as a
/// statement are skipped (matching the training environment, which also
/// drops them).
///
/// # Errors
///
/// Returns a [`FrontendError`] when `source` itself does not parse.
pub fn extract_loop_samples(
    source: &str,
    cfg: &EmbedConfig,
) -> Result<Vec<LoopSite>, FrontendError> {
    let tu = parse_translation_unit(source)?;
    Ok(extract_loops(&tu, source)
        .into_iter()
        .filter(|l| l.is_innermost)
        .filter_map(|l| {
            let stmt = parse_statement(&l.nest_text).ok()?;
            Some(LoopSite {
                function: l.function,
                header_line: l.header_line,
                sample: PathSample::from_contexts(
                    &extract_path_contexts(&stmt, cfg.max_paths),
                    cfg,
                ),
            })
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_only_innermost_loops() {
        let src = "float a[64]; float M[8][8];
void f(int n) {
    for (int i = 0; i < n; i++) {
        a[i] = 0.0;
    }
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
            M[i][j] = 1.0;
        }
    }
}";
        let sites = extract_loop_samples(src, &EmbedConfig::fast()).unwrap();
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().all(|s| s.function == "f"));
        assert!(sites.iter().all(|s| !s.sample.is_empty()));
        assert_eq!(sites[0].header_line, 3);
        assert_eq!(sites[1].header_line, 7, "inner j-loop header");
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(extract_loop_samples("void f( {{{", &EmbedConfig::fast()).is_err());
    }

    #[test]
    fn loopless_source_yields_no_sites() {
        let sites =
            extract_loop_samples("int x;\nvoid f() { x = 1; }", &EmbedConfig::fast()).unwrap();
        assert!(sites.is_empty());
    }
}
