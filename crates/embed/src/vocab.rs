//! Hashing-trick vocabularies.
//!
//! Instead of a dataset-dependent vocabulary file (as the original
//! code2vec ships), terminals and paths hash into fixed-size embedding
//! tables. This keeps the pipeline dataset-independent and deterministic:
//! any loop — including ones never seen during training — maps to valid
//! table rows.

use serde::{Deserialize, Serialize};

use crate::model::EmbedConfig;
use crate::paths::PathContext;

/// An incremental FNV-1a hasher — the one hash function behind both the
/// vocabulary bucketing here and the serving layer's decision-cache keys
/// (`nvc-serve`), so the two can never silently diverge.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// The standard 64-bit offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a hash of a token string.
pub fn hash_token(s: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write(s.as_bytes());
    h.finish()
}

/// A loop rendered as vocabulary indices, ready for the embedding network.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathSample {
    /// Start-terminal rows into the token table.
    pub starts: Vec<usize>,
    /// Path rows into the path table.
    pub paths: Vec<usize>,
    /// End-terminal rows into the token table.
    pub ends: Vec<usize>,
}

impl PathSample {
    /// Hashes extracted path contexts into table indices.
    pub fn from_contexts(contexts: &[PathContext], cfg: &EmbedConfig) -> Self {
        let t = cfg.token_buckets as u64;
        let p = cfg.path_buckets as u64;
        PathSample {
            starts: contexts
                .iter()
                .map(|c| (hash_token(&c.start) % t) as usize)
                .collect(),
            paths: contexts
                .iter()
                .map(|c| (hash_token(&c.path) % p) as usize)
                .collect(),
            ends: contexts
                .iter()
                .map(|c| (hash_token(&c.end) % t) as usize)
                .collect(),
        }
    }

    /// Number of path contexts in the sample.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when the sample has no contexts (degenerate loops).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_spreads() {
        // Regression values pin the hash function.
        assert_eq!(hash_token(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(hash_token("VAR0"), hash_token("VAR1"));
        assert_ne!(hash_token("a"), hash_token("b"));
    }

    #[test]
    fn sample_indices_within_buckets() {
        let cfg = EmbedConfig::fast();
        let ctxs = vec![
            PathContext {
                start: "VAR0".into(),
                path: "Index^ExprStmt^BlockvExprStmtvIndex".into(),
                end: "VAR1".into(),
            },
            PathContext {
                start: "*".into(),
                path: "Binary".into(),
                end: "LIT2".into(),
            },
        ];
        let s = PathSample::from_contexts(&ctxs, &cfg);
        assert_eq!(s.len(), 2);
        assert!(s.starts.iter().all(|&i| i < cfg.token_buckets));
        assert!(s.paths.iter().all(|&i| i < cfg.path_buckets));
        assert!(s.ends.iter().all(|&i| i < cfg.token_buckets));
    }

    #[test]
    fn empty_contexts_make_empty_sample() {
        let cfg = EmbedConfig::fast();
        let s = PathSample::from_contexts(&[], &cfg);
        assert!(s.is_empty());
    }
}
