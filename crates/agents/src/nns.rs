//! Nearest-neighbour search over trained code embeddings (§3.5).
//!
//! "Once the framework with deep RL finishes training it is possible to
//! replace the RL agent … with other supervised learning methods such as
//! NNS and decision trees. However, for these methods a brute-force search
//! will be necessary to find the labels." The embeddings come from the
//! *trained* encoder, which is why NNS performs nearly as well as the RL
//! policy itself (2.65× vs 2.67× in Figure 7).

use serde::{Deserialize, Serialize};

/// A 1-nearest-neighbour classifier over embedding vectors.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NnsAgent {
    points: Vec<Vec<f32>>,
    labels: Vec<(usize, usize)>,
}

impl NnsAgent {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a training example: a code vector and its brute-force-optimal
    /// action.
    ///
    /// # Panics
    ///
    /// Panics if `embedding` has a different width than earlier points.
    pub fn insert(&mut self, embedding: Vec<f32>, label: (usize, usize)) {
        if let Some(first) = self.points.first() {
            assert_eq!(first.len(), embedding.len(), "embedding width mismatch");
        }
        self.points.push(embedding);
        self.labels.push(label);
    }

    /// Number of stored examples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Predicts the action of the nearest stored embedding (L2).
    ///
    /// # Panics
    ///
    /// Panics if the index is empty.
    pub fn predict(&self, query: &[f32]) -> (usize, usize) {
        assert!(!self.is_empty(), "NNS index is empty");
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for (i, p) in self.points.iter().enumerate() {
            let d: f32 = p
                .iter()
                .zip(query.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        self.labels[best]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_point_wins() {
        let mut nns = NnsAgent::new();
        nns.insert(vec![0.0, 0.0], (0, 0));
        nns.insert(vec![1.0, 1.0], (3, 2));
        nns.insert(vec![-1.0, 2.0], (6, 4));
        assert_eq!(nns.predict(&[0.1, -0.1]), (0, 0));
        assert_eq!(nns.predict(&[0.9, 1.2]), (3, 2));
        assert_eq!(nns.predict(&[-0.8, 1.7]), (6, 4));
    }

    #[test]
    fn exact_match_returns_its_label() {
        let mut nns = NnsAgent::new();
        for i in 0..10 {
            nns.insert(vec![i as f32, (i * i) as f32], (i % 7, i % 5));
        }
        for i in 0..10 {
            assert_eq!(nns.predict(&[i as f32, (i * i) as f32]), (i % 7, i % 5));
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_index_panics() {
        NnsAgent::new().predict(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_widths_panic() {
        let mut nns = NnsAgent::new();
        nns.insert(vec![1.0, 2.0], (0, 0));
        nns.insert(vec![1.0], (0, 0));
    }
}
