//! Uniform random decisions.
//!
//! Figure 7's "random search" series: one uniformly random `(VF, IF)` per
//! loop. The paper reports it "performed much worse than the baseline",
//! which is the control showing the RL policy's structure is real.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nvc_rl::ActionDims;

/// A seeded uniform-random agent.
#[derive(Debug, Clone)]
pub struct RandomAgent {
    rng: ChaCha8Rng,
}

impl RandomAgent {
    /// Creates an agent with a deterministic stream.
    pub fn new(seed: u64) -> Self {
        RandomAgent {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Picks a uniformly random action.
    pub fn act(&mut self, dims: ActionDims) -> (usize, usize) {
        (
            self.rng.gen_range(0..dims.n_vf),
            self.rng.gen_range(0..dims.n_if),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_whole_grid() {
        let dims = ActionDims { n_vf: 7, n_if: 5 };
        let mut agent = RandomAgent::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let a = agent.act(dims);
            assert!(a.0 < 7 && a.1 < 5);
            seen.insert(a);
        }
        assert_eq!(seen.len(), 35, "all 35 cells should be hit");
    }

    #[test]
    fn deterministic_per_seed() {
        let dims = ActionDims { n_vf: 7, n_if: 5 };
        let a: Vec<_> = {
            let mut ag = RandomAgent::new(9);
            (0..20).map(|_| ag.act(dims)).collect()
        };
        let b: Vec<_> = {
            let mut ag = RandomAgent::new(9);
            (0..20).map(|_| ag.act(dims)).collect()
        };
        assert_eq!(a, b);
    }
}
