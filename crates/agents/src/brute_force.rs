//! Exhaustive search over the action grid.
//!
//! §2.3: finding supervised labels "is necessary to run a brute-force
//! search on all the possible VFs and IFs" — 35 compile-and-run cycles per
//! loop, which is why the paper limits it to a 5,000-sample subset and
//! why PPO's 35× sample efficiency matters.

use nvc_rl::ActionDims;

/// Evaluates every action and returns `(best_action, best_reward)`.
///
/// `eval` is called exactly `dims.total()` times, mirroring the 35
/// compilations per loop the paper pays.
///
/// # Panics
///
/// Panics if the action space is empty.
pub fn brute_force_best(
    dims: ActionDims,
    mut eval: impl FnMut((usize, usize)) -> f64,
) -> ((usize, usize), f64) {
    let mut best: Option<((usize, usize), f64)> = None;
    for v in 0..dims.n_vf {
        for i in 0..dims.n_if {
            let r = eval((v, i));
            if best.map_or(true, |(_, br)| r > br) {
                best = Some(((v, i), r));
            }
        }
    }
    best.expect("non-empty action space")
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIMS: ActionDims = ActionDims { n_vf: 7, n_if: 5 };

    #[test]
    fn finds_the_maximum() {
        let (best, r) = brute_force_best(DIMS, |(v, i)| {
            -((v as f64 - 4.0).powi(2) + (i as f64 - 2.0).powi(2))
        });
        assert_eq!(best, (4, 2));
        assert_eq!(r, 0.0);
    }

    #[test]
    fn evaluates_every_cell_once() {
        let mut calls = 0;
        brute_force_best(DIMS, |_| {
            calls += 1;
            0.0
        });
        assert_eq!(calls, 35);
    }

    #[test]
    fn ties_keep_first_found() {
        let (best, _) = brute_force_best(DIMS, |_| 1.0);
        assert_eq!(best, (0, 0));
    }
}
