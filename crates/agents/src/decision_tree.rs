//! A CART decision-tree classifier over code embeddings (§3.5).
//!
//! Trained on brute-force labels like NNS; the paper reports 2.47× over
//! the baseline — a little behind NNS and RL, which this reproduction's
//! Figure 7 harness mirrors.

use serde::{Deserialize, Serialize};

/// Hyperparameters for tree induction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Do not split nodes smaller than this.
    pub min_samples_split: usize,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            max_depth: 12,
            min_samples_split: 4,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        label: usize,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A fitted CART classifier. Labels are flat action indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Fits a tree with Gini-impurity splits.
    ///
    /// # Panics
    ///
    /// Panics on empty or ragged training data.
    pub fn fit(features: &[Vec<f32>], labels: &[usize], cfg: &DecisionTreeConfig) -> Self {
        assert!(!features.is_empty(), "no training data");
        assert_eq!(features.len(), labels.len(), "features/labels mismatch");
        let width = features[0].len();
        assert!(
            features.iter().all(|f| f.len() == width),
            "ragged feature rows"
        );
        let mut tree = DecisionTree { nodes: Vec::new() };
        let idx: Vec<usize> = (0..features.len()).collect();
        tree.build(features, labels, &idx, cfg.max_depth, cfg);
        tree
    }

    fn build(
        &mut self,
        features: &[Vec<f32>],
        labels: &[usize],
        idx: &[usize],
        depth: usize,
        cfg: &DecisionTreeConfig,
    ) -> usize {
        let majority = majority_label(labels, idx);
        if depth == 0 || idx.len() < cfg.min_samples_split || is_pure(labels, idx) {
            self.nodes.push(Node::Leaf { label: majority });
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold)) = best_split(features, labels, idx) else {
            self.nodes.push(Node::Leaf { label: majority });
            return self.nodes.len() - 1;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&i| features[i][feature] <= threshold);
        if li.is_empty() || ri.is_empty() {
            self.nodes.push(Node::Leaf { label: majority });
            return self.nodes.len() - 1;
        }
        // Reserve our slot before the children so indices stay stable.
        self.nodes.push(Node::Leaf { label: majority });
        let me = self.nodes.len() - 1;
        let left = self.build(features, labels, &li, depth - 1, cfg);
        let right = self.build(features, labels, &ri, depth - 1, cfg);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Predicts the flat action index for one feature vector.
    pub fn predict(&self, x: &[f32]) -> usize {
        let mut cur = 0;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { label } => return *label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (for diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

fn majority_label(labels: &[usize], idx: &[usize]) -> usize {
    let mut counts = std::collections::HashMap::new();
    for &i in idx {
        *counts.entry(labels[i]).or_insert(0usize) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(label, c)| (c, std::cmp::Reverse(label)))
        .map(|(l, _)| l)
        .unwrap_or(0)
}

fn is_pure(labels: &[usize], idx: &[usize]) -> bool {
    idx.windows(2).all(|w| labels[w[0]] == labels[w[1]])
}

fn gini(counts: &std::collections::HashMap<usize, usize>, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut g = 1.0;
    for &c in counts.values() {
        let p = c as f64 / total as f64;
        g -= p * p;
    }
    g
}

/// Finds the `(feature, threshold)` with the lowest weighted Gini impurity.
fn best_split(features: &[Vec<f32>], labels: &[usize], idx: &[usize]) -> Option<(usize, f32)> {
    let width = features[idx[0]].len();
    let mut best: Option<(f64, usize, f32)> = None;
    for f in 0..width {
        // Sort samples along this feature.
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_by(|&a, &b| {
            features[a][f]
                .partial_cmp(&features[b][f])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut left_counts = std::collections::HashMap::new();
        let mut right_counts = std::collections::HashMap::new();
        for &i in &order {
            *right_counts.entry(labels[i]).or_insert(0usize) += 1;
        }
        for w in 0..order.len() - 1 {
            let i = order[w];
            *left_counts.entry(labels[i]).or_insert(0usize) += 1;
            if let Some(c) = right_counts.get_mut(&labels[i]) {
                *c -= 1;
                if *c == 0 {
                    right_counts.remove(&labels[i]);
                }
            }
            let (xa, xb) = (features[order[w]][f], features[order[w + 1]][f]);
            if xa == xb {
                continue; // no threshold separates equal values
            }
            let nl = w + 1;
            let nr = order.len() - nl;
            let score = gini(&left_counts, nl) * nl as f64 / order.len() as f64
                + gini(&right_counts, nr) * nr as f64 / order.len() as f64;
            if best.map_or(true, |(s, _, _)| score < s) {
                best = Some((score, f, (xa + xb) / 2.0));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_axis_aligned_split() {
        let features: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![i as f32 / 40.0, (i % 3) as f32])
            .collect();
        let labels: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let tree = DecisionTree::fit(&features, &labels, &DecisionTreeConfig::default());
        assert_eq!(tree.predict(&[0.1, 0.0]), 0);
        assert_eq!(tree.predict(&[0.9, 2.0]), 1);
    }

    #[test]
    fn learns_xor_with_depth() {
        let features = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let labels = vec![0, 1, 1, 0];
        // XOR needs two-sample splits; the default minimum (4) would stop
        // at depth 1.
        let cfg = DecisionTreeConfig {
            min_samples_split: 2,
            ..DecisionTreeConfig::default()
        };
        let tree = DecisionTree::fit(&features, &labels, &cfg);
        for (f, l) in features.iter().zip(labels.iter()) {
            assert_eq!(tree.predict(f), *l);
        }
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let features = vec![vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![5, 5, 5];
        let tree = DecisionTree::fit(&features, &labels, &DecisionTreeConfig::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[9.0]), 5);
    }

    #[test]
    fn depth_limit_respected() {
        let features: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32]).collect();
        let labels: Vec<usize> = (0..64).map(|i| i % 7).collect();
        let cfg = DecisionTreeConfig {
            max_depth: 2,
            min_samples_split: 2,
        };
        let tree = DecisionTree::fit(&features, &labels, &cfg);
        // Depth 2 → at most 7 nodes (3 splits + 4 leaves).
        assert!(tree.node_count() <= 7);
    }

    #[test]
    fn multiclass_accuracy_on_separable_data() {
        // Three clusters along one axis.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let cluster = i / 10;
            features.push(vec![cluster as f32 * 10.0 + (i % 10) as f32 * 0.1, 0.5]);
            labels.push(cluster);
        }
        let tree = DecisionTree::fit(&features, &labels, &DecisionTreeConfig::default());
        let correct = features
            .iter()
            .zip(labels.iter())
            .filter(|(f, l)| tree.predict(f) == **l)
            .count();
        assert_eq!(correct, 30);
    }
}
