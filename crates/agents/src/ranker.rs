//! The §5 "vanilla deep neural network" alternative: a learned cost model.
//!
//! "One direction we are exploring is to use a neural network that learns
//! a ranking scheme on the VF and IF. For example, it can learn that given
//! an embedding, and pragmas, what will the execution time normalized to
//! the non-vectorized code be. This is equivalent to learning a new cost
//! model for the different VFs and IFs."
//!
//! The ranker regresses `(embedding, one-hot action) → normalized reward`
//! and predicts by scoring all actions and taking the argmax. Unlike NNS
//! and decision trees it is differentiable end to end.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use nvc_nn::{Adam, Graph, ParamId, ParamStore, Tensor};
use nvc_rl::ActionDims;

/// Ranker hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankerConfig {
    /// Embedding width of the inputs.
    pub input_dim: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// Action dimensions.
    pub dims: ActionDims,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs over the labelled set.
    pub epochs: usize,
    /// Minibatch size.
    pub minibatch: usize,
}

impl Default for RankerConfig {
    fn default() -> Self {
        RankerConfig {
            input_dim: 32,
            hidden: 64,
            dims: ActionDims { n_vf: 7, n_if: 5 },
            lr: 1e-2,
            epochs: 60,
            minibatch: 32,
        }
    }
}

/// The learned cost model.
#[derive(Debug)]
pub struct Ranker {
    cfg: RankerConfig,
    store: ParamStore,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
}

impl Ranker {
    /// Creates an untrained ranker.
    pub fn new(cfg: &RankerConfig, seed: u64) -> Self {
        let mut store = ParamStore::new(seed);
        let in_dim = cfg.input_dim + cfg.dims.total();
        let w1 = store.param_xavier("ranker.w1", in_dim, cfg.hidden);
        let b1 = store.param("ranker.b1", Tensor::zeros(1, cfg.hidden));
        let w2 = store.param_xavier("ranker.w2", cfg.hidden, 1);
        let b2 = store.param("ranker.b2", Tensor::zeros(1, 1));
        Ranker {
            cfg: cfg.clone(),
            store,
            w1,
            b1,
            w2,
            b2,
        }
    }

    fn input_row(&self, embedding: &[f32], action: usize) -> Vec<f32> {
        let mut row = embedding.to_vec();
        let mut onehot = vec![0.0f32; self.cfg.dims.total()];
        onehot[action] = 1.0;
        row.extend(onehot);
        row
    }

    /// Trains on `(embedding, flat action, reward)` triples — typically
    /// the full brute-force grid of the training loops.
    pub fn fit(&mut self, data: &[(Vec<f32>, usize, f64)], rng: &mut impl Rng) -> f64 {
        assert!(!data.is_empty(), "no training data");
        let mut adam = Adam::new(self.cfg.lr);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut last_loss = f64::INFINITY;
        for _ in 0..self.cfg.epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(self.cfg.minibatch) {
                let rows: Vec<Vec<f32>> = chunk
                    .iter()
                    .map(|&i| self.input_row(&data[i].0, data[i].1))
                    .collect();
                let ys: Vec<f32> = chunk.iter().map(|&i| data[i].2 as f32).collect();
                let n = rows.len();
                let width = rows[0].len();
                let flat: Vec<f32> = rows.into_iter().flatten().collect();

                let mut g = Graph::new(&self.store);
                let x = g.input(Tensor::from_vec(n, width, flat));
                let y = g.input(Tensor::from_vec(n, 1, ys));
                let (w1, b1, w2, b2) = (
                    g.param(self.w1),
                    g.param(self.b1),
                    g.param(self.w2),
                    g.param(self.b2),
                );
                let h = g.matmul(x, w1);
                let h = g.add_row_broadcast(h, b1);
                let h = g.tanh(h);
                let o = g.matmul(h, w2);
                let o = g.add_row_broadcast(o, b2);
                let d = g.sub(o, y);
                let sq = g.mul_elem(d, d);
                let loss = g.mean_all(sq);
                epoch_loss += f64::from(g.value(loss).data()[0]);
                batches += 1;
                g.backward(loss);
                let grads = g.param_grads();
                drop(g);
                self.store.apply_grads(grads);
                adam.step(&mut self.store);
                self.store.zero_grads();
            }
            last_loss = epoch_loss / batches as f64;
        }
        last_loss
    }

    /// Predicted reward of one `(embedding, action)` pair.
    pub fn score(&self, embedding: &[f32], action: usize) -> f64 {
        let row = self.input_row(embedding, action);
        let mut g = Graph::new(&self.store);
        let x = g.input(Tensor::from_vec(1, row.len(), row));
        let (w1, b1, w2, b2) = (
            g.param(self.w1),
            g.param(self.b1),
            g.param(self.w2),
            g.param(self.b2),
        );
        let h = g.matmul(x, w1);
        let h = g.add_row_broadcast(h, b1);
        let h = g.tanh(h);
        let o = g.matmul(h, w2);
        let o = g.add_row_broadcast(o, b2);
        f64::from(g.value(o).data()[0])
    }

    /// Picks the action with the best predicted reward.
    pub fn predict(&self, embedding: &[f32]) -> (usize, usize) {
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for a in 0..self.cfg.dims.total() {
            let s = self.score(embedding, a);
            if s > best_score {
                best_score = s;
                best = a;
            }
        }
        self.cfg.dims.unflatten(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ranker_learns_a_simple_cost_surface() {
        // Two synthetic loop embeddings with different optimal actions.
        let dims = ActionDims { n_vf: 4, n_if: 4 };
        let cfg = RankerConfig {
            input_dim: 4,
            hidden: 32,
            dims,
            lr: 2e-2,
            epochs: 120,
            minibatch: 16,
            ..RankerConfig::default()
        };
        let e1 = vec![1.0, 0.0, 0.0, 0.0];
        let e2 = vec![0.0, 1.0, 0.0, 0.0];
        let best1 = dims.flatten((3, 1));
        let best2 = dims.flatten((0, 2));
        let mut data = Vec::new();
        for a in 0..dims.total() {
            let d1 = (a as i64 - best1 as i64).abs() as f64;
            let d2 = (a as i64 - best2 as i64).abs() as f64;
            data.push((e1.clone(), a, 1.0 - 0.1 * d1));
            data.push((e2.clone(), a, 1.0 - 0.1 * d2));
        }
        let mut r = Ranker::new(&cfg, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let loss = r.fit(&data, &mut rng);
        assert!(loss < 0.02, "ranker did not fit: loss={loss}");
        assert_eq!(r.predict(&e1), (3, 1));
        assert_eq!(r.predict(&e2), (0, 2));
    }

    #[test]
    fn score_is_deterministic() {
        let r = Ranker::new(&RankerConfig::default(), 1);
        let e = vec![0.5; 32];
        assert_eq!(r.score(&e, 3), r.score(&e, 3));
    }
}
