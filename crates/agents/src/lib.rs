//! The non-RL decision agents the paper compares against (Figure 7) and
//! the supervised extensions it proposes (§3.5, §5).
//!
//! * [`brute_force`] — exhaustive search over the whole `(VF, IF)` grid;
//!   the paper's oracle ("only 3% worse than the brute-force solution"
//!   refers to this);
//! * [`random_search`] — a uniformly random decision per loop, which the
//!   paper shows performing *worse* than the baseline ("this shows that
//!   the framework learned a structure in the observations");
//! * [`nns`] — nearest-neighbour search over trained code embeddings with
//!   brute-force labels (§3.5);
//! * [`decision_tree`] — a CART classifier over the same embeddings and
//!   labels (§3.5);
//! * [`ranker`] — the §5 "vanilla deep neural network" alternative: a
//!   network that learns to *rank* the VF/IF configurations by predicting
//!   the normalized execution time of each, i.e. a learned cost model.

pub mod brute_force;
pub mod decision_tree;
pub mod nns;
pub mod random_search;
pub mod ranker;

pub use brute_force::brute_force_best;
pub use decision_tree::{DecisionTree, DecisionTreeConfig};
pub use nns::NnsAgent;
pub use random_search::RandomAgent;
pub use ranker::{Ranker, RankerConfig};
