//! TCP front-end for the discovery registry.
//!
//! Registry traffic is tiny (a heartbeat per node per second, a resolve
//! per client per TTL window), so this runs the simple
//! thread-per-connection loop rather than the hub's event driver. The
//! protocol is the stack-wide one-JSON-object-per-line dialect; see the
//! crate docs for the verb set.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use nvc_obs::{Counter, MetricsRegistry};
use nvc_serve::json::obj;
use nvc_serve::Json;

use crate::registry::{NodeAnnouncement, RegistryCore};

/// Protocol state for one registry process: the node table plus the
/// daemon plumbing (uptime, request counting, shutdown flag).
pub struct RegistryService {
    core: RegistryCore,
    started: Instant,
    shutting_down: AtomicBool,
    requests: Arc<Counter>,
}

impl Default for RegistryService {
    fn default() -> Self {
        let core = RegistryCore::default();
        let requests = core.metrics_registry().counter("registry_requests_total");
        RegistryService {
            core,
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
            requests,
        }
    }
}

impl RegistryService {
    /// The node table (tests drive it directly with explicit clocks).
    pub fn core(&self) -> &RegistryCore {
        &self.core
    }

    /// True once a `shutdown` verb has been accepted.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Flags shutdown (the accept/connection loops poll this).
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
    }

    /// Answers one protocol line. Returns the response and whether the
    /// connection should stay open (`false` after `shutdown`).
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        self.requests.inc();
        let v = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return (err_response(&format!("bad json: {e}")), true),
        };
        let op = v.get("op").and_then(Json::as_str).unwrap_or("");
        match op {
            "announce" => match NodeAnnouncement::from_json(&v) {
                Ok(ann) => {
                    let nodes = self.core.announce(ann);
                    (
                        obj(vec![
                            ("ok", Json::from(true)),
                            ("nodes", Json::from(nodes as u64)),
                        ])
                        .render(),
                        true,
                    )
                }
                Err(e) => (err_response(&e), true),
            },
            "resolve" => {
                let model = v.get("model").and_then(Json::as_str);
                let nodes = self.core.resolve(model);
                (
                    obj(vec![
                        ("ok", Json::from(true)),
                        (
                            "nodes",
                            Json::Arr(nodes.iter().map(|n| n.to_json()).collect()),
                        ),
                    ])
                    .render(),
                    true,
                )
            }
            "nodes" | "stats" => {
                let nodes = self.core.resolve(None);
                (
                    obj(vec![
                        ("ok", Json::from(true)),
                        ("uptime_secs", Json::from(self.started.elapsed().as_secs())),
                        ("live_nodes", Json::from(nodes.len() as u64)),
                        (
                            "nodes",
                            Json::Arr(nodes.iter().map(|n| n.to_json()).collect()),
                        ),
                    ])
                    .render(),
                    true,
                )
            }
            "ping" => (
                obj(vec![
                    ("ok", Json::from(true)),
                    ("pong", Json::from(true)),
                    ("service", Json::from("nvc-registry")),
                ])
                .render(),
                true,
            ),
            "metrics" => (
                obj(vec![
                    ("ok", Json::from(true)),
                    (
                        "metrics",
                        Json::parse(&self.core.metrics_registry().render_json())
                            .unwrap_or(Json::Null),
                    ),
                ])
                .render(),
                true,
            ),
            "shutdown" => {
                // Ack first; the caller closes after writing (mirrors
                // the hub's ack-then-drain contract).
                self.shutdown();
                (
                    obj(vec![
                        ("ok", Json::from(true)),
                        ("shutdown", Json::from(true)),
                    ])
                    .render(),
                    false,
                )
            }
            other => (err_response(&format!("unknown op `{other}`")), true),
        }
    }

    /// The service's instruments.
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        self.core.metrics_registry()
    }
}

fn err_response(msg: &str) -> String {
    obj(vec![("ok", Json::from(false)), ("error", Json::from(msg))]).render()
}

/// A running registry server. Dropping the handle shuts it down and
/// joins every thread.
pub struct RegistryHandle {
    service: Arc<RegistryService>,
    addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Binds `listen` and starts the registry.
///
/// # Errors
///
/// Returns the bind error (address in use, bad syntax, …).
pub fn serve_registry(
    service: Arc<RegistryService>,
    listen: &str,
) -> std::io::Result<RegistryHandle> {
    let listener = TcpListener::bind(listen)?;
    serve_registry_on(service, listener)
}

/// Starts the registry on an already-bound listener (tests bind port 0
/// and read the ephemeral address back).
///
/// # Errors
///
/// Returns an error when the listener cannot report its local address
/// or switch to nonblocking mode.
pub fn serve_registry_on(
    service: Arc<RegistryService>,
    listener: TcpListener,
) -> std::io::Result<RegistryHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let service = Arc::clone(&service);
        let conns = Arc::clone(&conns);
        let poll = Duration::from_millis(20);
        std::thread::Builder::new()
            .name("nvc-registry-accept".to_string())
            .spawn(move || loop {
                if service.is_shutting_down() {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let service = Arc::clone(&service);
                        let worker = std::thread::Builder::new()
                            .name("nvc-registry-conn".to_string())
                            .spawn(move || serve_connection(&service, stream))
                            .expect("spawn registry connection thread");
                        let mut conns = conns.lock();
                        conns.retain(|c: &JoinHandle<()>| !c.is_finished());
                        conns.push(worker);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(poll);
                    }
                    Err(e) => {
                        // Keep accepting through transient failures —
                        // a dead acceptor looks exactly like a healthy
                        // registry that rejects everyone.
                        eprintln!("nvc registry: accept failed (retrying): {e}");
                        std::thread::sleep(poll);
                    }
                }
            })
            .expect("spawn registry accept thread")
    };
    Ok(RegistryHandle {
        service,
        addr,
        accept: Mutex::new(Some(accept)),
        conns,
    })
}

/// One connection: buffer bytes, answer complete lines, exit on EOF,
/// write failure, protocol shutdown, or service shutdown.
fn serve_connection(service: &RegistryService, mut stream: TcpStream) {
    let poll = Duration::from_millis(50);
    let _ = stream.set_read_timeout(Some(poll));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (response, keep_going) = service.handle_line(line);
            let wrote = stream
                .write_all(response.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .and_then(|()| stream.flush());
            if wrote.is_err() || !keep_going {
                return;
            }
        }
        if service.is_shutting_down() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

impl RegistryHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service being served.
    pub fn service(&self) -> &Arc<RegistryService> {
        &self.service
    }

    /// Stops accepting, closes connections, joins every thread.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.service.shutdown();
        if let Some(accept) = self.accept.lock().take() {
            let _ = accept.join();
        }
        let conns: Vec<JoinHandle<()>> = self.conns.lock().drain(..).collect();
        for c in conns {
            let _ = c.join();
        }
    }
}

impl Drop for RegistryHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelAd;
    use std::io::{BufRead, BufReader};

    fn start() -> RegistryHandle {
        serve_registry(Arc::new(RegistryService::default()), "127.0.0.1:0").expect("bind loopback")
    }

    fn roundtrip(addr: SocketAddr, line: &str) -> Json {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        Json::parse(response.trim()).expect("parse response")
    }

    fn announcement(node: &str, ttl_ms: u64) -> NodeAnnouncement {
        NodeAnnouncement {
            node: node.to_string(),
            addr: format!("127.0.0.1:9{node}"),
            models: vec![ModelAd {
                model: "prod".into(),
                checkpoint_hash: 0x1234,
                weight: 1,
            }],
            ttl_ms,
        }
    }

    #[test]
    fn malformed_ttl_announce_gets_an_error_response() {
        let handle = start();
        let body = announcement("bad", 60_000)
            .to_json()
            .render()
            .replace("\"ttl_ms\":60000", "\"ttl_ms\":-5");
        let resp = roundtrip(handle.addr(), &body);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
        assert!(resp
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("ttl_ms"));
        // The malformed node must not have been registered.
        let nodes = roundtrip(handle.addr(), "{\"op\":\"resolve\"}");
        assert_eq!(nodes.get("nodes").unwrap().as_array().unwrap().len(), 0);
        handle.shutdown();
    }

    #[test]
    fn announce_then_resolve_over_tcp() {
        let handle = start();
        let ack = roundtrip(
            handle.addr(),
            &announcement("n1", 60_000).to_json().render(),
        );
        assert_eq!(ack.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(ack.get("nodes").unwrap().as_f64(), Some(1.0));

        let v = roundtrip(handle.addr(), r#"{"op":"resolve","model":"prod"}"#);
        let nodes = v.get("nodes").unwrap().as_array().unwrap();
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].get("node").unwrap().as_str(), Some("n1"));

        let v = roundtrip(handle.addr(), r#"{"op":"resolve","model":"ghost"}"#);
        assert!(v.get("nodes").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn ttl_expiry_over_tcp() {
        let handle = start();
        roundtrip(handle.addr(), &announcement("gone", 80).to_json().render());
        std::thread::sleep(Duration::from_millis(150));
        let v = roundtrip(handle.addr(), r#"{"op":"resolve"}"#);
        assert!(
            v.get("nodes").unwrap().as_array().unwrap().is_empty(),
            "expired announcement must not resolve"
        );
    }

    #[test]
    fn ping_stats_metrics_and_bad_input() {
        let handle = start();
        let v = roundtrip(handle.addr(), r#"{"op":"ping"}"#);
        assert_eq!(v.get("pong").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("service").unwrap().as_str(), Some("nvc-registry"));

        roundtrip(
            handle.addr(),
            &announcement("n1", 60_000).to_json().render(),
        );
        let v = roundtrip(handle.addr(), r#"{"op":"stats"}"#);
        assert_eq!(v.get("live_nodes").unwrap().as_f64(), Some(1.0));

        let v = roundtrip(handle.addr(), r#"{"op":"metrics"}"#);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));

        let v = roundtrip(handle.addr(), "not json at all");
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        let v = roundtrip(handle.addr(), r#"{"op":"warp"}"#);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        let v = roundtrip(handle.addr(), r#"{"op":"announce"}"#);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn shutdown_verb_quiesces_the_registry() {
        let handle = start();
        let v = roundtrip(handle.addr(), r#"{"op":"shutdown"}"#);
        assert_eq!(v.get("shutdown").unwrap().as_bool(), Some(true));
        handle.shutdown();
        assert!(handle.service().is_shutting_down());
        assert!(
            TcpStream::connect(handle.addr()).is_err() || {
                // The OS may still accept into the backlog briefly; a write
                // + read must fail or return nothing either way.
                let mut s = TcpStream::connect(handle.addr()).unwrap();
                s.write_all(b"{\"op\":\"ping\"}\n").ok();
                let mut r = BufReader::new(s);
                let mut line = String::new();
                r.read_line(&mut line).map(|n| n == 0).unwrap_or(true)
            }
        );
    }
}
