//! The discovery registry's data model: TTL'd node announcements and
//! model-filtered resolution.
//!
//! [`RegistryCore`] is transport-free — every mutation takes an explicit
//! `Instant` (`*_at` variants) so TTL expiry is unit-testable without
//! sleeping; the TCP layer ([`crate::server`]) and convenience wrappers
//! pass `Instant::now()`. Expiry is lazy: a node whose deadline has
//! passed is pruned the next time anything looks at the table, and
//! counted in `registry_expirations_total`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use nvc_obs::{Counter, Gauge, MetricsRegistry};
use nvc_serve::json::obj;
use nvc_serve::Json;

/// One model a node advertises: name, the exact checkpoint content hash
/// it is serving, and its share of that node's A/B split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelAd {
    /// Registry name on the serving hub (`"model"` on the wire).
    pub model: String,
    /// `nvc_nn::serialize::checkpoint_hash` of the running checkpoint —
    /// the version clients verify every response against.
    pub checkpoint_hash: u64,
    /// The hub-side traffic weight (0 = explicit-only canary).
    pub weight: u32,
}

impl ModelAd {
    /// Wire encoding (`checkpoint_hash` as 16 hex digits).
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("model", Json::from(self.model.as_str())),
            (
                "checkpoint_hash",
                Json::from(format!("{:016x}", self.checkpoint_hash)),
            ),
            ("weight", Json::from(u64::from(self.weight))),
        ])
    }

    /// Parses the [`ModelAd::to_json`] encoding.
    pub fn from_json(v: &Json) -> Result<ModelAd, String> {
        let model = v
            .get("model")
            .and_then(Json::as_str)
            .ok_or("model ad missing `model`")?
            .to_string();
        let checkpoint_hash = v
            .get("checkpoint_hash")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or("model ad missing/bad `checkpoint_hash`")?;
        let weight = v.get("weight").and_then(Json::as_f64).unwrap_or(1.0) as u32;
        Ok(ModelAd {
            model,
            checkpoint_hash,
            weight,
        })
    }
}

/// What a hub node announces (and re-announces every heartbeat).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAnnouncement {
    /// Stable node name — re-announcing under the same name refreshes
    /// the TTL and replaces the model list (reloads propagate this way).
    pub node: String,
    /// The address clients connect to (`host:port`).
    pub addr: String,
    /// The models this node serves right now.
    pub models: Vec<ModelAd>,
    /// How long this announcement stays resolvable without a refresh.
    pub ttl_ms: u64,
}

impl NodeAnnouncement {
    /// Wire encoding (the `announce` verb's request body).
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("op", Json::from("announce")),
            ("node", Json::from(self.node.as_str())),
            ("addr", Json::from(self.addr.as_str())),
            ("ttl_ms", Json::from(self.ttl_ms)),
            (
                "models",
                Json::Arr(self.models.iter().map(ModelAd::to_json).collect()),
            ),
        ])
    }

    /// Parses an `announce` request.
    pub fn from_json(v: &Json) -> Result<NodeAnnouncement, String> {
        let node = v
            .get("node")
            .and_then(Json::as_str)
            .ok_or("announce missing `node`")?
            .to_string();
        let addr = v
            .get("addr")
            .and_then(Json::as_str)
            .ok_or("announce missing `addr`")?
            .to_string();
        // A missing `ttl_ms` gets the default; a *present* one must be a
        // finite positive number. The old `as_f64 … as u64` coercion
        // turned NaN/negative TTLs into 0 (clamped to 1ms downstream), so
        // a buggy announcer flapped in and out of resolution instead of
        // being told its announcement is malformed.
        let ttl_ms = match v.get("ttl_ms") {
            None => 3000,
            Some(t) => {
                let f = t.as_f64().ok_or("announce `ttl_ms` must be a number")?;
                if !f.is_finite() || f < 1.0 {
                    return Err(format!(
                        "announce `ttl_ms` must be a positive number, got {}",
                        t.render()
                    ));
                }
                f as u64
            }
        };
        let mut models = Vec::new();
        for m in v
            .get("models")
            .and_then(Json::as_array)
            .ok_or("announce missing `models`")?
        {
            models.push(ModelAd::from_json(m)?);
        }
        Ok(NodeAnnouncement {
            node,
            addr,
            models,
            ttl_ms,
        })
    }
}

/// A live node as a resolver sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedNode {
    /// The announced node name.
    pub node: String,
    /// The announced connect address.
    pub addr: String,
    /// Milliseconds since the last heartbeat (staleness signal).
    pub age_ms: u64,
    /// The announced model list.
    pub models: Vec<ModelAd>,
}

impl ResolvedNode {
    /// Wire encoding (one element of a `resolve` response).
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("node", Json::from(self.node.as_str())),
            ("addr", Json::from(self.addr.as_str())),
            ("age_ms", Json::from(self.age_ms)),
            (
                "models",
                Json::Arr(self.models.iter().map(ModelAd::to_json).collect()),
            ),
        ])
    }

    /// Parses the [`ResolvedNode::to_json`] encoding.
    pub fn from_json(v: &Json) -> Result<ResolvedNode, String> {
        let node = v
            .get("node")
            .and_then(Json::as_str)
            .ok_or("resolved node missing `node`")?
            .to_string();
        let addr = v
            .get("addr")
            .and_then(Json::as_str)
            .ok_or("resolved node missing `addr`")?
            .to_string();
        let age_ms = v.get("age_ms").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let mut models = Vec::new();
        for m in v.get("models").and_then(Json::as_array).unwrap_or(&[]) {
            models.push(ModelAd::from_json(m)?);
        }
        Ok(ResolvedNode {
            node,
            addr,
            age_ms,
            models,
        })
    }

    /// The advertised checkpoint hash for `model`, if this node serves
    /// it.
    pub fn hash_of(&self, model: &str) -> Option<u64> {
        self.models
            .iter()
            .find(|m| m.model == model)
            .map(|m| m.checkpoint_hash)
    }
}

struct NodeState {
    ann: NodeAnnouncement,
    /// Refreshed on every heartbeat; past it the node is gone.
    deadline: Instant,
    /// When the latest heartbeat arrived (drives `age_ms`).
    heard: Instant,
}

/// The registry table: announcements keyed by node name, expired lazily.
pub struct RegistryCore {
    nodes: Mutex<HashMap<String, NodeState>>,
    obs: Arc<MetricsRegistry>,
    announces: Arc<Counter>,
    resolves: Arc<Counter>,
    expirations: Arc<Counter>,
    live_nodes: Arc<Gauge>,
}

impl Default for RegistryCore {
    fn default() -> Self {
        let obs = Arc::new(MetricsRegistry::default());
        RegistryCore {
            nodes: Mutex::new(HashMap::new()),
            announces: obs.counter("registry_announces_total"),
            resolves: obs.counter("registry_resolves_total"),
            expirations: obs.counter("registry_expirations_total"),
            live_nodes: obs.gauge("registry_live_nodes"),
            obs,
        }
    }
}

impl RegistryCore {
    /// The registry's own instruments (Prometheus/JSON exposition).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.obs
    }

    /// Records (or refreshes) `ann` as of `now`. Returns the live node
    /// count after pruning.
    pub fn announce_at(&self, ann: NodeAnnouncement, now: Instant) -> usize {
        self.announces.inc();
        let deadline = now + std::time::Duration::from_millis(ann.ttl_ms.max(1));
        let mut nodes = self.nodes.lock();
        nodes.insert(
            ann.node.clone(),
            NodeState {
                ann,
                deadline,
                heard: now,
            },
        );
        self.prune_locked(&mut nodes, now);
        nodes.len()
    }

    /// [`RegistryCore::announce_at`] as of now.
    pub fn announce(&self, ann: NodeAnnouncement) -> usize {
        self.announce_at(ann, Instant::now())
    }

    /// Live nodes as of `now`, optionally filtered to those serving
    /// `model`, most-recently-heard first (resolvers try the freshest
    /// peer first).
    pub fn resolve_at(&self, model: Option<&str>, now: Instant) -> Vec<ResolvedNode> {
        self.resolves.inc();
        let mut nodes = self.nodes.lock();
        self.prune_locked(&mut nodes, now);
        let mut out: Vec<(Instant, ResolvedNode)> = nodes
            .values()
            .filter(|s| match model {
                Some(m) => s.ann.models.iter().any(|ad| ad.model == m),
                None => true,
            })
            .map(|s| {
                (
                    s.heard,
                    ResolvedNode {
                        node: s.ann.node.clone(),
                        addr: s.ann.addr.clone(),
                        age_ms: now.saturating_duration_since(s.heard).as_millis() as u64,
                        models: s.ann.models.clone(),
                    },
                )
            })
            .collect();
        out.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.node.cmp(&b.1.node)));
        out.into_iter().map(|(_, n)| n).collect()
    }

    /// [`RegistryCore::resolve_at`] as of now.
    pub fn resolve(&self, model: Option<&str>) -> Vec<ResolvedNode> {
        self.resolve_at(model, Instant::now())
    }

    /// Live node count as of `now` (prunes first).
    pub fn len_at(&self, now: Instant) -> usize {
        let mut nodes = self.nodes.lock();
        self.prune_locked(&mut nodes, now);
        nodes.len()
    }

    fn prune_locked(&self, nodes: &mut HashMap<String, NodeState>, now: Instant) {
        let before = nodes.len();
        nodes.retain(|_, s| s.deadline > now);
        let expired = before - nodes.len();
        if expired > 0 {
            self.expirations.add(expired as u64);
        }
        self.live_nodes.set(nodes.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ann(node: &str, ttl_ms: u64) -> NodeAnnouncement {
        NodeAnnouncement {
            node: node.to_string(),
            addr: format!("127.0.0.1:1{node}"),
            models: vec![ModelAd {
                model: "prod".into(),
                checkpoint_hash: 0xAB,
                weight: 2,
            }],
            ttl_ms,
        }
    }

    #[test]
    fn announce_resolve_and_ttl_expiry() {
        let core = RegistryCore::default();
        let t0 = Instant::now();
        assert_eq!(core.announce_at(ann("a", 1000), t0), 1);
        assert_eq!(core.announce_at(ann("b", 3000), t0), 2);

        // Inside both TTLs: both resolve, ages measured from t0.
        let at = t0 + Duration::from_millis(500);
        let nodes = core.resolve_at(Some("prod"), at);
        assert_eq!(nodes.len(), 2);
        assert!(nodes.iter().all(|n| n.age_ms == 500));
        assert!(core.resolve_at(Some("ghost"), at).is_empty());

        // Past a's deadline: only b survives, expiry is counted.
        let later = t0 + Duration::from_millis(1500);
        let nodes = core.resolve_at(None, later);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].node, "b");
        let snap = core.metrics_registry().snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "registry_expirations_total" && *v == 1));

        // A heartbeat refreshes the deadline — the node lives past its
        // original TTL as long as it keeps announcing.
        core.announce_at(ann("b", 3000), later);
        let much_later = t0 + Duration::from_millis(4000);
        assert_eq!(core.len_at(much_later), 1);
        assert_eq!(core.len_at(later + Duration::from_millis(3001)), 0);
    }

    #[test]
    fn reannounce_replaces_the_model_list() {
        let core = RegistryCore::default();
        let t0 = Instant::now();
        core.announce_at(ann("a", 5000), t0);
        let mut upgraded = ann("a", 5000);
        upgraded.models[0].checkpoint_hash = 0xCD;
        core.announce_at(upgraded, t0 + Duration::from_millis(10));
        let nodes = core.resolve_at(Some("prod"), t0 + Duration::from_millis(20));
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].hash_of("prod"), Some(0xCD));
        assert_eq!(nodes[0].hash_of("ghost"), None);
    }

    #[test]
    fn resolve_orders_freshest_first() {
        let core = RegistryCore::default();
        let t0 = Instant::now();
        core.announce_at(ann("stale", 60_000), t0);
        core.announce_at(ann("fresh", 60_000), t0 + Duration::from_millis(100));
        let nodes = core.resolve_at(None, t0 + Duration::from_millis(200));
        assert_eq!(nodes[0].node, "fresh");
        assert_eq!(nodes[1].node, "stale");
    }

    #[test]
    fn malformed_ttl_is_rejected_not_coerced() {
        let base = ann("n1", 2500).to_json().render();
        // Sanity: the well-formed announcement parses, and one with no
        // ttl_ms at all gets the 3000ms default.
        assert!(NodeAnnouncement::from_json(&Json::parse(&base).unwrap()).is_ok());
        let missing = base.replace("\"ttl_ms\":2500,", "");
        let parsed = NodeAnnouncement::from_json(&Json::parse(&missing).unwrap()).unwrap();
        assert_eq!(parsed.ttl_ms, 3000);
        // Present-but-malformed values are errors, not 1ms flap fodder.
        for bad in ["-1", "0", "0.4", "-2e9", "\"soon\"", "null", "true"] {
            let body = base.replace("\"ttl_ms\":2500", &format!("\"ttl_ms\":{bad}"));
            let v = Json::parse(&body).unwrap();
            let err = NodeAnnouncement::from_json(&v);
            assert!(err.is_err(), "ttl_ms={bad} was accepted: {err:?}");
        }
    }

    #[test]
    fn announcement_json_roundtrips() {
        let a = NodeAnnouncement {
            node: "n1".into(),
            addr: "10.0.0.5:7199".into(),
            models: vec![
                ModelAd {
                    model: "prod".into(),
                    checkpoint_hash: u64::MAX,
                    weight: 3,
                },
                ModelAd {
                    model: "canary".into(),
                    checkpoint_hash: 0,
                    weight: 0,
                },
            ],
            ttl_ms: 2500,
        };
        let parsed =
            NodeAnnouncement::from_json(&Json::parse(&a.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, a);

        let r = ResolvedNode {
            node: "n1".into(),
            addr: "10.0.0.5:7199".into(),
            age_ms: 42,
            models: a.models.clone(),
        };
        let parsed = ResolvedNode::from_json(&Json::parse(&r.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, r);
    }
}
