//! `nvc-fleet` — the distributed serving tier.
//!
//! `nvc-hub` made one box serve many models; a build farm at the
//! paper-to-production scale the ROADMAP aims for needs many boxes. This
//! crate adds the three pieces that turn N independent hubs into one
//! fleet:
//!
//! * [`registry`] + [`server`] — a **discovery registry** (`nvc
//!   registry` on the CLI): hub nodes announce `(model,
//!   checkpoint_hash, addr)` over the same JSON-lines protocol the rest
//!   of the stack speaks, with TTL'd heartbeats — a node that stops
//!   heartbeating expires out of resolution instead of black-holing
//!   clients;
//! * [`store`] — a **content-addressed shared decision store**: one
//!   [`ContentStore`] per process, layered *behind* every model's
//!   private LRU (`nvc_serve::SharedDecisionStore`), keyed by
//!   `(checkpoint_hash, sample_key)` so entries flow across A/B sides,
//!   hot-swap reloads, and — via the hub's gossip transfer — across
//!   peer nodes, while different checkpoints can never exchange a
//!   decision;
//! * [`client`] — a **fleet-aware client** ([`FleetClient`]): resolve
//!   through the registry, pick a node by deterministic weighted split,
//!   retry on the next peer with backoff when a node dies, fall back to
//!   the last-known-good node set when the registry itself is down, and
//!   verify the `checkpoint_hash` stamped on every response so a wrong
//!   -version decision is structurally impossible to accept.
//!
//! # Wire protocol (registry)
//!
//! One JSON object per line, like every other `nvc` daemon:
//!
//! ```text
//! → {"op":"announce","node":"n1","addr":"10.0.0.5:7199","ttl_ms":3000,
//!    "models":[{"model":"prod","checkpoint_hash":"84f1…","weight":2}]}
//! ← {"ok":true,"nodes":3}
//! → {"op":"resolve","model":"prod"}
//! ← {"ok":true,"nodes":[{"node":"n1","addr":"10.0.0.5:7199","age_ms":120,
//!    "models":[…]}]}
//! → {"op":"ping"} / {"op":"metrics"} / {"op":"shutdown"}   # as elsewhere
//! ```

pub mod client;
pub mod registry;
pub mod server;
pub mod store;

pub use client::{FleetClient, FleetConfig, FleetResponse, FleetStats, RegistryClient};
pub use registry::{ModelAd, NodeAnnouncement, RegistryCore, ResolvedNode};
pub use server::{serve_registry, serve_registry_on, RegistryHandle, RegistryService};
pub use store::{ContentStore, ContentStoreStats};

/// Failures surfaced by the fleet tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The registry could not be reached and no usable node set was
    /// cached from a previous resolution.
    Registry(String),
    /// Resolution succeeded but no live node serves the requested model.
    NoNodes(String),
    /// Every candidate peer failed (connect, I/O, or version mismatch);
    /// carries the last error.
    PeersExhausted(String),
    /// A peer answered with a protocol-level error or malformed JSON.
    Protocol(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Registry(e) => write!(f, "registry unavailable: {e}"),
            FleetError::NoNodes(what) => write!(f, "no live nodes serve {what}"),
            FleetError::PeersExhausted(e) => write!(f, "every peer failed (last: {e})"),
            FleetError::Protocol(e) => write!(f, "peer protocol error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}
