//! The content-addressed shared decision store.
//!
//! One [`ContentStore`] sits behind *every* model handle of a hub (and,
//! through gossip transfer, receives entries computed on peer nodes).
//! Keys are [`nvc_nn::serialize::content_address`]`(checkpoint_hash,
//! sample_key)` — a decision is a pure function of both, so:
//!
//! * the A/B sides of a split serving the **same** checkpoint share
//!   every decision instead of computing it twice;
//! * a hot-swap `reload` back to an already-seen checkpoint finds its
//!   old decisions still addressed and valid;
//! * entries pulled from a peer are valid verbatim — the address says
//!   exactly which checkpoint computed them;
//! * two **different** checkpoints can never exchange an entry, because
//!   they never share an address.
//!
//! Capacity is bounded per shard with FIFO eviction (the per-model LRU
//! in front already gives recency; this level optimizes for breadth).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use nvc_nn::serialize::content_address;
use nvc_obs::{Counter, MetricsRegistry};
use nvc_serve::SharedDecisionStore;

struct Shard {
    map: HashMap<u128, (usize, usize)>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u128>,
}

/// Sharded map from content address to decision. See the module docs.
pub struct ContentStore {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    obs: Arc<MetricsRegistry>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    publishes: Arc<Counter>,
    evictions: Arc<Counter>,
    transfers_in: Arc<Counter>,
}

/// Point-in-time counters of a [`ContentStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentStoreStats {
    /// Entries currently held.
    pub entries: usize,
    /// Probes answered.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Locally computed decisions published.
    pub publishes: u64,
    /// Entries evicted at capacity.
    pub evictions: u64,
    /// Entries absorbed from peer transfers.
    pub transfers_in: u64,
}

impl Default for ContentStore {
    /// A store sized for a serving node (256 Ki entries, 16 shards).
    fn default() -> Self {
        ContentStore::new(262_144, 16)
    }
}

impl ContentStore {
    /// A store holding up to `capacity` entries across `shards` shards
    /// (both clamped to ≥ 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let shard_capacity = (capacity.max(1)).div_ceil(shards);
        let obs = Arc::new(MetricsRegistry::default());
        ContentStore {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            shard_capacity,
            hits: obs.counter("store_hits_total"),
            misses: obs.counter("store_misses_total"),
            publishes: obs.counter("store_publishes_total"),
            evictions: obs.counter("store_evictions_total"),
            transfers_in: obs.counter("store_transfers_in_total"),
            obs,
        }
    }

    fn shard(&self, addr: u128) -> &Mutex<Shard> {
        // The address's low bits are the FNV sample key — well mixed.
        &self.shards[(addr as u64 as usize) % self.shards.len()]
    }

    fn insert(&self, addr: u128, pair: (usize, usize)) {
        let mut shard = self.shard(addr).lock();
        if shard.map.insert(addr, pair).is_none() {
            shard.order.push_back(addr);
            while shard.map.len() > self.shard_capacity {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.map.remove(&oldest);
                    self.evictions.inc();
                } else {
                    break;
                }
            }
        }
    }

    /// Absorbs entries computed under `checkpoint_hash` elsewhere (a
    /// peer's cache export). Counted separately from local publishes.
    /// Returns how many entries were absorbed.
    pub fn absorb(
        &self,
        checkpoint_hash: u64,
        entries: impl IntoIterator<Item = (u64, (usize, usize))>,
    ) -> usize {
        let mut n = 0;
        for (key, pair) in entries {
            self.insert(content_address(checkpoint_hash, key), pair);
            n += 1;
        }
        self.transfers_in.add(n as u64);
        n
    }

    /// Every entry stored under `checkpoint_hash`, as `(sample_key,
    /// decision)` pairs — what a hub exports to a joining peer.
    pub fn entries_for(&self, checkpoint_hash: u64) -> Vec<(u64, (usize, usize))> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (&addr, &pair) in shard.map.iter() {
                if (addr >> 64) as u64 == checkpoint_hash {
                    out.push((addr as u64, pair));
                }
            }
        }
        out
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ContentStoreStats {
        ContentStoreStats {
            entries: self.len(),
            hits: self.hits.get(),
            misses: self.misses.get(),
            publishes: self.publishes.get(),
            evictions: self.evictions.get(),
            transfers_in: self.transfers_in.get(),
        }
    }

    /// The store's instruments, for embedding in a larger exposition.
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.obs
    }
}

impl SharedDecisionStore for ContentStore {
    fn get(&self, checkpoint_hash: u64, sample_key: u64) -> Option<(usize, usize)> {
        let addr = content_address(checkpoint_hash, sample_key);
        let hit = self.shard(addr).lock().map.get(&addr).copied();
        match hit {
            Some(pair) => {
                self.hits.inc();
                Some(pair)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    fn put(&self, checkpoint_hash: u64, sample_key: u64, decision: (usize, usize)) {
        self.insert(content_address(checkpoint_hash, sample_key), decision);
        self.publishes.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_respects_checkpoint_boundaries() {
        let store = ContentStore::new(1024, 4);
        store.put(0xA, 1, (2, 3));
        assert_eq!(store.get(0xA, 1), Some((2, 3)));
        assert_eq!(store.get(0xB, 1), None, "other checkpoint must miss");
        assert_eq!(store.get(0xA, 2), None);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.publishes), (1, 2, 1));
    }

    #[test]
    fn absorb_and_export_roundtrip() {
        let store = ContentStore::new(1024, 4);
        let entries = vec![(10u64, (1, 1)), (20, (2, 0)), (30, (0, 2))];
        assert_eq!(store.absorb(0xFEED, entries.clone()), 3);
        store.put(0xBEEF, 99, (3, 3)); // different checkpoint
        let mut exported = store.entries_for(0xFEED);
        exported.sort_by_key(|e| e.0);
        assert_eq!(exported, entries);
        assert_eq!(store.entries_for(0xBEEF), vec![(99, (3, 3))]);
        assert_eq!(store.stats().transfers_in, 3);
        // Absorbed entries serve through the trait.
        assert_eq!(store.get(0xFEED, 20), Some((2, 0)));
    }

    #[test]
    fn capacity_is_bounded_with_fifo_eviction() {
        let store = ContentStore::new(8, 1);
        for key in 0..20u64 {
            store.put(1, key, (key as usize, 0));
        }
        assert_eq!(store.len(), 8);
        assert_eq!(store.stats().evictions, 12);
        assert_eq!(store.get(1, 0), None, "oldest entries evicted");
        assert_eq!(store.get(1, 19), Some((19, 0)), "newest survive");
        // Re-publishing an existing key must not duplicate its order
        // slot (which would corrupt eviction accounting).
        for _ in 0..100 {
            store.put(1, 19, (19, 0));
        }
        assert_eq!(store.len(), 8);
    }
}
